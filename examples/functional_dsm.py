#!/usr/bin/env python3
"""The byte-accurate data plane: real twins, diffs and home copies.

The performance simulation carries abstract diff shapes; this example
uses the *functional* counterpart (repro.svm.datastore.ConcreteStore)
to show the multiple-writer LRC machinery working on actual bytes —
two nodes write disjoint parts of the same page, both diffs land at
the home, and a third node fetches the merged result.

    python examples/functional_dsm.py
"""

from repro.hw import MachineConfig
from repro.svm import PageDirectory
from repro.svm.datastore import ConcreteStore


def main():
    directory = PageDirectory(MachineConfig())
    region = directory.allocate("matrix", n_pages=4, concrete=True)
    store = ConcreteStore(region)

    # Node 0 and node 1 both write page 0 (the multiple-writer case
    # twinning and diffing exist to solve).
    store.write(node=0, index=0, offset=0, data=b"node0 owns the header.. ")
    store.write(node=1, index=0, offset=2048,
                data=b"node1 owns the second half. ")
    print("node 0 twinned page 0:", store.is_twinned(0, 0))
    print("node 1 twinned page 0:", store.is_twinned(1, 0))
    print("home copy before any flush:",
          bytes(store.home_copy(0)[:24]), b"...")

    # At their releases, each writer diffs against its twin and sends
    # the modified runs to the home.
    diff0 = store.flush(0, 0)
    diff1 = store.flush(1, 0)
    print(f"\nnode 0 flushed {len(diff0)} run(s): "
          f"{[(off, len(d)) for off, d in diff0]}")
    print(f"node 1 flushed {len(diff1)} run(s): "
          f"{[(off, len(d)) for off, d in diff1]}")

    # A third node — after applying the writers' notices — fetches the
    # page from the home and sees both updates merged.
    store.invalidate(2, 0) if (2, 0) in store._copies else None
    merged = store.fetch(node=2, index=0)
    print("\nnode 2 fetches the page and reads:")
    print("  offset    0:", bytes(merged[0:24]))
    print("  offset 2048:", bytes(merged[2048:2076]))
    assert bytes(merged[0:24]) == b"node0 owns the header.. "
    assert bytes(merged[2048:2076]) == b"node1 owns the second half. "
    print("\nmultiple-writer merge verified: "
          f"{store.flushes} flushes, {store.bytes_flushed} diff bytes")


if __name__ == "__main__":
    main()
