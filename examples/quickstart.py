#!/usr/bin/env python3
"""Quickstart: run one application on the Base protocol and on GeNIMA.

The one-figure version of the paper: the same program, the same
cluster, with and without NI support for asynchronous protocol
processing.

    python examples/quickstart.py
"""

from repro import BASE, GENIMA, run_sequential, run_svm, speedup
from repro.apps import Ocean


def main():
    app = Ocean(n=258, sweeps=20)   # small grid so this runs in seconds

    seq = run_sequential(Ocean(n=258, sweeps=20))
    print(f"sequential time: {seq.time_us / 1000:.1f} ms")

    for features in (BASE, GENIMA):
        result = run_svm(Ocean(n=258, sweeps=20), features)
        mean = result.mean_breakdown
        print(f"\n{features.name} protocol "
              f"({result.nprocs} processors, 4-way SMP nodes):")
        print(f"  speedup           : {speedup(seq, result):.2f}")
        print(f"  interrupts taken  : {result.stats['interrupts']}")
        print(f"  messages sent     : {result.stats['messages']}")
        print(f"  time breakdown    : "
              f"compute {mean.compute / 1000:.1f} ms, "
              f"data {mean.data / 1000:.1f} ms, "
              f"lock {mean.lock / 1000:.1f} ms, "
              f"barrier {mean.barrier / 1000:.1f} ms")


if __name__ == "__main__":
    main()
