#!/usr/bin/env python3
"""Drive the three NI mechanisms directly at the communication layer.

Uses the VMMC API the way the protocol does: asynchronous remote
deposits, remote fetches served by NI firmware, and NI locks whose
distributed queue lives entirely in the (simulated) LANai — no host
processor on the far side ever runs a handler.

    python examples/ni_mechanisms.py
"""

from repro.hw import Machine, MachineConfig
from repro.vmmc import NILockManager, PerfMonitor, VMMC


def main():
    machine = Machine(MachineConfig())
    vmmc = VMMC(machine)
    monitor = PerfMonitor(machine)
    locks = NILockManager(vmmc, num_locks=16)
    sim = machine.sim
    log = []

    def deposits():
        """Remote deposit: sender-initiated, asynchronous."""
        t0 = sim.now
        yield from vmmc.send(0, 1, size=64, payload="control word")
        log.append(f"async deposit posted in {sim.now - t0:.1f} us "
                   f"(the sender only pays the post overhead)")
        t0 = sim.now
        yield from vmmc.send(0, 1, size=4096, await_delivery=True)
        log.append(f"synchronous 4 KB deposit delivered in "
                   f"{sim.now - t0:.1f} us")

    def fetches():
        """Remote fetch: receiver-initiated, firmware-served."""
        yield sim.timeout(1000.0)
        t0 = sim.now
        yield from vmmc.fetch(2, 3, size=4096)
        log.append(f"remote fetch of a 4 KB page took {sim.now - t0:.1f} us "
                   f"(paper: ~110 us) — node 3's processors were never "
                   f"involved")

    def lockers(node, hold_us):
        yield sim.timeout(2000.0)
        t0 = sim.now
        ts = yield from locks.acquire(node, lock_id=7)
        log.append(f"node {node} acquired NI lock 7 after "
                   f"{sim.now - t0:.1f} us (timestamp payload: {ts!r})")
        yield sim.timeout(hold_us)
        yield from locks.release(node, 7, ts=f"clock-of-node-{node}")

    sim.process(deposits())
    sim.process(fetches())
    for node, hold in ((0, 50.0), (2, 30.0), (3, 10.0)):
        sim.process(lockers(node, hold))
    sim.run()

    for line in log:
        print(line)
    print(f"\nfirmware-handled packets (never entered a host delivery "
          f"path): {sum(nic.fw_packets for nic in machine.nics)}")
    print(f"total packets monitored: {monitor.total_packets}, "
          f"by kind: {monitor.packets_by_kind}")


if __name__ == "__main__":
    main()
