#!/usr/bin/env python3
"""Walk one application up the protocol ladder (Section 3.3).

Shows, mechanism by mechanism, where the interrupts go and what each
NI extension buys: Base -> DW (direct writes) -> +RF (remote fetch)
-> +DD (direct diffs) -> +NIL (NI locks) = GeNIMA.

    python examples/protocol_ladder.py [app-name]
"""

import sys

from repro import PROTOCOL_LADDER, run_sequential, run_svm, speedup
from repro.apps import APP_REGISTRY
from repro.experiments import format_table


def main(app_name: str = "Water-nsquared"):
    if app_name not in APP_REGISTRY:
        raise SystemExit(f"unknown app {app_name!r}; "
                         f"choose from {sorted(APP_REGISTRY)}")
    cls = APP_REGISTRY[app_name]
    seq = run_sequential(cls())
    rows = []
    for features in PROTOCOL_LADDER:
        result = run_svm(cls(), features)
        mean = result.mean_breakdown
        rows.append((
            features.name,
            speedup(seq, result),
            result.stats["interrupts"],
            result.stats["messages"],
            mean.data / 1000.0,
            mean.lock / 1000.0,
            mean.barrier / 1000.0,
        ))
    print(format_table(
        ["Protocol", "Speedup", "Interrupts", "Messages",
         "Data(ms)", "Lock(ms)", "Barrier(ms)"],
        rows,
        title=f"{app_name}: the GeNIMA protocol ladder "
              f"(seq = {seq.time_us / 1000:.0f} ms)"))
    print("\nNote how the interrupt count falls to zero as each NI "
          "mechanism takes over\nanother piece of asynchronous protocol "
          "processing.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Water-nsquared")
