#!/usr/bin/env python3
"""Write your own application against the public API.

A small producer/consumer pipeline: stage 0 processes chunks and
releases a flag per chunk; stage 1 consumes them.  The same code runs
on the SVM cluster (any protocol), the hardware-DSM yardstick and a
single processor.

    python examples/custom_application.py
"""

from repro import BASE, GENIMA, run_hwdsm, run_sequential, run_svm, speedup
from repro.apps import Application, pages_for_bytes, register


class Pipeline(Application):
    """Half the processes produce, half consume, through shared pages."""

    name = "Pipeline"
    bus_intensity = 0.2

    def __init__(self, chunks: int = 64, chunk_kb: int = 16):
        self.chunks = chunks
        self.chunk_pages = pages_for_bytes(chunk_kb << 10)

    def setup(self, backend):
        total = self.chunks * self.chunk_pages
        return {"buf": backend.allocate("pipe.buf", total,
                                        home_policy="blocked")}

    def chunk_pages_of(self, chunk):
        start = chunk * self.chunk_pages
        return range(start, start + self.chunk_pages)

    def process(self, ctx, regions):
        buf = regions["buf"]
        half = max(ctx.nprocs // 2, 1)
        if ctx.rank < half:                      # producer
            for chunk in range(ctx.rank, self.chunks, half):
                yield from ctx.compute(400.0)
                yield from ctx.write(buf, self.chunk_pages_of(chunk),
                                     runs_per_page=1)
                yield from ctx.release_flag(chunk)
        else:                                     # consumer
            me = ctx.rank - half
            consumers = ctx.nprocs - half
            for chunk in range(me, self.chunks, consumers):
                yield from ctx.acquire_flag(chunk)
                yield from ctx.read(buf, self.chunk_pages_of(chunk))
                yield from ctx.compute(400.0)
        yield from ctx.barrier()


def main():
    seq = run_sequential(Pipeline())
    print(f"sequential: {seq.time_us / 1000:.1f} ms")
    for label, run in (
        ("SVM / Base", lambda: run_svm(Pipeline(), BASE)),
        ("SVM / GeNIMA", lambda: run_svm(Pipeline(), GENIMA)),
        ("hardware DSM", lambda: run_hwdsm(Pipeline())),
    ):
        result = run()
        extra = ""
        if result.stats:
            extra = (f"  (interrupts={result.stats['interrupts']}, "
                     f"messages={result.stats['messages']})")
        print(f"{label:14s} speedup {speedup(seq, result):5.2f}{extra}")


if __name__ == "__main__":
    main()
