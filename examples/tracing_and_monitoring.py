#!/usr/bin/env python3
"""Observe a run from the inside: protocol tracing + the NI monitor.

Attaches a Tracer to the protocol (faults, diffs, locks, barriers) and
reads the firmware performance monitor the way Section 4 of the paper
does — per-stage contention ratios for small and large packets.

    python examples/tracing_and_monitoring.py
"""

from repro.hw import MachineConfig
from repro.sim import Tracer
from repro.svm import GENIMA
from repro.apps import Ocean
from repro.runtime import SVMBackend, run_on_backend


def main():
    tracer = Tracer(categories={"lock", "barrier", "diff", "fetch"})
    backend = SVMBackend(MachineConfig(), GENIMA, tracer=tracer)
    result = run_on_backend(Ocean(n=258, sweeps=8), backend,
                            system="GeNIMA")
    print(f"run finished: {result.time_us / 1000:.1f} ms simulated\n")

    print("trace event counts:")
    for category, count in sorted(tracer.counts().items()):
        print(f"  {category:18s} {count}")

    print("\nlast few protocol events:")
    print(tracer.to_text(limit=6))

    print("\nNI monitor, per-stage contention ratios "
          "(avg time / uncontended time):")
    for size_class in ("small", "large"):
        ratios = backend.monitor.ratios(size_class)
        print(f"  {size_class:5s}: source={ratios.source:.2f} "
              f"lanai={ratios.lanai:.2f} net={ratios.net:.2f} "
              f"dest={ratios.dest:.2f}  ({ratios.packets} packets)")
    print(f"\npackets by kind: {backend.monitor.packets_by_kind}")


if __name__ == "__main__":
    main()
