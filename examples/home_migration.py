#!/usr/bin/env python3
"""Home placement matters: first touch and migration.

HLRC propagates every update to the page's home, so a page homed at
its writer costs nothing to update while a page homed elsewhere pays
twins, diffs and messages.  This example shows (1) first-touch
allocation giving writers local homes automatically, and (2) migrating
a badly-placed home at a phase boundary when the writer changes.

    python examples/home_migration.py
"""

from repro.hw import Machine, MachineConfig
from repro.svm import GENIMA, HLRCProtocol


def run(label, build):
    machine = Machine(MachineConfig())
    proto = HLRCProtocol(machine, GENIMA)
    done = []

    def wrap(gen):
        yield from gen
        done.append(1)

    for gen in build(proto):
        machine.sim.process(wrap(gen))
    machine.run()
    assert len(done) == 16
    print(f"{label:28s} time={machine.sim.now / 1000:7.2f} ms  "
          f"diff msgs={proto.diff_runs_sent + proto.diffs_sent:5d}  "
          f"migrations={proto.home_migrations}")


def phase_worker(proto, region, rank, writer_rank, rounds=6):
    """One rank repeatedly updates 4 pages; everyone barriers along."""
    for _ in range(rounds):
        if rank == writer_rank:
            yield from proto.write(rank, region, range(4),
                                   runs_per_page=2, bytes_per_page=512)
        yield from proto.barrier(rank)


def badly_placed(proto):
    # Pages homed on node 0, but rank 12 (node 3) writes them: every
    # round diffs cross the network.
    region = proto.allocate("data", 4, home_policy="node:0")
    return [phase_worker(proto, region, r, writer_rank=12)
            for r in range(16)]


def first_touch(proto):
    # First-touch puts the homes where the writer lives: all updates
    # are home-local, no diff messages at all.
    region = proto.allocate("data", 4, home_policy="first_touch")
    return [phase_worker(proto, region, r, writer_rank=12)
            for r in range(16)]


def migrated(proto):
    # Start badly placed, then migrate at the first phase boundary.
    region = proto.allocate("data", 4, home_policy="node:0")

    def worker(rank):
        yield from phase_worker(proto, region, rank, writer_rank=12,
                                rounds=1)
        if rank == 12:
            for page in range(4):
                yield from proto.migrate_home(12, region, page)
        yield from proto.barrier(rank)
        yield from phase_worker(proto, region, rank, writer_rank=12,
                                rounds=5)

    return [worker(r) for r in range(16)]


def main():
    print("rank 12 (node 3) updates 4 shared pages every round:\n")
    run("homes on node 0 (bad)", badly_placed)
    run("first-touch homes", first_touch)
    run("migrated after round 1", migrated)
    print("\nFirst-touch avoids the diff traffic entirely; migration "
          "recovers most of it\nafter paying the one-time transfer.")


if __name__ == "__main__":
    main()
