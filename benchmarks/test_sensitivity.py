"""Sensitivity and scaling benchmarks.

The interrupt-cost sweep is the mechanism check behind the whole
paper: GeNIMA's advantage must come specifically from eliminating
interrupt-driven asynchronous protocol processing.
"""

from repro.experiments import (interrupt_cost_sensitivity,
                               render_scaling, render_sensitivity,
                               scaling_study)

APP = "Water-nsquared"


def test_interrupt_cost_sensitivity(once, save_result):
    rows = once(interrupt_cost_sensitivity, APP)
    save_result("sensitivity_interrupt", render_sensitivity(rows, APP))

    gains = [r["genima_gain_pct"] for r in rows]
    base = [r["base_speedup"] for r in rows]
    genima = [r["genima_speedup"] for r in rows]
    # GeNIMA's advantage grows monotonically with interrupt cost...
    assert all(a < b for a, b in zip(gains, gains[1:])), gains
    # ...because Base degrades while GeNIMA is interrupt-free.
    assert all(a >= b for a, b in zip(base, base[1:])), base
    spread = max(genima) - min(genima)
    assert spread < 0.1 * max(genima), genima
    # with near-free interrupts, GeNIMA's extra traffic buys little
    assert gains[0] < 25.0
    # at high interrupt cost, the advantage is large
    assert gains[-1] > 50.0


def test_scaling_study(once, save_result):
    rows = once(scaling_study, "Water-spatial")
    save_result("scaling", render_scaling(rows, "Water-spatial"))

    base = [r["base_speedup"] for r in rows]
    genima = [r["genima_speedup"] for r in rows]
    # both protocols scale with system size on a well-behaved app
    assert all(a < b for a, b in zip(base, base[1:]))
    assert all(a < b for a, b in zip(genima, genima[1:]))
    # GeNIMA's edge appears once there is inter-node traffic (>1 node)
    assert genima[-1] > base[-1] * 1.05
