"""Table 4: per-stage contention ratios for large packets.

Shape to reproduce (Section 4): large messages behave very similarly in
the two protocols — contention in the NI is small in both cases, far
below the small-message ratios of Table 3.
"""

import statistics

from repro.experiments import compute_table34, render_table34

STAGES = ("source", "lanai", "net", "dest")


def test_table4_large_messages(once, save_result):
    data = once(compute_table34)
    save_result("table4", render_table34(data, "large"))

    # Large messages behave similarly in the two protocols for the
    # bulk of the suite.  (Deviation from the paper: our Radix and
    # Barnes-spatial push page-size deliveries behind their diff-run
    # floods, inflating the dest stage — see EXPERIMENTS.md.)
    similar = 0
    total = 0
    for app, v in data.items():
        base = v["large"]["Base"]
        genima = v["large"]["GeNIMA"]
        for stage in STAGES:
            if base[stage] > 0 and genima[stage] > 0:
                total += 1
                if 0.3 < genima[stage] / base[stage] < 3.5:
                    similar += 1
    assert total > 0
    assert similar / total >= 0.8, (similar, total)

    # large-message contention is low overall...
    base_means = [statistics.mean(v["large"]["Base"][s] for s in STAGES)
                  for v in data.values()
                  if any(v["large"]["Base"][s] for s in STAGES)]
    assert statistics.mean(base_means) < 2.5
    # ...and below the small-message contention of the same runs.
    small_means = [statistics.mean(v["small"]["GeNIMA"][s] for s in STAGES)
                   for v in data.values()]
    large_means = [statistics.mean(v["large"]["GeNIMA"][s] for s in STAGES)
                   for v in data.values()
                   if any(v["large"]["GeNIMA"][s] for s in STAGES)]
    assert statistics.mean(large_means) < statistics.mean(small_means)
