"""Ablations for Section 3.3's prose findings (see
repro.experiments.ablations for the design rationale of each)."""

from repro.experiments import (ablate_diff_scatter, ablate_eager_wn,
                               ablate_hol_blocking, ablate_post_queue,
                               render_ablation)


def test_hol_blocking_ablation(once, save_result):
    """NI locks dodge the delivery FIFO: under the same eager
    invalidation traffic, lock time collapses only with NIL."""
    rows = once(ablate_hol_blocking)
    save_result("ablation_hol",
                render_ablation(rows, "Ablation: lock head-of-line blocking "
                                      "(Water-nsquared)"))
    by_name = {r["protocol"]: r for r in rows}
    # DW's eager traffic makes lock time worse than Base...
    assert by_name["DW"]["lock_ms"] > by_name["Base"]["lock_ms"]
    # ...and firmware locks cut it far below both.
    assert by_name["GeNIMA"]["lock_ms"] < 0.6 * by_name["DW"]["lock_ms"]


def test_post_queue_ablation(once, save_result):
    """The direct-diff flood is relieved by a faster NI message path
    (the paper's remedy (iii), which recovered Barnes-spatial's
    speedup), while post-queue depth alone has a smaller effect."""
    rows = once(ablate_post_queue)
    save_result("ablation_post_queue",
                render_ablation(rows, "Ablation: NI speed and post-queue "
                                      "depth under direct diffs "
                                      "(Barnes-spatial)"))
    slow = [r for r in rows if r["ni_proc_us"] == 5.0]
    fast = [r for r in rows if r["ni_proc_us"] == 2.0]
    # a faster NI message path recovers a large part of the loss
    assert max(f["speedup"] for f in fast) \
        > 1.15 * max(s["speedup"] for s in slow)
    # queue depth alone moves the result much less than NI speed
    depth_effect = (max(s["speedup"] for s in slow)
                    - min(s["speedup"] for s in slow))
    speed_effect = (max(f["speedup"] for f in fast)
                    - min(s["speedup"] for s in slow))
    assert speed_effect > 2 * max(depth_effect, 1e-9)


def test_diff_scatter_ablation(once, save_result):
    """Direct diffs win for contiguous updates and lose as in-page
    scatter grows; packed diffs are insensitive to scatter."""
    rows = once(ablate_diff_scatter)
    save_result("ablation_scatter",
                render_ablation(rows, "Ablation: packed vs direct diffs "
                                      "vs write scatter"))
    contiguous = rows[0]
    scattered = rows[-1]
    # direct diffs degrade with scatter
    assert scattered["direct_speedup"] < contiguous["direct_speedup"]
    # message blow-up is roughly proportional to runs per page
    assert scattered["direct_messages"] > 5 * contiguous["direct_messages"]
    # at extreme scatter the packed scheme wins
    assert scattered["packed_speedup"] > scattered["direct_speedup"]


def test_eager_wn_ablation(once, save_result):
    """Eager write-notice broadcast multiplies small-message counts
    relative to Base's piggybacking."""
    rows = once(ablate_eager_wn)
    save_result("ablation_eager_wn",
                render_ablation(rows, "Ablation: eager vs piggybacked "
                                      "write notices (Water-nsquared)"))
    by_name = {r["protocol"]: r for r in rows}
    assert by_name["Base"]["wn_messages"] == 0
    assert by_name["DW"]["wn_messages"] > 100
    assert by_name["DW"]["messages"] > 1.5 * by_name["Base"]["messages"]
