"""Figure 2: speedups across the protocol ladder per application.

Shapes to reproduce (Section 3.3):
* DW alone hurts Water-nsquared (eager invalidation traffic delays
  lock requests in the shared delivery FIFO);
* remote fetch helps every application;
* direct diffs are a large loss for Barnes-spatial (scattered diffs);
* full GeNIMA beats Base everywhere except Barnes-spatial.
"""

from repro.experiments import compute_figure2, render_figure2


def test_figure2(once, save_result):
    data = once(compute_figure2)
    save_result("figure2", render_figure2(data))

    # Water-nsquared regresses under DW and recovers only with NIL.
    wns = data["Water-nsquared"]
    assert wns["DW"] < wns["Base"]
    assert wns["GeNIMA"] > wns["Base"]
    assert wns["GeNIMA"] > wns["DW+RF+DD"]

    # Remote fetch improves on DW for every application.
    for app, vals in data.items():
        assert vals["DW+RF"] >= vals["DW"] * 0.98, app

    # The Barnes-spatial direct-diff pathology.
    bsp = data["Barnes-spatial"]
    assert bsp["DW+RF+DD"] < 0.8 * bsp["DW+RF"]
    assert bsp["GeNIMA"] < bsp["Base"]  # the paper's one regression

    # Everywhere else GeNIMA wins over Base.
    for app, vals in data.items():
        if app == "Barnes-spatial":
            continue
        assert vals["GeNIMA"] > vals["Base"], app
