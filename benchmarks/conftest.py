"""Shared benchmark fixtures: run-once semantics and result files."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once (simulations are
    deterministic; repeating them only repeats identical work)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run


@pytest.fixture
def save_result():
    """Write a rendered table to results/<name>.txt and echo it."""

    def save(name: str, text: str):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)
        return path

    return save
