"""Table 2: barrier time (BT), barrier protocol share (BPT), mprotect
share of SVM overhead (MT), under GeNIMA.

Shapes to reproduce: for FFT, Radix-local and Barnes-spatial most of
the barrier cost is protocol processing (paper: 87% / 94% / 82%);
Radix-local has both the largest barrier share and by far the largest
mprotect share (~52% of all SVM overhead).
"""

from repro.experiments import compute_table2, render_table2


def test_table2(once, save_result):
    data = once(compute_table2)
    save_result("table2", render_table2(data))

    for app, v in data.items():
        assert 0.0 <= v["BT"] <= 100.0, app
        assert 0.0 <= v["BPT"] <= 100.0, app
        assert 0.0 <= v["MT"] <= 100.0, app

    # protocol processing dominates barrier time for the big movers
    # (paper: FFT 87%, Radix 94%, Barnes-spatial 82%)
    for app in ("FFT", "Radix-local", "Barnes-spatial"):
        assert data[app]["BPT"] > 60.0, (app, data[app])

    # mprotect is a visible cost where many pages are invalidated per
    # phase (paper: Ocean 8.6%, Water-spatial 23.9%).  Our Radix MT
    # underestimates the paper's 51.9% because its write-fault fetch
    # time dominates the overhead denominator — see EXPERIMENTS.md.
    assert data["Water-spatial"]["MT"] > 10.0
    assert data["Ocean-rowwise"]["MT"] > 5.0
    assert data["Radix-local"]["MT"] > 1.5
    # barrier-bound applications
    assert data["Barnes-spatial"]["BT"] > 25.0
    assert data["Radix-local"]["BT"] > 12.0
