"""Table 5: 32-processor speedups (8 nodes x 4-way), GeNIMA vs Origin.

Shape to reproduce: many applications continue to scale reasonably to
32 processors under GeNIMA, but the hardware machine stays ahead and
the badly-behaved applications (Radix, Barnes-original) stay bad.
"""

from repro.experiments import compute_figure4, compute_table5, render_table5


def test_table5_32_processors(once, save_result):
    data = once(compute_table5)
    save_result("table5", render_table5(data))

    for app, v in data.items():
        assert v["SVM"] > 0.0, app
        assert v["Origin"] > v["SVM"] * 0.8, app  # hardware (almost) ahead

    # several applications scale reasonably at 32 processors
    assert sum(1 for v in data.values() if v["SVM"] > 6.0) >= 3
    # the poor performers remain poor
    assert data["Radix-local"]["SVM"] < 4.0
    assert data["Barnes-original"]["SVM"] < 6.0

    # scaling 16 -> 32 helps at least some of the well-behaved apps
    sixteen = compute_figure4()
    improved = sum(1 for app in data
                   if data[app]["SVM"] > sixteen[app]["GeNIMA"] * 1.05)
    assert improved >= 3, improved
