"""Figure 4: Origin 2000 vs Base vs GeNIMA speedups.

Shape to reproduce: GeNIMA brings SVM much closer to hardware
coherence (~38% mean improvement for well-performing apps, more for
poor ones), but a gap to the hardware machine remains.
"""

import statistics

from repro.experiments import compute_figure4, render_figure4

POOR_PERFORMERS = {"Radix-local", "Barnes-original"}


def test_figure4(once, save_result):
    data = once(compute_figure4)
    save_result("figure4", render_figure4(data))

    # GeNIMA beats Base for everything but Barnes-spatial.
    for app, v in data.items():
        if app != "Barnes-spatial":
            assert v["GeNIMA"] > v["Base"], app

    # Mean improvement for reasonably well performing applications is
    # substantial (paper: ~37-38%), and larger for the poor performers
    # (paper: up to ~120%).
    good = [app for app in data if app not in POOR_PERFORMERS
            and app != "Barnes-spatial"]
    good_gain = statistics.mean(
        data[a]["GeNIMA"] / data[a]["Base"] - 1.0 for a in good)
    poor_gain = statistics.mean(
        data[a]["GeNIMA"] / data[a]["Base"] - 1.0 for a in POOR_PERFORMERS)
    assert 0.15 <= good_gain <= 0.90, good_gain
    assert poor_gain > good_gain
    assert poor_gain > 0.5, poor_gain

    # The hardware machine stays ahead of GeNIMA for most applications.
    ahead = sum(1 for v in data.values() if v["Origin"] > v["GeNIMA"])
    assert ahead >= 8
