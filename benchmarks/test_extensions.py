"""Section 5 extension benchmarks: the paper's future-work predictions.

The paper: scatter-gather "would greatly reduce the number of messages
and the contention at the post queue, but would increase the NI
occupancy at both the sending and receiving sides"; multicast/broadcast
support in the NI would help now that coherence information is
broadcast at releases.
"""

from repro.experiments import format_table
from repro.runtime import run_sequential, run_svm
from repro.svm import DW_RF, GENIMA, GENIMA_MC, GENIMA_SG
from repro.apps import BarnesSpatial, WaterNsquared


def _barnes_grid():
    seq = run_sequential(BarnesSpatial())
    rows = []
    for feats in (DW_RF, GENIMA, GENIMA_SG):
        res = run_svm(BarnesSpatial(), feats)
        rows.append({
            "protocol": feats.name,
            "speedup": seq.time_us / res.time_us,
            "messages": res.stats["messages"],
        })
    return rows


def test_scatter_gather_rescues_barnes_spatial(once, save_result):
    rows = once(_barnes_grid)
    save_result("extension_sg", format_table(
        ["protocol", "speedup", "messages"],
        [(r["protocol"], r["speedup"], r["messages"]) for r in rows],
        title="Extension: scatter-gather diffs (Barnes-spatial)"))
    by = {r["protocol"]: r for r in rows}
    # SG collapses the message blow-up back to one message per page...
    assert by["GeNIMA+SG"]["messages"] < 0.2 * by["GeNIMA"]["messages"]
    # ...and recovers most of the speedup direct diffs lost...
    assert by["GeNIMA+SG"]["speedup"] > 1.3 * by["GeNIMA"]["speedup"]
    # ...without quite reaching the interrupt-free-but-packed ideal
    # (the NIs pay pack/unpack occupancy).
    assert by["GeNIMA+SG"]["speedup"] <= 1.05 * by["DW+RF"]["speedup"]


def _water_grid():
    seq = run_sequential(WaterNsquared())
    rows = []
    for feats in (GENIMA, GENIMA_MC):
        res = run_svm(WaterNsquared(), feats)
        rows.append({
            "protocol": feats.name,
            "speedup": seq.time_us / res.time_us,
            "messages": res.stats["messages"],
            "wn_messages": res.stats["wn_messages"],
        })
    return rows


def test_ni_multicast_cuts_wn_traffic(once, save_result):
    rows = once(_water_grid)
    save_result("extension_mc", format_table(
        ["protocol", "speedup", "messages", "wn_messages"],
        [(r["protocol"], r["speedup"], r["messages"], r["wn_messages"])
         for r in rows],
        title="Extension: NI multicast for write notices "
              "(Water-nsquared)"))
    by = {r["protocol"]: r for r in rows}
    # one descriptor replaces nodes-1 posts
    assert by["GeNIMA+MC"]["wn_messages"] < 0.5 * by["GeNIMA"]["wn_messages"]
    assert by["GeNIMA+MC"]["messages"] < by["GeNIMA"]["messages"]
    # performance is at worst neutral (the sends were asynchronous)
    assert by["GeNIMA+MC"]["speedup"] > 0.9 * by["GeNIMA"]["speedup"]
