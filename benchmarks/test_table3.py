"""Table 3: per-stage contention ratios for small packets, Base vs
GeNIMA.

Shape to reproduce (Section 4): GeNIMA *increases* small-message
contention in the NI and network for almost all applications — and
performs better anyway, because its operations are asynchronous and
the processor only pays the small post overhead.
"""

import statistics

from repro.experiments import compute_table34, render_table34


def test_table3_small_messages(once, save_result):
    data = once(compute_table34)
    save_result("table3", render_table34(data, "small"))

    stages = ("source", "lanai", "net", "dest")
    higher = 0
    comparisons = 0
    for app, v in data.items():
        base = v["small"]["Base"]
        genima = v["small"]["GeNIMA"]
        for stage in stages:
            if base[stage] and genima[stage]:
                comparisons += 1
                if genima[stage] >= base[stage] * 0.95:
                    higher += 1
        # ratios are at least ~1 (time can't beat uncontended)
        for system in ("Base", "GeNIMA"):
            for stage in stages:
                assert v["small"][system][stage] > 0.8, (app, system, stage)

    # GeNIMA shows contention at least as high for most cells.
    assert comparisons > 0
    assert higher / comparisons >= 0.5

    # mean small-message contention under GeNIMA is clearly above 1.
    genima_means = [statistics.mean(v["small"]["GeNIMA"][s]
                                    for s in stages)
                    for v in data.values()]
    assert statistics.mean(genima_means) > 1.2
