"""Figure 3: normalized execution-time breakdowns, all apps x protocols.

Shapes to reproduce: compute time is protocol-invariant; lock time
dominates Water-nsquared and Barnes-original under Base; GeNIMA's
stacked bar is shorter than Base's for every app but Barnes-spatial;
remote fetch shrinks the data segment.
"""

from repro.experiments import compute_figure3, render_figure3
from repro.sim import BUCKETS


def test_figure3(once, save_result):
    data = once(compute_figure3)
    save_result("figure3", render_figure3(data))

    for app, per_protocol in data.items():
        base = per_protocol["Base"]
        genima = per_protocol["GeNIMA"]
        # fractions are sane
        for name, frac in per_protocol.items():
            for bucket in BUCKETS:
                assert frac[bucket] >= 0.0, (app, name, bucket)
        # Base normalizes to 1.0 by construction
        assert abs(sum(base.values()) - 1.0) < 0.02, app
        # compute is protocol-invariant
        assert abs(base["compute"] - genima["compute"]) < 0.02, app
        # GeNIMA's bar is shorter everywhere except Barnes-spatial
        if app != "Barnes-spatial":
            assert sum(genima.values()) < 1.02, app

    # lock-dominated applications under Base
    for app in ("Water-nsquared", "Barnes-original"):
        base = data[app]["Base"]
        assert base["lock"] == max(base[b] for b in BUCKETS), app
        # and NIL cuts that segment substantially
        assert data[app]["GeNIMA"]["lock"] < 0.55 * base["lock"], app

    # remote fetch shrinks the data segment for data-heavy apps
    for app in ("FFT", "Raytrace", "Radix-local"):
        assert (data[app]["DW+RF"]["data"]
                < data[app]["DW"]["data"] * 0.95), app
