"""Section 3.1 calibration: the simulated communication layer must hit
the paper's stated microbenchmark numbers (within tolerance bands)."""

from repro.experiments import (measure_comm_layer, measure_page_fetch,
                               render_calibration)


def test_calibration_microbenchmarks(once, save_result):
    comm = once(measure_comm_layer)
    fetch = measure_page_fetch()
    save_result("calibration", render_calibration(comm, fetch))

    # ~2 us async post overhead
    assert 1.0 <= comm["post_overhead_us"] <= 4.0
    # ~18 us one-way one-word latency
    assert 12.0 <= comm["one_word_latency_us"] <= 24.0
    # ~95 MB/s maximum bandwidth
    assert 75.0 <= comm["bandwidth_mbps"] <= 125.0
    # ~110 us 4 KB page fetch with remote fetch
    assert 85.0 <= fetch["rf_page_fetch_us"] <= 150.0
    # ~200 us through the interrupt path
    assert 160.0 <= fetch["base_page_fetch_us"] <= 290.0
    # and the headline relation: RF fetches are much cheaper
    assert fetch["rf_page_fetch_us"] < 0.65 * fetch["base_page_fetch_us"]
