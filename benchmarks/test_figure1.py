"""Figure 1: hardware DSM vs Base SVM speedups, 16 processors.

Shape to reproduce: the hardware-coherent machine is far ahead of the
Base SVM protocol on every application — the performance gap that
motivates the paper.
"""

import statistics

from repro.experiments import compute_figure1, render_figure1


def test_figure1(once, save_result):
    data = once(compute_figure1)
    save_result("figure1", render_figure1(data))

    for app, vals in data.items():
        assert vals["Origin"] > vals["Base"], app
        assert vals["Origin"] > 4.0, app  # hardware DSM scales well

    origin_mean = statistics.mean(v["Origin"] for v in data.values())
    base_mean = statistics.mean(v["Base"] for v in data.values())
    # the motivating gap: hardware coherence is a multiple ahead
    assert origin_mean > 2.0 * base_mean
    # and some applications barely speed up at all under Base SVM
    assert min(v["Base"] for v in data.values()) < 2.0
