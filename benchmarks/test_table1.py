"""Table 1: per-application improvement percentages.

Columns (paper definitions): overall Base->GeNIMA, data-wait DW->DW+RF
(and DW->GeNIMA in parentheses), lock DW+RF+DD->GeNIMA.

Shapes to reproduce: data-wait improvements of up to ~45% (> 20% for
most applications), lock-time improvements of up to ~60%, positive
overall improvement for every application except Barnes-spatial.
"""

from repro.experiments import compute_table1, render_table1


def test_table1(once, save_result):
    data = once(compute_table1)
    save_result("table1", render_table1(data))

    for app, v in data.items():
        assert v["uniproc_s"] > 0.05, app
        if app != "Barnes-spatial":
            assert v["overall_pct"] > 0, app

    # data wait: a large cut for the fetch-heavy applications...
    data_cuts = {app: v["data_pct"] for app, v in data.items()}
    assert max(data_cuts.values()) > 30.0
    # ...and > 15% for at least half the suite.
    assert sum(1 for v in data_cuts.values() if v > 15.0) >= 5

    # lock time: up to ~60% better with NI locks.
    lock_cuts = {app: v["lock_pct"] for app, v in data.items()}
    assert max(lock_cuts.values()) > 40.0
    for app in ("Water-nsquared", "Barnes-original"):
        assert lock_cuts[app] > 25.0, app
