"""Critical-path extraction: exactness, sanitizer pass and CLI."""

import json

import pytest

from repro import PROTOCOL_LADDER, run_svm
from repro.analysis import (Sanitizer, bucket_shares,
                            extract_critical_path, render_ladder_diff,
                            render_path)
from repro.apps import BarnesSpatial
from repro.cli import main
from repro.experiments import collect_critpath, collect_critpaths
from repro.obs import TIME_TOLERANCE_US
from repro.sim import Tracer
from repro.svm import GENIMA

pytestmark = pytest.mark.filterwarnings("ignore")


@pytest.fixture(scope="module")
def ladder_runs():
    """One spanned Barnes-spatial run per ladder variant (shared)."""
    return collect_critpaths(BarnesSpatial, PROTOCOL_LADDER)


def test_path_reconciles_with_wall_on_every_variant(ladder_runs):
    for run in ladder_runs:
        path = run.path
        assert path.complete, run.variant
        assert path.ok(TIME_TOLERANCE_US), \
            (run.variant, path.residual_us)
        assert path.wall_us == pytest.approx(run.result.time_us)


def test_path_structure(ladder_runs):
    path = ladder_runs[-1].path  # GeNIMA
    assert path.steps, "empty critical path"
    # steps are contiguous in time, start-to-end
    for a, b in zip(path.steps, path.steps[1:]):
        assert a.t1 == pytest.approx(b.t0)
        assert a.dur_us >= 0.0
    # the walk starts at some rank's run begin and ends on a rank track
    assert path.terminal_track.startswith("r")
    assert path.steps[-1].track.startswith("r")
    # every bucket total is non-negative and they sum to the total
    assert all(us >= 0.0 for us in path.buckets.values())
    assert sum(path.buckets.values()) == pytest.approx(path.total_us)
    shares = bucket_shares(path)
    assert sum(shares.values()) == pytest.approx(1.0)


def test_sanitizer_critical_path_check(ladder_runs):
    findings = Sanitizer(checks=["critical-path"]).run(
        ladder_runs[0].tracer.events)
    assert findings == []


def test_sanitizer_skips_unspanned_traces():
    tracer = Tracer(capacity=None)
    run_svm(BarnesSpatial(), GENIMA, tracer=tracer)  # spans off
    assert Sanitizer(checks=["critical-path"]).run(tracer.events) == []


def test_extract_requires_spans():
    tracer = Tracer(capacity=None)
    run_svm(BarnesSpatial(), GENIMA, tracer=tracer)  # spans off
    with pytest.raises(ValueError, match="spans=True"):
        extract_critical_path(tracer.events)


def test_renderers(ladder_runs):
    text = render_path(ladder_runs[0].path, name="Barnes/Base",
                       max_steps=5)
    assert "critical path [Barnes/Base]" in text
    assert "path total" in text and "wall" in text
    diff = render_ladder_diff({r.variant: r.path for r in ladder_runs})
    assert "Base" in diff and "GeNIMA" in diff and "vs Base" in diff


def test_collect_critpath_single():
    run = collect_critpath(BarnesSpatial(), GENIMA)
    assert run.variant == "GeNIMA"
    assert run.path.ok(TIME_TOLERANCE_US)
    # the tracer keeps the span stream for Perfetto export
    assert run.tracer.count_prefix("span") > 0


def test_cli_critpath(tmp_path, capsys):
    out = tmp_path / "cp.json"
    trace = tmp_path / "trace.json"
    assert main(["critpath", "--app", "barnes-spatial",
                 "--variant", "base", "--variant", "genima",
                 "--out", str(out), "--perfetto", str(trace)]) == 0
    stdout = capsys.readouterr().out
    assert "critical-path ladder" in stdout
    payload = json.loads(out.read_text())
    assert payload["schema"] == 1
    assert set(payload["paths"]) == {"Base", "GeNIMA"}
    for p in payload["paths"].values():
        assert abs(p["residual_us"]) <= TIME_TOLERANCE_US
    # per-variant suffix when several variants share one base name
    for slug in ("Base", "GeNIMA"):
        f = tmp_path / f"trace-{slug}.json"
        assert f.exists()
        events = json.loads(f.read_text())
        assert any(e["ph"] == "B" for e in events)
        assert any(e["ph"] == "s" for e in events)
