"""Integration tests for the VMMC communication layer on the NI model."""

import pytest

from repro.hw import Machine, MachineConfig
from repro.vmmc import NILockManager, PerfMonitor, VMMC


def make_stack(**overrides):
    cfg = MachineConfig(**overrides) if overrides else MachineConfig()
    machine = Machine(cfg)
    return machine, VMMC(machine)


# ----------------------------------------------------------------- deposits

def test_async_send_returns_after_post_overhead():
    machine, vmmc = make_stack()
    sim = machine.sim
    t_posted = []

    def sender():
        yield from vmmc.send(0, 1, size=64)
        t_posted.append(sim.now)

    sim.process(sender())
    sim.run()
    # Async send costs only the ~2us post overhead at the host.
    assert t_posted[0] == pytest.approx(machine.config.post_overhead_us)


def test_sync_send_waits_for_remote_delivery():
    machine, vmmc = make_stack()
    sim = machine.sim
    done = []

    def sender():
        yield from vmmc.send(0, 1, size=8, await_delivery=True)
        done.append(sim.now)

    sim.process(sender())
    sim.run()
    # One-way one-word latency ~18us plus notification.
    assert 10.0 < done[0] < 30.0


def test_send_delivery_callback_fires_once():
    machine, vmmc = make_stack()
    sim = machine.sim
    hits = []

    def sender():
        yield from vmmc.send(0, 2, size=100,
                             on_delivered=lambda m: hits.append(sim.now))

    sim.process(sender())
    sim.run()
    assert len(hits) == 1


def test_multi_packet_message_delivered_whole():
    machine, vmmc = make_stack()
    sim = machine.sim
    done = []

    def sender():
        msg = yield from vmmc.send(0, 1, size=3 * 4096 + 100,
                                   await_delivery=True)
        done.append(msg)

    sim.process(sender())
    sim.run()
    assert done[0].packets_remaining == 0
    assert machine.nics[1].packets_received == 4


def test_loopback_deposit_is_local_memcpy():
    machine, vmmc = make_stack()
    sim = machine.sim
    t = []

    def sender():
        yield from vmmc.send(1, 1, size=4096)
        t.append(sim.now)

    sim.process(sender())
    sim.run()
    cfg = machine.config
    assert t[0] == pytest.approx(cfg.post_overhead_us
                                 + 4096 / cfg.host_memcpy_mbps)
    # The network never saw it.
    assert machine.network.packets_carried == 0


def test_loopback_sync_send_pays_notification():
    machine, vmmc = make_stack()
    sim = machine.sim
    t = []

    def sender():
        yield from vmmc.send(1, 1, size=4096, await_delivery=True)
        t.append(sim.now)

    sim.process(sender())
    sim.run()
    cfg = machine.config
    # A synchronous deposit charges the completion notification on the
    # in-node path too, just like the remote path does.
    assert t[0] == pytest.approx(cfg.post_overhead_us
                                 + 4096 / cfg.host_memcpy_mbps
                                 + cfg.notify_us)


def test_multicast_accounting_is_per_destination():
    machine, vmmc = make_stack()

    def sender():
        yield from vmmc.send_multicast(0, [1, 2, 3], size=512)

    machine.sim.process(sender())
    machine.sim.run()
    # The convention of repro.sim.stats: a multicast to k destinations
    # counts as k messages AND k payloads, like k unicast sends.
    assert vmmc.messages_sent == 3
    assert vmmc.bytes_sent == 3 * 512


def test_in_order_delivery_per_pair():
    machine, vmmc = make_stack()
    sim = machine.sim
    arrived = []

    def sender():
        for i in range(8):
            yield from vmmc.send(
                0, 1, size=64, payload=i,
                on_delivered=lambda m: arrived.append(m.payload))

    sim.process(sender())
    sim.run()
    assert arrived == list(range(8))


def test_post_queue_full_stalls_sender():
    machine, vmmc = make_stack(post_queue_len=2)
    sim = machine.sim
    times = []

    def sender():
        for _ in range(12):
            yield from vmmc.send(0, 1, size=4096)
            times.append(sim.now)

    sim.process(sender())
    sim.run()
    # With a 2-entry post queue and ~36us per 4KB source DMA, later
    # posts must wait for the queue to drain: spacing approaches the
    # DMA service time, far above the 2us post overhead.
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert max(gaps) > 20.0
    assert machine.nics[0].post_queue.total_put_stall_time > 0


def test_delivery_handler_dispatch():
    machine, vmmc = make_stack()
    sim = machine.sim
    seen = []
    vmmc.register_delivery_handler(
        "page_req", lambda pkt: seen.append((pkt.dst, pkt.message.payload)))

    def sender():
        yield from vmmc.send(2, 3, size=16, kind="page_req", payload="p7")

    sim.process(sender())
    sim.run()
    assert seen == [(3, "p7")]


# ------------------------------------------------------------------- fetch

def test_remote_fetch_round_trip():
    machine, vmmc = make_stack()
    sim = machine.sim
    done = []

    def fetcher():
        reply = yield from vmmc.fetch(0, 1, size=4096)
        done.append((sim.now, reply))

    sim.process(fetcher())
    sim.run()
    t, reply = done[0]
    # ~110us in the paper; allow a generous band around the calibrated model.
    assert 80.0 < t < 160.0
    assert reply.kind == "fetch_reply"
    assert reply.size == 4096


def test_remote_fetch_on_served_snapshot():
    machine, vmmc = make_stack()
    sim = machine.sim
    state = {"version": 3}
    got = []

    def fetcher():
        reply = yield from vmmc.fetch(
            0, 1, size=64, on_served=lambda: state["version"])
        got.append(reply.payload)

    sim.process(fetcher())
    sim.run()
    assert got == [3]


def test_fetch_from_self_rejected():
    machine, vmmc = make_stack()

    def fetcher():
        yield from vmmc.fetch(1, 1, size=64)

    machine.sim.process(fetcher())
    with pytest.raises(ValueError):
        machine.sim.run()


def test_fetch_does_not_touch_remote_host_delivery_path():
    """Remote fetch must be served by NI firmware: nothing is delivered
    into the *home* host's memory and no delivery handler runs there."""
    machine, vmmc = make_stack()
    sim = machine.sim
    delivered_at_home = []
    machine.nics[1].on_delivery = \
        lambda pkt: delivered_at_home.append(pkt)

    def fetcher():
        yield from vmmc.fetch(0, 1, size=4096)

    sim.process(fetcher())
    sim.run()
    assert delivered_at_home == []
    assert machine.nics[1].fw_packets == 1  # the fetch_req itself


# ---------------------------------------------------------------- NI locks

def test_ni_lock_uncontended_acquire_release():
    machine, vmmc = make_stack()
    lm = NILockManager(vmmc, num_locks=4)
    sim = machine.sim
    log = []

    def proc():
        ts = yield from lm.acquire(0, lock_id=0)
        log.append(("acq", sim.now, ts))
        yield from lm.release(0, lock_id=0, ts="v1")
        log.append(("rel", sim.now))

    sim.process(proc())
    sim.run()
    assert log[0][0] == "acq"
    assert log[0][2] is None  # initial timestamp
    # Lock 0 homes on node 0: acquisition is a local NI op, a few us.
    assert log[0][1] < 25.0


def test_ni_lock_timestamp_travels_with_grant():
    machine, vmmc = make_stack()
    lm = NILockManager(vmmc, num_locks=4)
    sim = machine.sim
    got = []

    def first():
        yield from lm.acquire(0, lock_id=1)
        yield sim.timeout(50.0)
        yield from lm.release(0, lock_id=1, ts={"vc": [1, 0, 0, 0]})

    def second():
        yield sim.timeout(5.0)
        ts = yield from lm.acquire(2, lock_id=1)
        got.append(ts)
        yield from lm.release(2, lock_id=1, ts="later")

    sim.process(first())
    sim.process(second())
    sim.run()
    assert got == [{"vc": [1, 0, 0, 0]}]


def test_ni_lock_mutual_exclusion():
    machine, vmmc = make_stack()
    lm = NILockManager(vmmc, num_locks=1)
    sim = machine.sim
    active = [0]
    max_active = [0]
    order = []

    def proc(node, start):
        yield sim.timeout(start)
        yield from lm.acquire(node, 0)
        active[0] += 1
        max_active[0] = max(max_active[0], active[0])
        order.append(node)
        yield sim.timeout(100.0)
        active[0] -= 1
        yield from lm.release(node, 0)

    for node, start in [(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0)]:
        sim.process(proc(node, start))
    sim.run()
    assert max_active[0] == 1
    assert sorted(order) == [0, 1, 2, 3]


def test_ni_lock_fifo_through_home_chain():
    machine, vmmc = make_stack()
    lm = NILockManager(vmmc, num_locks=8)
    sim = machine.sim
    order = []

    def proc(node, start):
        yield sim.timeout(start)
        yield from lm.acquire(node, 3)
        order.append(node)
        yield sim.timeout(200.0)
        yield from lm.release(node, 3)

    # Requests arrive well-separated, so chain order == arrival order.
    for i, node in enumerate([2, 0, 3, 1]):
        sim.process(proc(node, i * 30.0))
    sim.run()
    assert order == [2, 0, 3, 1]


def test_ni_lock_same_node_handoff_is_local():
    machine, vmmc = make_stack()
    lm = NILockManager(vmmc, num_locks=4)
    sim = machine.sim
    t_released = []
    t_acquired = []

    def holder():
        yield from lm.acquire(1, 2)
        yield sim.timeout(100.0)
        yield from lm.release(1, 2)
        t_released.append(sim.now)

    def waiter():
        yield sim.timeout(50.0)
        yield from lm.acquire(1, 2)
        t_acquired.append(sim.now)
        yield from lm.release(1, 2)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert lm.local_grants >= 1
    # Handoff within the node avoids a network round trip: the waiter
    # gets the lock within a few microseconds of the release.
    assert abs(t_acquired[0] - t_released[0]) < 10.0


def test_ni_lock_messages_bypass_host_delivery():
    machine, vmmc = make_stack()
    lm = NILockManager(vmmc, num_locks=4)
    sim = machine.sim
    delivered = []
    for nic in machine.nics:
        nic.on_delivery = lambda pkt: delivered.append(pkt)

    def proc(node):
        yield from lm.acquire(node, 1)
        yield sim.timeout(10.0)
        yield from lm.release(node, 1)

    def chain():
        yield sim.process(proc(0))
        yield sim.process(proc(2))

    sim.process(chain())
    sim.run()
    assert delivered == []  # all lock traffic consumed by firmware


def test_ni_lock_double_release_asserts():
    machine, vmmc = make_stack()
    lm = NILockManager(vmmc, num_locks=1)
    sim = machine.sim

    def proc():
        yield from lm.acquire(0, 0)
        yield from lm.release(0, 0)
        yield from lm.release(0, 0)

    sim.process(proc())
    with pytest.raises(AssertionError):
        sim.run()


# ----------------------------------------------------------------- monitor

def test_monitor_counts_and_ratios():
    machine, vmmc = make_stack()
    monitor = PerfMonitor(machine)
    sim = machine.sim

    def sender(src, dst):
        for _ in range(5):
            yield from vmmc.send(src, dst, size=64)
            yield sim.timeout(200.0)  # keep the flow uncontended
            yield from vmmc.send(src, dst, size=4096)
            yield sim.timeout(200.0)

    sim.process(sender(0, 1))
    sim.process(sender(2, 3))
    sim.run()
    assert monitor.total_packets == 20
    small = monitor.ratios("small")
    large = monitor.ratios("large")
    # Well-spaced disjoint flows: ratios near 1 everywhere.
    for ratios in (small, large):
        for stage, value in ratios.as_dict().items():
            assert 0.8 < value < 2.0, (stage, value)


def test_monitor_detects_contention():
    """Many senders into one receiver should inflate dest-stage ratios."""
    machine, vmmc = make_stack()
    monitor = PerfMonitor(machine)
    sim = machine.sim

    def sender(src):
        for _ in range(30):
            yield from vmmc.send(src, 0, size=4096)

    for src in (1, 2, 3):
        sim.process(sender(src))
    sim.run()
    large = monitor.ratios("large")
    assert large.dest > 1.5  # queueing at node 0's delivery path


def test_monitor_invalid_size_class():
    machine, _vmmc = make_stack()
    monitor = PerfMonitor(machine)
    with pytest.raises(ValueError):
        monitor.ratios("medium")
