"""Per-application protocol-behaviour assertions.

Each SPLASH-2 model exists to exercise a specific sharing pattern; these
tests pin the pattern itself (what traffic the app generates), not its
performance — so an app edit that silently changes its character fails
here before it skews the benchmark shapes.
"""

import pytest

from repro.hw import MachineConfig
from repro.runtime import SVMBackend, run_on_backend
from repro.svm import BASE, GENIMA
from repro.apps import (FFT, LU, Ocean, Radix, Raytrace, Volrend,
                        BarnesOriginal, BarnesSpatial, WaterNsquared,
                        WaterSpatial)


def run(app, feats=GENIMA, **cfg):
    backend = SVMBackend(MachineConfig(**cfg) if cfg else MachineConfig(),
                         feats)
    result = run_on_backend(app, backend, system=feats.name)
    return result, backend.protocol


def test_fft_fetches_but_never_diffs():
    """FFT's transposes read remotely and write home-locally."""
    result, proto = run(FFT(log2_n=12))
    assert result.stats["page_fetches"] > 100
    assert result.stats["diffs_sent"] == 0
    assert result.stats["diff_runs_sent"] == 0
    assert result.stats["lock_acquires"] == 0
    assert result.mean_breakdown.lock == 0.0


def test_lu_has_no_locks_and_many_barriers():
    result, proto = run(LU(n=256, block=32))
    assert result.stats["lock_acquires"] == 0
    # three barriers per step
    assert proto.barriers.crossings == 3 * (256 // 32) + 1  # +1 init


def test_ocean_traffic_is_boundary_sized():
    """Ocean fetches only neighbour boundaries, not whole bands."""
    result, proto = run(Ocean(n=258, sweeps=6))
    app = Ocean(n=258, sweeps=6)
    band = app.total_pages() // 16
    # fetched pages per sweep stay far below a band's worth per proc
    assert result.stats["page_fetches"] < 6 * 16 * band / 2


def test_water_nsquared_is_lock_dominated_traffic():
    result, proto = run(WaterNsquared(molecules=256, steps=1))
    n = 256
    # per-molecule locking: each proc locks n/4 times per force phase
    expected = 16 * (n // 2) // 2
    assert result.stats["lock_acquires"] >= expected * 0.9


def test_water_spatial_locks_are_sparse():
    result, _ = run(WaterSpatial(molecules=1024, steps=2))
    assert result.stats["lock_acquires"] < 16 * 2 * 10


def test_radix_scatter_produces_remote_diff_floods():
    result, proto = run(Radix(keys=1 << 15, passes=2))
    # permutation writes dirty remotely-homed pages: diffs must flow
    assert result.stats["diff_runs_sent"] > 200
    # and the all-to-all causes heavy invalidation traffic
    assert proto.mprotect.grand_total_us > 0


def test_task_apps_steal_under_imbalance():
    for cls in (Volrend, Raytrace):
        app = cls(ntasks=128)
        result, proto = run(app)
        # stealing happened: queue locks were taken
        assert result.stats["lock_acquires"] > 0, cls.name
        assert sum(app._remaining) == 0


def test_barnes_original_locks_and_scattered_tree_reads():
    result, proto = run(BarnesOriginal(bodies=1024, steps=1))
    assert result.stats["lock_acquires"] > 200
    assert result.stats["page_fetches"] > 50


def test_barnes_spatial_diff_blowup_is_runs_driven():
    lo, _ = run(BarnesSpatial(bodies=2048, steps=1, scatter_runs=2))
    hi, _ = run(BarnesSpatial(bodies=2048, steps=1, scatter_runs=30))
    assert hi.stats["diff_runs_sent"] > 10 * lo.stats["diff_runs_sent"]


def test_base_vs_genima_same_logical_work():
    """Protocol choice must not change what the app does — only how
    the coherence work is carried out."""
    a, pa = run(WaterSpatial(molecules=1024, steps=1), BASE)
    b, pb = run(WaterSpatial(molecules=1024, steps=1), GENIMA)
    assert a.stats["lock_acquires"] == b.stats["lock_acquires"]
    assert pa.barriers.crossings == pb.barriers.crossings
    assert a.mean_breakdown.compute == pytest.approx(
        b.mean_breakdown.compute, rel=1e-6)


def test_apps_run_on_single_node_machine():
    """nodes=1: everything is intra-node; no network traffic at all."""
    result, proto = run(WaterSpatial(molecules=512, steps=1), GENIMA,
                        nodes=1)
    assert result.nprocs == 4
    assert proto.machine.network.packets_carried == 0
    assert result.stats["page_fetches"] == 0


def test_apps_run_on_two_node_machine():
    result, proto = run(Ocean(n=130, sweeps=3), GENIMA, nodes=2)
    assert result.nprocs == 8
    assert proto.machine.network.packets_carried > 0
