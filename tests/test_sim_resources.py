"""Unit tests for queueing primitives (Resource, Store, RateServer)."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store
from repro.sim.resources import RateServer


# ---------------------------------------------------------------- Resource

def test_resource_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(tag):
        yield res.request()
        start = sim.now
        yield sim.timeout(10.0)
        res.release()
        spans.append((tag, start, sim.now))

    for i in range(3):
        sim.process(worker(i))
    sim.run()
    assert spans == [(0, 0.0, 10.0), (1, 10.0, 20.0), (2, 20.0, 30.0)]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def worker(tag):
        yield res.request()
        yield sim.timeout(10.0)
        res.release()
        done.append((tag, sim.now))

    for i in range(4):
        sim.process(worker(i))
    sim.run()
    assert done == [(0, 10.0), (1, 10.0), (2, 20.0), (3, 20.0)]


def test_resource_fifo_grant_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(tag, arrive):
        yield sim.timeout(arrive)
        yield res.request()
        order.append(tag)
        yield sim.timeout(5.0)
        res.release()

    sim.process(worker("a", 0.0))
    sim.process(worker("b", 1.0))
    sim.process(worker("c", 2.0))
    sim.run()
    assert order == ["a", "b", "c"]


def test_release_idle_resource_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_use_helper_releases_on_completion():
    sim = Simulator()
    res = Resource(sim)

    def worker():
        yield from res.use(5.0)

    sim.process(worker())
    sim.run()
    assert res.in_use == 0
    assert sim.now == 5.0  # repro: noqa[float-time-eq] — exact determinism check


def test_resource_wait_time_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        yield res.request()
        yield sim.timeout(10.0)
        res.release()

    sim.process(worker())
    sim.process(worker())
    sim.run()
    assert res.total_requests == 2
    assert res.total_wait_time == pytest.approx(10.0)


def test_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


# ------------------------------------------------------------------- Store

def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        yield store.put("x")
        yield store.put("y")

    def consumer():
        a = yield store.get()
        b = yield store.get()
        got.extend([a, b])

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == ["x", "y"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(5.0)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(5.0, "late")]


def test_bounded_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=2)
    timeline = []

    def producer():
        for i in range(4):
            yield store.put(i)
            timeline.append(("put", i, sim.now))

    def consumer():
        yield sim.timeout(10.0)
        for _ in range(4):
            item = yield store.get()
            timeline.append(("get", item, sim.now))
            yield sim.timeout(10.0)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # puts 0 and 1 are immediate; put 2 waits for the first get at t=10,
    # put 3 for the second get at t=20.
    assert ("put", 0, 0.0) in timeline
    assert ("put", 1, 0.0) in timeline
    assert ("put", 2, 10.0) in timeline
    assert ("put", 3, 20.0) in timeline
    # put 2 stalls t=0..10; put 3 arrives at t=10 and stalls until t=20.
    assert store.total_put_stall_time == pytest.approx(10.0 + 10.0)


def test_store_fifo_ordering_preserved():
    sim = Simulator()
    store = Store(sim, capacity=8)
    got = []

    def producer():
        for i in range(8):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer():
        yield sim.timeout(3.5)
        for _ in range(8):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == list(range(8))


def test_store_handoff_to_waiting_getter_bypasses_buffer():
    sim = Simulator()
    store = Store(sim, capacity=1)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    def producer():
        yield sim.timeout(1.0)
        yield store.put("direct")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == ["direct"]
    assert len(store) == 0


def test_store_max_occupancy_tracked():
    sim = Simulator()
    store = Store(sim, capacity=16)

    def producer():
        for i in range(5):
            yield store.put(i)

    sim.process(producer())
    sim.run()
    assert store.max_occupancy == 5


# -------------------------------------------------------------- RateServer

def test_rate_server_service_time():
    sim = Simulator()
    link = RateServer(sim, bandwidth_mbps=100.0, overhead_us=2.0)
    assert link.service_time(1000) == pytest.approx(2.0 + 10.0)


def test_rate_server_serializes_transfers():
    sim = Simulator()
    link = RateServer(sim, bandwidth_mbps=100.0)
    done = []

    def sender(tag, size):
        yield from link.transfer(size)
        done.append((tag, sim.now))

    sim.process(sender("a", 1000))
    sim.process(sender("b", 1000))
    sim.run()
    assert done == [("a", 10.0), ("b", 20.0)]
    assert link.total_bytes == 2000


def test_rate_server_rejects_nonpositive_bandwidth():
    sim = Simulator()
    with pytest.raises(ValueError):
        RateServer(sim, bandwidth_mbps=0.0)
