"""Tests for the experiment daemon (repro.serve).

The contracts under test:

* **wire protocol** — a CellSpec survives the canonical-form round
  trip (including nested features/config/faults) and digests to the
  same address on both ends; malformed payloads are protocol errors,
  not crashes;
* **byte-identity** — daemon-served payloads decode to results
  byte-identical to in-process ``--jobs 1`` evaluation;
* **single-flight dedup** — N concurrent clients submitting
  overlapping grids compute each unique digest exactly once, and all
  clients receive identical payload bytes;
* **warm paths** — a restarted daemon over the same store serves
  everything warm (zero computations), and resubmission hits the
  in-memory memo.

Daemons run on a private event loop in a helper thread
(:class:`DaemonThread`) with a thread worker pool: same process, so
the suite can monkeypatch the evaluation function and count calls.
"""

import json
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.hw import FaultConfig, MachineConfig
from repro.runtime.parallel import (CellSpec, GridExecutor, ResultStore,
                                    encode_result, evaluate_cell)
from repro.serve import (DaemonThread, ProtocolError, RemoteExecutor,
                         ServeClient, ServeError, decode_spec,
                         decode_submit, encode_spec, encode_submit)
from repro.serve import scheduler as scheduler_mod
from repro.svm import BASE, GENIMA

APP = "Water-spatial"


def svm_spec(features=GENIMA, **params) -> CellSpec:
    return CellSpec(kind="svm", app=APP, params=params,
                    features=features, config=MachineConfig())


@pytest.fixture(scope="module")
def small_payload():
    """One real evaluated payload, reused as the fake compute result."""
    return evaluate_cell(CellSpec(kind="seq", app=APP,
                                  config=MachineConfig()))


# ----------------------------------------------------------------- protocol


def test_spec_roundtrip_preserves_value_and_digest():
    spec = CellSpec(
        kind="svm", app=APP, params={"n": 3, "grid": [1, 2]},
        features=GENIMA,
        config=MachineConfig(nodes=2, faults=FaultConfig(
            loss=0.01, links=((0, 1), (1, 0)), seed=7)))
    wire = json.loads(json.dumps(encode_spec(spec)))
    back = decode_spec(wire)
    assert back.features == spec.features
    assert back.config.faults.links == ((0, 1), (1, 0))
    assert back.digest("f" * 16) == spec.digest("f" * 16)


def test_decode_spec_rejects_malformed():
    with pytest.raises(ProtocolError):
        decode_spec([1, 2, 3])
    with pytest.raises(ProtocolError):
        decode_spec({"__dataclass__": "Subprocess", "cmd": "rm"})
    with pytest.raises(ProtocolError):
        decode_spec({"__dataclass__": "CellSpec", "kind": "nope",
                     "app": APP})
    with pytest.raises(ProtocolError):
        decode_spec({"__dataclass__": "CellSpec", "kind": "svm",
                     "app": APP, "bogus_field": 1})
    with pytest.raises(ProtocolError):  # invariant-violating features
        decode_spec(json.loads(json.dumps(encode_spec(
            svm_spec()))) | {"features": {
                "__dataclass__": "ProtocolFeatures",
                "direct_diffs": True}})


def test_decode_submit_contract():
    body = encode_submit([svm_spec()])
    assert [s.digest("f" * 16) for s in decode_submit(body)] \
        == [svm_spec().digest("f" * 16)]
    with pytest.raises(ProtocolError):
        decode_submit({"version": 99, "cells": [encode_spec(svm_spec())]})
    with pytest.raises(ProtocolError):
        decode_submit({"version": 1, "cells": []})


# ----------------------------------------------------------- daemon basics


def test_health_stats_and_routes():
    with DaemonThread(workers="thread", jobs=1, store=None) as handle:
        client = ServeClient(handle.url)
        health = client.health()
        assert health["ok"] and health["server"] == "repro-serve/1"
        stats = client.stats()
        assert stats["counters"]["computed"] == 0
        assert stats["store"] is None
        with pytest.raises(ServeError):
            client._call("GET", "/v1/nope")
        with pytest.raises(ServeError):
            client._call("GET", "/v1/submit")  # wrong method


def test_submit_byte_identical_to_inprocess(tmp_path):
    specs = [CellSpec(kind="seq", app=APP, config=MachineConfig()),
             svm_spec(features=BASE), svm_spec()]
    local = GridExecutor(jobs=1).map(specs)
    with DaemonThread(workers="thread", jobs=1,
                      store=ResultStore(tmp_path)) as handle:
        remote = RemoteExecutor(handle.url).map(specs)
        assert remote.keys() == local.keys()
        for digest in local:
            assert (encode_result(remote[digest])
                    == encode_result(local[digest]))
        # resubmission is a pure memo hit
        events = []
        ServeClient(handle.url).submit(
            specs, on_event=lambda e: events.append(e))
        sources = sorted(e["source"] for e in events
                         if e["event"] == "cell")
        assert sources == ["memo"] * 3


def test_submit_streams_progress_events():
    with DaemonThread(workers="thread", jobs=1, store=None) as handle:
        events = []
        ServeClient(handle.url).submit(
            [svm_spec(), svm_spec()],  # duplicate collapses
            on_event=lambda e: events.append(e))
        kinds = [e["event"] for e in events]
        assert kinds == ["accepted", "cell", "done"]
        accepted = events[0]
        assert accepted["cells"] == 2 and accepted["unique"] == 1
        assert len(set(accepted["digests"])) == 1
        assert events[1]["source"] == "computed"
        assert events[1]["elapsed_ms"] >= 0
        assert events[2]["counters"]["computed"] == 1


def test_error_event_does_not_kill_the_grid():
    good = svm_spec()
    bad = CellSpec(kind="svm", app="NoSuchApp", config=MachineConfig())
    with DaemonThread(workers="thread", jobs=1, store=None) as handle:
        client = ServeClient(handle.url)
        events = []
        with pytest.raises(ServeError, match="1 cell"):
            client.submit([good, bad],
                          on_event=lambda e: events.append(e))
        by_kind = {e["event"]: e for e in events}
        assert "error" in by_kind and "cell" in by_kind
        assert "done" in by_kind  # stream completed despite the error
        assert client.stats()["counters"]["errors"] == 1


def test_fingerprint_mismatch_refused(monkeypatch):
    with DaemonThread(workers="thread", jobs=1, store=None) as handle:
        monkeypatch.setattr("repro.serve.client.code_fingerprint",
                            lambda: "deadbeefdeadbeef")
        with pytest.raises(ServeError, match="different simulator"):
            ServeClient(handle.url).submit([svm_spec()])


# ------------------------------------------------------------ single-flight


def test_single_flight_dedup_across_concurrent_clients(
        monkeypatch, small_payload):
    """N clients x overlapping grids: each unique digest computed
    exactly once, every client gets byte-identical payloads."""
    calls = {}
    calls_lock = threading.Lock()
    gate = threading.Event()

    def slow_evaluate(spec):
        with calls_lock:
            calls[spec.digest()] = calls.get(spec.digest(), 0) + 1
        gate.wait(timeout=10.0)  # hold every computation open
        return small_payload

    monkeypatch.setattr(scheduler_mod, "evaluate_cell", slow_evaluate)
    # 6 unique cells, every client submits all of them (full overlap).
    specs = [CellSpec(kind="seq", app=APP, params={"i": i},
                      config=MachineConfig()) for i in range(6)]
    n_clients = 4
    results, errors = {}, []
    barrier = threading.Barrier(n_clients + 1)

    with DaemonThread(workers="thread", jobs=8, store=None) as handle:
        def client(idx):
            try:
                barrier.wait(timeout=10.0)
                results[idx] = ServeClient(handle.url).submit(
                    specs, check_fingerprint=False)
            except Exception as err:  # pragma: no cover - fail below
                errors.append(err)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        barrier.wait(timeout=10.0)  # all clients submitting ~together
        gate.set()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors, errors
        stats = ServeClient(handle.url).stats()

    counters = stats["counters"]
    # exactly-once: one computation per unique digest, daemon-wide
    assert counters["computed"] == len(specs)
    assert all(n == 1 for n in calls.values()), calls
    assert counters["cells"] == n_clients * len(specs)
    # every non-computing request was deduplicated somewhere warm
    assert (counters["attached"] + counters["memo_hits"]
            == (n_clients - 1) * len(specs))
    # all clients saw identical bytes
    blobs = {json.dumps(results[i], sort_keys=True)
             for i in range(n_clients)}
    assert len(blobs) == 1


def test_attach_joins_inflight_computation(monkeypatch, small_payload):
    """A request arriving mid-computation attaches instead of
    recomputing, and still receives the payload."""
    started = threading.Event()
    gate = threading.Event()

    def slow_evaluate(_spec):
        started.set()
        gate.wait(timeout=10.0)
        return small_payload

    monkeypatch.setattr(scheduler_mod, "evaluate_cell", slow_evaluate)
    spec = svm_spec()
    with DaemonThread(workers="thread", jobs=2, store=None) as handle:
        client = ServeClient(handle.url)
        first = {}
        t = threading.Thread(target=lambda: first.update(
            client.submit([spec], check_fingerprint=False)))
        t.start()
        assert started.wait(timeout=10.0)
        second_events = []
        t2 = threading.Thread(target=lambda: client.submit(
            [spec], check_fingerprint=False,
            on_event=lambda e: second_events.append(e)))
        t2.start()
        # hold the computation open until the second request has
        # actually attached to it (the counter bumps synchronously
        # when its cell() coroutine finds the in-flight task)
        deadline = time.monotonic() + 10.0  # repro: noqa[wall-clock] — test poll deadline, not sim time
        while (client.stats()["counters"]["attached"] < 1
               and time.monotonic() < deadline):  # repro: noqa[wall-clock] — test poll deadline, not sim time
            time.sleep(0.01)
        gate.set()
        t.join(timeout=30.0)
        t2.join(timeout=30.0)
        stats = client.stats()
    assert stats["counters"]["computed"] == 1
    assert stats["counters"]["attached"] == 1
    cell_events = [e for e in second_events if e["event"] == "cell"]
    assert cell_events and cell_events[0]["source"] == "attached"


# -------------------------------------------------------------- warm paths


def test_daemon_restart_serves_warm_from_store(tmp_path):
    store_root = tmp_path / "shared"
    specs = [svm_spec(features=BASE),
             CellSpec(kind="seq", app=APP, config=MachineConfig())]
    with DaemonThread(workers="thread", jobs=1,
                      store=ResultStore(store_root)) as handle:
        first = ServeClient(handle.url).submit(specs)
        assert ServeClient(handle.url).stats()["counters"]["computed"] \
            == 2
    # fresh daemon, same store: everything warm, nothing recomputed
    with DaemonThread(workers="thread", jobs=1,
                      store=ResultStore(store_root)) as handle:
        events = []
        second = ServeClient(handle.url).submit(
            specs, on_event=lambda e: events.append(e))
        stats = ServeClient(handle.url).stats()
    assert stats["counters"]["computed"] == 0
    assert stats["counters"]["store_hits"] == 2
    assert sorted(e["source"] for e in events if e["event"] == "cell") \
        == ["warm", "warm"]
    assert {d: json.dumps(p, sort_keys=True) for d, p in first.items()} \
        == {d: json.dumps(p, sort_keys=True) for d, p in second.items()}


def test_daemon_shares_store_with_adhoc_cli_runs(tmp_path):
    """An in-process GridExecutor warms the store; the daemon serves
    the same digests without recomputing (one --cache-dir, two
    writers)."""
    store = ResultStore(tmp_path)
    spec = svm_spec()
    local = GridExecutor(jobs=1, store=store).map([spec])
    with DaemonThread(workers="thread", jobs=1, store=store) as handle:
        remote = RemoteExecutor(handle.url).map([spec])
        stats = ServeClient(handle.url).stats()
    assert stats["counters"]["computed"] == 0
    digest = spec.digest()
    assert encode_result(remote[digest]) == encode_result(local[digest])


# -------------------------------------------------------------------- CLI


def test_cli_submit_and_stats(capsys):
    with DaemonThread(workers="thread", jobs=1, store=None) as handle:
        rc = cli_main(["submit", "--serve", handle.url, "--app", APP,
                       "--protocol", "Base", "--no-seq"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "accepted: 1 cell(s), 1 unique" in out
        assert f"{APP}/Base" in out and "computed" in out
        rc = cli_main(["submit", "--serve", handle.url, "--stats"])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["counters"]["computed"] == 1


def test_cli_figure_through_daemon_matches_local(capsys, tmp_path):
    apps = ["Water-spatial"]
    import repro.experiments.figures as figures
    from repro.experiments import ExperimentCache
    local = figures.render_figure2(figures.compute_figure2(
        ExperimentCache(), apps=apps))
    with DaemonThread(workers="thread", jobs=1,
                      store=ResultStore(tmp_path)) as handle:
        served = figures.render_figure2(figures.compute_figure2(
            ExperimentCache(executor=RemoteExecutor(handle.url)),
            apps=apps))
    assert served == local


def test_cli_submit_unreachable_daemon_fails_cleanly(capsys):
    rc = cli_main(["submit", "--serve", "http://127.0.0.1:1",
                   "--app", APP, "--no-seq"])
    assert rc == 1
    assert "error:" in capsys.readouterr().err
