"""Tests for the hardware-DSM yardstick backend."""

import pytest

from repro.hwdsm import HWDSMBackend, HWDSMConfig
from repro.runtime import run_hwdsm, run_sequential, speedup
from repro.apps import Ocean
from tests.test_runtime import TinyApp


def test_config_derived_lines_per_page():
    cfg = HWDSMConfig()
    assert cfg.lines_per_page == 32


def test_cold_read_costs_lines_reread_costs_fraction():
    backend = HWDSMBackend()
    region = backend.allocate("x", 4)
    cfg = backend.config
    cold = backend._miss_cost(0, region, [0])
    assert cold == pytest.approx(
        cfg.lines_per_page * cfg.line_miss_us / cfg.miss_overlap)
    # re-read of unchanged page: free
    assert backend._miss_cost(0, region, [0]) == 0.0
    # after a remote write, a fraction of the lines miss again
    backend.op_write(1, region, [0], 1, None)
    reread = backend._miss_cost(0, region, [0])
    assert 0 < reread < cold


def test_writer_keeps_own_copy_current():
    backend = HWDSMBackend()
    region = backend.allocate("x", 4)
    list(backend.op_write(0, region, [1], 1, None))
    assert backend._miss_cost(0, region, [1]) == 0.0


def test_locks_enforce_mutual_exclusion():
    backend = HWDSMBackend()
    sim = backend.sim
    inside = [0]
    worst = [0]

    def proc(rank):
        yield from backend.op_lock(rank, 3)
        inside[0] += 1
        worst[0] = max(worst[0], inside[0])
        yield sim.timeout(10.0)
        inside[0] -= 1
        yield from backend.op_unlock(rank, 3)

    for r in range(8):
        sim.process(proc(r))
    sim.run()
    assert worst[0] == 1


def test_barrier_releases_all_at_once():
    backend = HWDSMBackend(HWDSMConfig(nprocs=4))
    sim = backend.sim
    times = []

    def proc(rank):
        yield sim.timeout(10.0 * rank)
        yield from backend.op_barrier(rank)
        times.append(sim.now)

    for r in range(4):
        sim.process(proc(r))
    sim.run()
    assert max(times) - min(times) < 1e-9
    assert min(times) >= 30.0


def test_flags_block_until_release():
    backend = HWDSMBackend()
    sim = backend.sim
    order = []

    def consumer():
        yield from backend.op_acquire_flag(0, 9)
        order.append(("consumed", sim.now))

    def producer():
        yield sim.timeout(50.0)
        yield from backend.op_release_flag(1, 9)
        order.append(("produced", sim.now))

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert order[0][0] == "produced"
    assert order[1][1] >= 50.0


def test_duplicate_region_rejected():
    backend = HWDSMBackend()
    backend.allocate("x", 4)
    with pytest.raises(ValueError):
        backend.allocate("x", 4)


def test_hwdsm_speedups_are_near_linear_for_regular_apps():
    seq = run_sequential(TinyApp(work_us=5000.0))
    hw = run_hwdsm(TinyApp(work_us=5000.0))
    assert speedup(seq, hw) > 12.0


def test_hwdsm_far_outperforms_nothing_but_stays_sublinear():
    seq = run_sequential(Ocean(n=130, sweeps=4))
    hw = run_hwdsm(Ocean(n=130, sweeps=4))
    s = speedup(seq, hw)
    assert 4.0 < s <= 16.0
