"""Correctness tests for the concrete data plane (ConcreteStore)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import MachineConfig
from repro.svm import PageDirectory
from repro.svm.datastore import ConcreteStore


def make_store(n_pages=4):
    directory = PageDirectory(MachineConfig())
    region = directory.allocate("data", n_pages, concrete=True)
    return ConcreteStore(region)


def test_non_concrete_region_rejected():
    directory = PageDirectory(MachineConfig())
    region = directory.allocate("plain", 2)
    with pytest.raises(ValueError):
        ConcreteStore(region)


def test_fetch_copies_home_contents():
    store = make_store()
    store.home_copy(0)[0:4] = b"ABCD"
    copy = store.fetch(node=1, index=0)
    assert copy[0:4] == b"ABCD"
    # the copy is independent of the home
    copy[0:4] = b"zzzz"
    assert store.home_copy(0)[0:4] == b"ABCD"


def test_write_read_roundtrip_on_node_copy():
    store = make_store()
    store.write(0, 0, 100, b"hello world!")
    assert store.read(0, 0, 100, 12) == b"hello world!"
    # the home is untouched until a flush
    assert store.home_copy(0)[100:112] == bytes(12)


def test_first_write_twins():
    store = make_store()
    assert not store.is_twinned(0, 0)
    store.write(0, 0, 0, b"\x01" * 4)
    assert store.is_twinned(0, 0)


def test_flush_applies_diff_to_home():
    store = make_store()
    store.write(2, 1, 8, b"\xaa" * 8)
    diff = store.flush(2, 1)
    assert len(diff) == 1
    assert store.home_copy(1)[8:16] == b"\xaa" * 8
    assert not store.is_twinned(2, 1)


def test_flush_clean_page_is_empty():
    store = make_store()
    store.fetch(0, 0)
    assert store.flush(0, 0) == []


def test_flush_all_flushes_only_that_node():
    store = make_store()
    store.write(0, 0, 0, b"\x01" * 4)
    store.write(0, 1, 0, b"\x02" * 4)
    store.write(1, 2, 0, b"\x03" * 4)
    assert store.flush_all(0) == 2
    assert store.is_twinned(1, 2)
    assert store.home_copy(0)[0:4] == b"\x01" * 4
    assert store.home_copy(2)[0:4] == bytes(4)


def test_invalidate_drops_copy_and_forces_refetch():
    store = make_store()
    store.fetch(3, 0)
    store.home_copy(0)[0:4] = b"NEW!"
    # stale copy still visible
    assert store.read(3, 0, 0, 4) == bytes(4)
    store.invalidate(3, 0)
    assert store.read(3, 0, 0, 4) == b"NEW!"


def test_invalidate_dirty_page_rejected():
    store = make_store()
    store.write(3, 0, 0, b"\x01" * 4)
    with pytest.raises(ValueError):
        store.invalidate(3, 0)


def test_out_of_range_accesses_rejected():
    store = make_store()
    with pytest.raises(IndexError):
        store.fetch(0, 99)
    with pytest.raises(ValueError):
        store.write(0, 0, 4094, b"\x01" * 8)
    with pytest.raises(ValueError):
        store.read(0, 0, -1, 4)


def test_multiple_writer_merge():
    """The LRC multiple-writer guarantee: two nodes writing disjoint
    words of the same page both land at the home."""
    store = make_store()
    store.write(0, 0, 0, b"\x11" * 16)
    store.write(1, 0, 64, b"\x22" * 16)
    store.flush(0, 0)
    store.flush(1, 0)
    home = store.home_copy(0)
    assert home[0:16] == b"\x11" * 16
    assert home[64:80] == b"\x22" * 16


word_writes = st.lists(
    st.tuples(st.integers(0, 1023),            # word offset
              st.binary(min_size=4, max_size=4)),
    min_size=1, max_size=40)


@settings(max_examples=100)
@given(word_writes, word_writes)
def test_disjoint_concurrent_writes_merge_exactly(writes_a, writes_b):
    """Property: writes from two nodes to non-overlapping words all
    survive the twin/diff/apply pipeline; untouched words stay zero."""
    # make the two write sets word-disjoint: node B skips words A wrote
    a_words = {off for off, _ in writes_a}
    writes_b = [(off, data) for off, data in writes_b
                if off not in a_words]
    store = make_store(n_pages=1)
    expected = bytearray(4096)
    for node, writes in ((0, writes_a), (1, writes_b)):
        for off, data in writes:
            store.write(node, 0, off * 4, data)
            expected[off * 4:off * 4 + 4] = data
    store.flush(0, 0)
    store.flush(1, 0)
    assert bytes(store.home_copy(0)) == bytes(expected)


@settings(max_examples=50)
@given(word_writes)
def test_flush_is_idempotent_per_interval(writes):
    store = make_store(n_pages=1)
    expected = bytearray(4096)
    for off, data in writes:
        store.write(0, 0, off * 4, data)
        expected[off * 4:off * 4 + 4] = data
    first = store.flush(0, 0)
    if bytes(expected) != bytes(4096):
        assert first  # something was dirty
    assert store.flush(0, 0) == []  # twin gone, nothing to flush
