"""Tests for the runtime layer: contexts, backends, runner, results."""

import pytest

from repro.apps import Application
from repro.hw import MachineConfig
from repro.runtime import (LocalBackend, ParallelContext, RunResult,
                           SVMBackend, run_sequential,
                           run_svm, speedup)
from repro.sim import SimulationError, TimeBuckets
from repro.svm import BASE, GENIMA


class TinyApp(Application):
    """Minimal app: compute, one shared write, one barrier."""

    name = "tiny"
    bus_intensity = 0.1

    def __init__(self, work_us: float = 100.0):
        self.work_us = work_us

    def setup(self, backend):
        return {"r": backend.allocate("tiny.r", 16)}

    def process(self, ctx, regions):
        # fixed total work, divided among the processes
        yield from ctx.compute(self.work_us / ctx.nprocs)
        yield from ctx.write(regions["r"], [ctx.rank % 16])
        yield from ctx.barrier()


# ------------------------------------------------------------------ context

def test_my_slice_partitions_exactly():
    backend = LocalBackend()
    for n in (16, 17, 100, 5):
        covered = []
        for rank in range(16):
            ctx = ParallelContext(backend, rank, 16)
            start, stop = ctx.my_slice(n)
            covered.extend(range(start, stop))
        assert covered == list(range(n)), n


def test_my_items_matches_my_slice():
    ctx = ParallelContext(LocalBackend(), 3, 16)
    assert list(ctx.my_items(100)) == list(range(*ctx.my_slice(100)))


def test_context_uses_app_bus_intensity_by_default():
    calls = []

    class Spy(LocalBackend):
        def op_compute(self, rank, us, bus_intensity):
            calls.append(bus_intensity)
            return super().op_compute(rank, us, bus_intensity)

    ctx = ParallelContext(Spy(), 0, 1, bus_intensity=0.7)
    gen = ctx.compute(10.0)
    assert calls == [0.7]
    gen2 = ctx.compute(10.0, bus_intensity=0.1)
    assert calls == [0.7, 0.1]


# ----------------------------------------------------------------- backends

def test_local_backend_ops_are_free():
    backend = LocalBackend()
    region = backend.allocate("x", 4)
    sim = backend.sim
    done = []

    def proc():
        yield from backend.op_compute(0, 50.0, 0.9)
        yield from backend.op_read(0, region, [0, 1])
        yield from backend.op_write(0, region, [2], 1, None)
        yield from backend.op_lock(0, 5)
        yield from backend.op_unlock(0, 5)
        yield from backend.op_barrier(0)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done[0] == pytest.approx(50.0)  # only compute advanced time


def test_local_backend_bounds_checks_regions():
    backend = LocalBackend()
    region = backend.allocate("x", 4)
    with pytest.raises(IndexError):
        backend.op_read(0, region, [4])


def test_svm_backend_wires_monitor_and_protocol():
    backend = SVMBackend(MachineConfig(), GENIMA)
    assert backend.monitor is not None
    assert backend.protocol.features.ni_locks
    assert backend.nprocs == 16


# ------------------------------------------------------------------- runner

def test_run_on_backend_produces_complete_result():
    result = run_svm(TinyApp(), BASE)
    assert isinstance(result, RunResult)
    assert result.system == "Base"
    assert result.nprocs == 16
    assert result.time_us > 0
    assert len(result.buckets) == 16
    assert result.monitor_small is not None
    assert "interrupts" in result.stats


def test_runner_resets_accounting_after_init():
    """Init-phase work (cold faults) must not appear in breakdowns."""

    class ColdApp(TinyApp):
        name = "cold"

        def init_process(self, ctx, regions):
            yield from ctx.read(regions["r"], range(16))  # cold faults

        def process(self, ctx, regions):
            yield from ctx.compute(10.0, bus_intensity=0.0)

    result = run_svm(ColdApp(), BASE)
    mean = result.mean_breakdown
    # only the timed compute (plus negligible sync skew) remains
    assert mean.data < 1.0
    assert mean.compute == pytest.approx(10.0, rel=0.2)


def test_sequential_baseline_is_full_work():
    seq100 = run_sequential(TinyApp(work_us=100.0))
    seq200 = run_sequential(TinyApp(work_us=200.0))
    assert seq200.time_us == pytest.approx(2 * seq100.time_us, rel=0.01)


def test_speedup_definition():
    seq = run_sequential(TinyApp(work_us=1000.0))
    par = run_svm(TinyApp(work_us=1000.0), GENIMA)
    s = speedup(seq, par)
    assert 0 < s <= 16.5
    with pytest.raises(SimulationError, match="x/y"):
        speedup(seq, RunResult(app="x", system="y", nprocs=1, time_us=0.0))


# ------------------------------------------------------------------- results

def test_breakdown_fractions_sum_to_one():
    result = run_svm(TinyApp(), GENIMA)
    fracs = result.breakdown_fractions
    assert sum(fracs.values()) == pytest.approx(1.0)


def test_result_summary_fields():
    result = run_svm(TinyApp(), GENIMA)
    summary = result.summary()
    for key in ("app", "system", "nprocs", "time_us", "compute",
                "barrier", "interrupts", "messages"):
        assert key in summary


def test_table2_metrics_bounded():
    result = run_svm(TinyApp(), GENIMA)
    assert 0.0 <= result.barrier_fraction <= 1.0
    assert 0.0 <= result.barrier_protocol_fraction <= 1.0
    assert 0.0 <= result.mprotect_fraction <= 1.0


def test_mean_breakdown_averages_ranks():
    buckets = []
    for v in (10.0, 20.0, 30.0):
        b = TimeBuckets()
        b.charge("compute", v)
        buckets.append(b)
    result = RunResult(app="x", system="y", nprocs=3, time_us=1.0,
                       buckets=buckets)
    assert result.mean_breakdown.compute == pytest.approx(20.0)
