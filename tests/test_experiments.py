"""Tests for the experiment drivers (on reduced app subsets for speed)."""

import pytest

from repro.experiments import (ExperimentCache, compute_figure1,
                               compute_figure2, compute_figure4,
                               compute_scale, compute_table1,
                               compute_table2, compute_table34,
                               format_table, measure_comm_layer,
                               render_figure1, render_figure2,
                               render_scale, render_table1,
                               render_table2, render_table34,
                               scale_params)
from repro.svm import BASE, GENIMA

FAST_APPS = ["Water-spatial", "Ocean-rowwise"]


@pytest.fixture(scope="module")
def cache():
    return ExperimentCache()


# ------------------------------------------------------------------- cache

def test_cache_reuses_results(cache):
    first = cache.svm("Water-spatial", GENIMA)
    second = cache.svm("Water-spatial", GENIMA)
    assert first is second


def test_cache_distinguishes_protocols(cache):
    base = cache.svm("Water-spatial", BASE)
    genima = cache.svm("Water-spatial", GENIMA)
    assert base is not genima
    assert base.system == "Base"
    assert genima.system == "GeNIMA"


def test_cache_distinguishes_node_counts(cache):
    sixteen = cache.svm("Water-spatial", GENIMA, nodes=4)
    thirtytwo = cache.svm("Water-spatial", GENIMA, nodes=8)
    assert sixteen.nprocs == 16
    assert thirtytwo.nprocs == 32


def test_cache_speedup_uses_sequential_baseline(cache):
    result = cache.svm("Water-spatial", GENIMA)
    assert cache.speedup("Water-spatial", result) == pytest.approx(
        cache.seq("Water-spatial").time_us / result.time_us)


# -------------------------------------------------------------------- scale

def test_scale_params_hold_total_work_fixed():
    one = scale_params("KVStore", 1)
    many = scale_params("KVStore", 64)
    assert one["requests_per_rank"] == 64 * many["requests_per_rank"]
    ps1 = scale_params("ParamServer", 1)
    ps64 = scale_params("ParamServer", 64)
    assert ps1["compute_us"] == pytest.approx(64 * ps64["compute_us"])
    with pytest.raises(ValueError):
        scale_params("FFT", 4)


def test_compute_scale_covers_the_grid(cache):
    rows = compute_scale(app_name="OpenLoop", node_counts=(2, 4),
                         topologies=("crossbar", "fat-tree"),
                         feature_sets=(BASE, GENIMA), cache=cache)
    assert len(rows) == 2 * 2 * 2
    for row in rows:
        assert row["speedup"] > 0
        assert row["procs"] == row["nodes"]  # 1 proc/node at scale
    text = render_scale(rows, "OpenLoop")
    assert "crossbar" in text and "fat-tree" in text
    assert "Base" in text and "GeNIMA" in text


# ------------------------------------------------------------------ figures

def test_figure1_subset(cache):
    data = compute_figure1(cache, apps=FAST_APPS)
    assert set(data) == set(FAST_APPS)
    for vals in data.values():
        assert vals["Origin"] > vals["Base"] > 0
    text = render_figure1(data)
    assert "Origin" in text and "Water-spatial" in text


def test_figure2_subset_has_full_ladder(cache):
    data = compute_figure2(cache, apps=["Water-spatial"])
    ladder = data["Water-spatial"]
    assert list(ladder) == ["Base", "DW", "DW+RF", "DW+RF+DD", "GeNIMA"]
    assert all(v > 0 for v in ladder.values())
    assert "GeNIMA" in render_figure2(data)


def test_figure4_subset(cache):
    data = compute_figure4(cache, apps=FAST_APPS)
    for vals in data.values():
        assert {"Origin", "Base", "GeNIMA"} <= set(vals)


# ------------------------------------------------------------------- tables

def test_table1_subset(cache):
    data = compute_table1(cache, apps=FAST_APPS)
    for app, v in data.items():
        assert v["uniproc_s"] > 0
        assert isinstance(v["overall_pct"], float)
    assert "Uniproc" in render_table1(data)


def test_table2_subset(cache):
    data = compute_table2(cache, apps=FAST_APPS)
    for v in data.values():
        assert 0 <= v["BT"] <= 100
        assert 0 <= v["BPT"] <= 100
        assert 0 <= v["MT"] <= 100
    assert "BPT" in render_table2(data)


def test_table34_subset(cache):
    data = compute_table34(cache, apps=["Water-spatial"])
    entry = data["Water-spatial"]
    for size in ("small", "large"):
        for system in ("Base", "GeNIMA"):
            assert set(entry[size][system]) == {"source", "lanai",
                                                "net", "dest"}
    assert "Base/GeNIMA" in render_table34(data, "small")
    with pytest.raises(ValueError):
        render_table34(data, "medium")


# --------------------------------------------------------------- reporting

def test_format_table_alignment():
    text = format_table(["a", "bb"], [("x", 1.5), ("long", 22.25)],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "1.50" in text and "22.25" in text
    # all rows share the same width
    assert len({len(line) for line in lines[1:]}) <= 2


def test_calibration_keys():
    comm = measure_comm_layer()
    assert set(comm) == {"post_overhead_us", "one_word_latency_us",
                         "bandwidth_mbps"}


def test_traffic_profile_shows_protocol_transformation():
    from repro.experiments import render_traffic, traffic_profile
    base = traffic_profile("Water-spatial", BASE)
    genima = traffic_profile("Water-spatial", GENIMA)
    # Base uses the interrupt path: page requests/replies, lock
    # requests/grants, packed diffs.
    assert base["page_req"]["packets"] > 0
    assert base["lock_req"]["packets"] > 0
    assert base["diff"]["packets"] > 0
    assert base.get("fetch_req", {"packets": 0})["packets"] == 0
    # GeNIMA replaces every one of those with an NI mechanism.
    assert genima.get("page_req", {"packets": 0})["packets"] == 0
    assert genima["fetch_req"]["packets"] > 0
    assert genima["lock_op"]["packets"] > 0
    assert genima["diff_run"]["packets"] > 0
    assert genima["wn"]["packets"] > 0
    text = render_traffic({"Base": base, "GeNIMA": genima},
                          "Water-spatial")
    assert "fetch_req" in text


def test_cli_traffic_command(capsys):
    from repro.cli import main
    assert main(["traffic", "--app", "Water-spatial"]) == 0
    out = capsys.readouterr().out
    assert "Traffic profile" in out
