"""Macro-event NIC drivers: exactness against the legacy loops.

The macro drivers (``MachineConfig.nic_macro_events=True``) replace the
three generator loops with callback chains that mirror the legacy
kernel hop structure.  The contract is byte-identical output: same
trace, same results, fewer dispatched events.
"""

import dataclasses

import pytest

from repro import PROTOCOL_LADDER
from repro.apps import APP_REGISTRY
from repro.hw import FaultConfig, MachineConfig
from repro.hw.machine import Machine
from repro.runtime.parallel import encode_result
from repro.runtime.runner import run_svm
from repro.sim import Resource, Simulator, Tracer

LEGACY = MachineConfig()
MACRO = dataclasses.replace(LEGACY, nic_macro_events=True)


def _run(app_name, features, config):
    tracer = Tracer(capacity=None)
    result = run_svm(APP_REGISTRY[app_name](), features, config=config,
                     tracer=tracer)
    return tracer.to_jsonl(), encode_result(result)


def _ladder(name):
    return next(f for f in PROTOCOL_LADDER if f.name == name)


@pytest.mark.parametrize("ladder_name", ["Base", "GeNIMA"])
def test_macro_mode_byte_identical_fft(ladder_name):
    """Trace and results match the legacy loops bytewise.

    Base exercises the interrupt/host-service path, GeNIMA the
    firmware-handler and multicast paths.
    """
    features = _ladder(ladder_name)
    legacy_trace, legacy_result = _run("FFT", features, LEGACY)
    macro_trace, macro_result = _run("FFT", features, MACRO)
    assert macro_trace == legacy_trace
    assert macro_result == legacy_result


def test_macro_mode_dispatches_fewer_events():
    counts = {}
    for key, config in (("legacy", LEGACY), ("macro", MACRO)):
        seen = []
        orig_run = Simulator.run

        def counting_run(self, until=None, _orig=orig_run, _seen=seen):
            out = _orig(self, until)
            _seen.append(self.events_dispatched)
            return out

        Simulator.run = counting_run
        try:
            run_svm(APP_REGISTRY["FFT"](), _ladder("Base"), config=config)
        finally:
            Simulator.run = orig_run
        counts[key] = seen[-1]
    assert counts["macro"] < counts["legacy"]


def test_macro_mode_falls_back_when_faults_armed():
    """The reliability layer hooks the legacy loops; an armed fault
    injector must silently disable the macro drivers."""
    faulty = dataclasses.replace(MACRO, faults=FaultConfig(loss=0.01))
    machine = Machine(config=faulty)
    assert all(not nic._macro for nic in machine.nics)
    clean = Machine(config=MACRO)
    assert all(nic._macro for nic in clean.nics)


def test_use_cb_queues_fifo_with_generator_clients():
    """Callback holds and generator holds on one station keep their
    request-instant order.  use_cb requests synchronously at call time;
    a process requests at its boot dispatch one kernel event later, so
    the callback hold lands first here, then the two generator holds in
    spawn order."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def gen_user(tag, hold):
        yield from res.use(hold)
        order.append((tag, sim.now))

    res.use_cb(3.0, lambda: order.append(("cb", sim.now)))
    sim.process(gen_user("gen-a", 5.0))
    sim.process(gen_user("gen-b", 2.0))
    sim.run()
    assert order == [("cb", 3.0), ("gen-a", 8.0), ("gen-b", 10.0)]


def test_defer_preserves_fifo_position():
    """defer() lands in the current instant's FIFO lane exactly where
    schedule(0, ...) would."""
    sim = Simulator()
    order = []
    sim.schedule(0.0, lambda: order.append("scheduled-first"))
    sim.defer(lambda: order.append("deferred"))
    sim.schedule(0.0, lambda: order.append("scheduled-last"))
    sim.run()
    assert order == ["scheduled-first", "deferred", "scheduled-last"]
    assert sim.events_dispatched == 3
