"""Tests for the Section 5 NI extensions: scatter-gather & multicast."""

import pytest

from repro.hw import Machine, MachineConfig
from repro.svm import (GENIMA_MC, GENIMA_PLUS, GENIMA_SG,
                       HLRCProtocol, ProtocolFeatures)
from repro.vmmc import VMMC


# ---------------------------------------------------------------- features

def test_extension_names():
    assert GENIMA_SG.name == "GeNIMA+SG"
    assert GENIMA_MC.name == "GeNIMA+MC"
    assert GENIMA_PLUS.name == "GeNIMA+SG+MC"


def test_scatter_gather_requires_direct_diffs():
    with pytest.raises(ValueError):
        ProtocolFeatures(direct_writes=True, remote_fetch=True,
                         scatter_gather=True)


def test_multicast_requires_direct_writes():
    with pytest.raises(ValueError):
        ProtocolFeatures(ni_multicast=True)


# ---------------------------------------------------------- vmmc multicast

def make_stack():
    machine = Machine(MachineConfig())
    return machine, VMMC(machine)


def test_multicast_delivers_to_every_destination():
    machine, vmmc = make_stack()
    sim = machine.sim
    arrived = []

    def sender():
        yield from vmmc.send_multicast(
            0, [1, 2, 3], size=64, kind="wn",
            on_packet_delivered=lambda pkt: arrived.append(pkt.dst))

    sim.process(sender())
    sim.run()
    assert sorted(arrived) == [1, 2, 3]


def test_multicast_single_source_dma():
    """One host post and one source DMA regardless of fan-out."""
    machine, vmmc = make_stack()
    sim = machine.sim

    def sender():
        yield from vmmc.send_multicast(0, [1, 2, 3], size=4096)

    before = machine.nics[0].pci.total_bytes
    sim.process(sender())
    sim.run()
    dma_bytes = machine.nics[0].pci.total_bytes - before
    assert dma_bytes == 4096          # not 3 x 4096
    assert machine.nics[0].packets_sent == 3


def test_multicast_excludes_sender_and_rejects_empty():
    machine, vmmc = make_stack()
    sim = machine.sim
    arrived = []

    def sender():
        yield from vmmc.send_multicast(
            1, [0, 1, 2], size=32,
            on_packet_delivered=lambda pkt: arrived.append(pkt.dst))

    sim.process(sender())
    sim.run()
    assert sorted(arrived) == [0, 2]

    def bad():
        yield from vmmc.send_multicast(1, [1], size=32)

    sim.process(bad())
    with pytest.raises(ValueError):
        sim.run()


def test_multicast_on_delivered_fires_once_after_all():
    machine, vmmc = make_stack()
    sim = machine.sim
    events = []

    def sender():
        yield from vmmc.send_multicast(
            0, [1, 2, 3], size=64,
            on_packet_delivered=lambda pkt: events.append("pkt"),
            on_delivered=lambda msg: events.append("all"))

    sim.process(sender())
    sim.run()
    assert events == ["pkt", "pkt", "pkt", "all"]


def test_extra_lanai_cost_slows_sg_messages():
    machine, vmmc = make_stack()
    sim = machine.sim
    t = {}

    def sender(label, extra):
        t0 = sim.now
        yield from vmmc.send(0, 1, size=512, await_delivery=True,
                             extra_lanai_us=extra)
        t[label] = sim.now - t0

    def run_both():
        yield sim.process(sender("plain", 0.0))
        yield sim.timeout(100.0)
        yield sim.process(sender("sg", 24.0))

    sim.process(run_both())
    sim.run()
    # the SG message pays the pack cost at the sender and the unpack
    # cost at the receiver
    assert t["sg"] == pytest.approx(t["plain"] + 48.0, abs=1.0)


# ------------------------------------------------------- protocol behaviour

def run_workers(machine, workers):
    done = []

    def wrap(g, i):
        yield from g
        done.append(i)

    for i, g in enumerate(workers):
        machine.sim.process(wrap(g, i))
    machine.run()
    assert len(done) == len(workers)


def scattered_write_workload(proto, region):
    def writer(rank):
        yield from proto.write(rank, region, [rank], runs_per_page=20,
                               bytes_per_page=800)
        yield from proto.barrier(rank)

    return [writer(r) for r in range(16)]


def test_scatter_gather_sends_one_message_per_page():
    machine = Machine(MachineConfig())
    proto = HLRCProtocol(machine, GENIMA_SG)
    region = proto.allocate("a", 16, home_policy="custom",
                            home_fn=lambda i: (i // 4 + 1) % 4)
    run_workers(machine, scattered_write_workload(proto, region))
    assert proto.diff_runs_sent == 0
    assert proto.diffs_sent == 16  # one SG message per remote page
    # still zero interrupts: SG diffs land by DMA, no home handler
    assert proto.total_interrupts == 0


def test_scatter_gather_keeps_home_copies_current():
    machine = Machine(MachineConfig())
    proto = HLRCProtocol(machine, GENIMA_SG)
    region = proto.allocate("a", 4, home_policy="node:2")
    run_workers(machine, [
        _write_then_barrier(proto, 0, region),
        *[_barrier_only(proto, r) for r in range(1, 16)],
    ])
    assert proto._homes[region.gid(0)].applied.get(0, 0) >= 1


def _write_then_barrier(proto, rank, region):
    yield from proto.write(rank, region, [0], runs_per_page=8,
                           bytes_per_page=320)
    yield from proto.barrier(rank)


def _barrier_only(proto, rank):
    yield from proto.barrier(rank)


def test_multicast_wn_broadcast_counts():
    machine = Machine(MachineConfig())
    proto = HLRCProtocol(machine, GENIMA_MC)
    region = proto.allocate("a", 16)
    run_workers(machine, scattered_write_workload(proto, region))
    # one multicast descriptor per interval instead of nodes-1 sends
    assert proto.wn_messages == 4  # one per node's barrier interval
    # every node still received every other node's notices
    for node in range(4):
        for writer in range(4):
            if writer != node:
                assert proto.wn_received[node][writer] >= 1, (node, writer)
