"""Unit tests for the pluggable fabric topologies."""

import pytest

from repro.hw import (Crossbar, Dragonfly, FatTree, Machine,
                      MachineConfig, TOPOLOGIES, build_topology)
from repro.runtime import run_svm
from repro.sim import Tracer
from repro.svm import GENIMA
from repro.apps import WaterSpatial


# ------------------------------------------------------------- registry

def test_registry_names_match_classes():
    assert TOPOLOGIES == {"crossbar": Crossbar, "fat-tree": FatTree,
                          "dragonfly": Dragonfly}


def test_build_topology_dispatches_on_config():
    assert isinstance(build_topology(MachineConfig()), Crossbar)
    assert isinstance(
        build_topology(MachineConfig(nodes=16, topology="fat-tree")),
        FatTree)
    assert isinstance(
        build_topology(MachineConfig(nodes=16, topology="dragonfly")),
        Dragonfly)


def test_unknown_topology_rejected_at_config_time():
    with pytest.raises(ValueError, match="unknown topology"):
        MachineConfig(topology="torus")


# ------------------------------------------------------------- crossbar

def test_crossbar_charges_the_seed_constant_verbatim():
    cfg = MachineConfig(nodes=8)
    topo = build_topology(cfg)
    for src in range(8):
        for dst in range(8):
            if src != dst:
                # identity, not approx: byte-identical traces depend
                # on the float coming through untouched.
                assert topo.latency_us(src, dst) == cfg.wire_latency_us
                assert topo.hops(src, dst) == 1


# ------------------------------------------------------------- fat tree

def test_fat_tree_autosizes_radix():
    assert FatTree(MachineConfig(nodes=16, topology="fat-tree")).radix == 4
    assert FatTree(MachineConfig(nodes=17, topology="fat-tree")).radix == 6
    assert FatTree(
        MachineConfig(nodes=1024, topology="fat-tree")).radix == 16


def test_fat_tree_hop_structure():
    topo = FatTree(MachineConfig(nodes=16, topology="fat-tree"))
    # radix 4: 2 hosts per edge switch, 4 hosts per pod.
    assert topo.hops(0, 0) == 0
    assert topo.hops(0, 1) == 1     # same edge switch
    assert topo.hops(0, 2) == 3     # same pod, different edge
    assert topo.hops(0, 4) == 5     # different pod
    assert topo.diameter_hops() == 5


def test_fat_tree_hops_symmetric_and_bounded():
    topo = FatTree(MachineConfig(nodes=64, topology="fat-tree"))
    for src in range(0, 64, 7):
        for dst in range(0, 64, 5):
            h = topo.hops(src, dst)
            assert h == topo.hops(dst, src)
            assert (src == dst and h == 0) or 1 <= h <= 5


def test_fat_tree_latency_formula():
    cfg = MachineConfig(nodes=16, topology="fat-tree",
                        hop_latency_us=0.25)
    topo = build_topology(cfg)
    assert topo.latency_us(0, 1) == cfg.wire_latency_us
    assert topo.latency_us(0, 4) == pytest.approx(
        cfg.wire_latency_us + 4 * 0.25)


def test_fat_tree_rejects_odd_or_undersized_radix():
    with pytest.raises(ValueError, match="even"):
        FatTree(MachineConfig(nodes=4, topology="fat-tree",
                              topology_radix=3))
    with pytest.raises(ValueError, match="holds"):
        FatTree(MachineConfig(nodes=128, topology="fat-tree",
                              topology_radix=4))


# ------------------------------------------------------------ dragonfly

def test_dragonfly_autosizes_group():
    topo = Dragonfly(MachineConfig(nodes=256, topology="dragonfly"))
    # p=3: (2p)*p*(2p^2+1) = 342 hosts, the smallest balanced fit.
    assert topo.hosts_per_router == 3
    assert topo.groups == 19
    # balanced: a = 2p, h = p.
    assert topo.routers_per_group == 2 * topo.hosts_per_router
    assert topo.global_links_per_router == topo.hosts_per_router


def test_dragonfly_hop_structure():
    topo = Dragonfly(MachineConfig(nodes=256, topology="dragonfly"))
    p = topo.hosts_per_router
    assert topo.hops(0, 0) == 0
    assert topo.hops(0, p - 1) == 1            # same router
    assert topo.hops(0, p) == 2                # same group, next router
    hosts_per_group = topo.routers_per_group * p
    h = topo.hops(0, hosts_per_group)          # adjacent group
    assert 2 <= h <= 4


def test_dragonfly_hops_symmetric_and_bounded():
    topo = Dragonfly(MachineConfig(nodes=256, topology="dragonfly"))
    for src in range(0, 256, 31):
        for dst in range(0, 256, 17):
            h = topo.hops(src, dst)
            assert h == topo.hops(dst, src)
            assert (src == dst and h == 0) or 1 <= h <= 4


def test_dragonfly_rejects_undersized_group():
    with pytest.raises(ValueError, match="holds"):
        Dragonfly(MachineConfig(nodes=1024, topology="dragonfly",
                                topology_group_size=2))


# ------------------------------------------------- network integration

def test_network_uses_topology_latency():
    cfg = MachineConfig(nodes=16, topology="fat-tree")
    machine = Machine(cfg)
    topo = machine.network.topology
    assert isinstance(topo, FatTree)
    assert machine.network.latency_us(0, 15) == topo.latency_us(0, 15)


def test_non_crossbar_run_traces_routes():
    tracer = Tracer(capacity=None)
    run_svm(WaterSpatial(),
            GENIMA, config=MachineConfig(topology="fat-tree"),
            tracer=tracer)
    routes = [e for e in tracer.events if e.category == "net.route"]
    assert routes, "fat-tree run must emit net.route records"
    for e in routes[:50]:
        assert e.fields["hops"] >= 1
        assert e.fields["latency_us"] > 0


def test_crossbar_run_traces_no_routes():
    tracer = Tracer(capacity=None)
    run_svm(WaterSpatial(), GENIMA, tracer=tracer)
    assert not [e for e in tracer.events if e.category == "net.route"]


def test_fat_tree_run_is_deterministic_and_slower_across_pods():
    cfg = MachineConfig(topology="fat-tree")
    r1 = run_svm(WaterSpatial(), GENIMA, config=cfg)
    r2 = run_svm(WaterSpatial(), GENIMA, config=cfg)
    assert r1.time_us == r2.time_us
    flat = run_svm(WaterSpatial(), GENIMA, config=MachineConfig())
    # 4 nodes on a radix-4 fat tree span pods: more hops, never faster.
    assert r1.time_us >= flat.time_us
