"""Unit + property tests for twin/diff machinery (concrete and abstract)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.svm import DiffShape, apply_diff, compute_diff, diff_payload_bytes
from repro.svm.diffs import RUN_HEADER_BYTES, WORD


# ------------------------------------------------------------ concrete diffs

def test_identical_pages_have_empty_diff():
    page = bytes(64)
    assert compute_diff(page, page) == []


def test_single_word_change():
    twin = bytearray(64)
    cur = bytearray(64)
    cur[8:12] = b"\x01\x02\x03\x04"
    diff = compute_diff(bytes(twin), bytes(cur))
    assert diff == [(8, b"\x01\x02\x03\x04")]


def test_adjacent_words_coalesce_into_one_run():
    twin = bytearray(64)
    cur = bytearray(64)
    cur[8:16] = b"\xff" * 8
    diff = compute_diff(bytes(twin), bytes(cur))
    assert len(diff) == 1
    assert diff[0] == (8, b"\xff" * 8)


def test_separated_words_make_two_runs():
    twin = bytearray(64)
    cur = bytearray(64)
    cur[0:4] = b"\xaa" * 4
    cur[20:24] = b"\xbb" * 4
    diff = compute_diff(bytes(twin), bytes(cur))
    assert len(diff) == 2
    assert diff[0][0] == 0 and diff[1][0] == 20


def test_modified_run_at_page_end():
    twin = bytearray(32)
    cur = bytearray(32)
    cur[28:32] = b"\x07" * 4
    diff = compute_diff(bytes(twin), bytes(cur))
    assert diff == [(28, b"\x07" * 4)]


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        compute_diff(bytes(8), bytes(12))


def test_non_word_multiple_rejected():
    with pytest.raises(ValueError):
        compute_diff(bytes(10), bytes(10))


def test_apply_diff_out_of_range_rejected():
    target = bytearray(16)
    with pytest.raises(ValueError):
        apply_diff(target, [(12, b"\x01" * 8)])


def test_diff_payload_bytes():
    diff = [(0, b"\x01" * 4), (16, b"\x02" * 8)]
    assert diff_payload_bytes(diff) == (RUN_HEADER_BYTES + 4
                                        + RUN_HEADER_BYTES + 8)


pages = st.integers(1, 32).flatmap(
    lambda words: st.tuples(
        st.binary(min_size=words * WORD, max_size=words * WORD),
        st.binary(min_size=words * WORD, max_size=words * WORD)))


@settings(max_examples=200)
@given(pages)
def test_diff_apply_roundtrip(pair):
    """apply(twin, diff(twin, current)) == current — the core invariant
    HLRC relies on for correctness of home copies."""
    twin, current = pair
    target = bytearray(twin)
    apply_diff(target, compute_diff(twin, current))
    assert bytes(target) == current


@settings(max_examples=200)
@given(pages)
def test_diff_runs_are_disjoint_sorted_and_word_aligned(pair):
    twin, current = pair
    diff = compute_diff(twin, current)
    last_end = -1
    for off, data in diff:
        assert off % WORD == 0
        assert len(data) % WORD == 0
        assert off > last_end
        last_end = off + len(data) - 1


@settings(max_examples=200)
@given(pages)
def test_diff_is_minimal_at_word_granularity(pair):
    """Every word inside a run differs... at run granularity the diff
    never includes a word equal in twin and current."""
    twin, current = pair
    for off, data in compute_diff(twin, current):
        for w in range(0, len(data), WORD):
            assert twin[off + w:off + w + WORD] != data[w:w + WORD]


@settings(max_examples=100)
@given(pages)
def test_applying_diff_to_unrelated_base_touches_only_runs(pair):
    twin, current = pair
    base = bytearray(b"\x5a" * len(twin))
    diff = compute_diff(twin, current)
    covered = set()
    for off, data in diff:
        covered.update(range(off, off + len(data)))
    apply_diff(base, diff)
    for i, b in enumerate(base):
        if i not in covered:
            assert b == 0x5A


# ------------------------------------------------------------ abstract shapes

def test_shape_validation():
    with pytest.raises(ValueError):
        DiffShape(runs=0, bytes_modified=4)
    with pytest.raises(ValueError):
        DiffShape(runs=4, bytes_modified=8)  # < one word per run


def test_shape_from_diff():
    diff = [(0, b"\x01" * 4), (16, b"\x02" * 8)]
    shape = DiffShape.from_diff(diff)
    assert shape.runs == 2
    assert shape.bytes_modified == 12


def test_shape_from_empty_diff_rejected():
    with pytest.raises(ValueError):
        DiffShape.from_diff([])


def test_packed_vs_run_message_sizes():
    shape = DiffShape(runs=8, bytes_modified=256)
    assert shape.packed_message_bytes == 256 + 8 * RUN_HEADER_BYTES
    # direct diffs: one small message per run
    assert shape.run_message_bytes == 256 // 8 + RUN_HEADER_BYTES


def test_direct_diffs_multiply_message_count_not_bytes():
    """The Barnes-spatial pathology: scattered runs mean many messages,
    while a packed diff stays a single message."""
    scattered = DiffShape(runs=30, bytes_modified=480)
    contiguous = DiffShape(runs=1, bytes_modified=480)
    assert scattered.runs == 30 * contiguous.runs
    assert scattered.packed_message_bytes > contiguous.packed_message_bytes
    # per-run payloads are tiny
    assert scattered.run_message_bytes < 32


def test_shape_merge_accumulates():
    a = DiffShape(runs=2, bytes_modified=64)
    b = DiffShape(runs=5, bytes_modified=128)
    m = a.merge(b)
    assert m.runs == 5
    assert m.bytes_modified == 192


def test_shape_merge_caps_at_page_size():
    a = DiffShape(runs=1, bytes_modified=4000)
    b = DiffShape(runs=1, bytes_modified=4000)
    assert a.merge(b).bytes_modified == 4096
