"""Tests for the parallel grid executor and the persistent run store.

Covers the determinism contract (jobs=1 == jobs=N == cache hit),
content-addressed keying (including the dict/list-valued-params
regression the old ``tuple(sorted(params.items()))`` keying broke on),
fingerprint invalidation and corrupted-entry recovery.
"""

import json

import pytest

from repro.experiments import ExperimentCache
from repro.hw import FaultConfig, MachineConfig
from repro.runtime import parallel
from repro.runtime.parallel import (CellSpec, GridExecutor, ResultStore,
                                    STORE_SCHEMA, canonical, canonical_json,
                                    decode_payload, decode_result,
                                    encode_result, evaluate_cell)
from repro.svm import BASE, GENIMA

APP = "Water-spatial"


def svm_spec(features=GENIMA, **params) -> CellSpec:
    return CellSpec(kind="svm", app=APP, params=params, features=features,
                    config=MachineConfig())


# --------------------------------------------------------------- canonical

def test_canonical_sorts_dict_keys():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2,
                                                               "b": 1})


def test_canonical_normalizes_sequences_and_sets():
    assert canonical((1, 2, 3)) == canonical([1, 2, 3])
    assert canonical({3, 1, 2}) == [1, 2, 3]


def test_canonical_tags_dataclasses():
    out = canonical(FaultConfig(loss=0.01))
    assert out["__dataclass__"] == "FaultConfig"
    assert out["loss"] == 0.01


def test_canonical_rejects_unserializable():
    with pytest.raises(TypeError):
        canonical(object())


# ------------------------------------------------------------------ digests

def test_digest_stable_across_param_dict_order():
    a = svm_spec(tiles={"x": 4, "y": 8}, order=[1, 2])
    b = svm_spec(order=[1, 2], tiles={"y": 8, "x": 4})
    assert a.digest("f" * 16) == b.digest("f" * 16)


def test_digest_dict_valued_params_regression():
    # The old cache keyed on tuple(sorted(params.items())), which
    # raises on dict-valued params; digests must just work.
    spec = svm_spec(weights={"b": 2.0, "a": 1.0})
    assert len(spec.digest("f" * 16)) == 64


def test_digest_distinguishes_inputs():
    fp = "f" * 16
    base = svm_spec()
    assert base.digest(fp) != svm_spec(features=BASE).digest(fp)
    assert base.digest(fp) != svm_spec(extra=1).digest(fp)
    assert base.digest(fp) != base.digest("0" * 16)
    faulty = CellSpec(kind="svm", app=APP, features=GENIMA,
                      config=MachineConfig(faults=FaultConfig(loss=0.01)))
    assert base.digest(fp) != faulty.digest(fp)


# ------------------------------------------------------------------- codecs

@pytest.fixture(scope="module")
def svm_payload():
    return evaluate_cell(svm_spec())


def test_result_roundtrips_through_json(svm_payload):
    wire = json.loads(json.dumps(svm_payload))
    result = decode_result(wire["result"])
    assert encode_result(result) == svm_payload["result"]
    assert result.app == APP
    assert result.time_us > 0
    assert len(result.buckets) == result.nprocs


def test_profile_payload_roundtrips():
    spec = CellSpec(kind="profile", app=APP, features=GENIMA,
                    config=MachineConfig(), slice_us=2000.0)
    payload = json.loads(json.dumps(evaluate_cell(spec)))
    profile = decode_payload(payload)
    assert profile.to_dict() == payload["profile"]
    assert profile.accounting_ok


def test_critpath_payload_roundtrips():
    spec = CellSpec(kind="critpath", app=APP, features=GENIMA,
                    config=MachineConfig())
    payload = json.loads(json.dumps(evaluate_cell(spec)))
    run = decode_payload(payload)
    assert run.tracer is None
    assert run.variant == "GeNIMA"
    assert run.path.to_dict() == payload["path"]


# -------------------------------------------------------------------- store

def test_store_roundtrip_and_len(tmp_path):
    store = ResultStore(tmp_path)
    envelope = {"schema": STORE_SCHEMA, "payload": {"kind": "x"}}
    store.store("ab" * 32, envelope)
    assert store.load("ab" * 32) == envelope
    assert len(store) == 1
    assert [d for d, _ in store.entries()] == ["ab" * 32]
    store.wipe()
    assert store.load("ab" * 32) is None
    assert len(store) == 0


def test_store_env_var_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    assert ResultStore().root == tmp_path / "env"
    assert ResultStore(tmp_path / "arg").root == tmp_path / "arg"


@pytest.mark.parametrize("text", [
    "", "not json", "[1,2]", '{"schema": 999, "payload": {}}',
    '{"schema": 1, "payload": "nope"}'])
def test_store_treats_corruption_as_miss(tmp_path, text):
    store = ResultStore(tmp_path)
    digest = "cd" * 32
    path = store.path_for(digest)
    path.parent.mkdir(parents=True)
    path.write_text(text)
    assert store.load(digest) is None


# ----------------------------------------------------------------- executor

def test_executor_persists_and_reloads(tmp_path, monkeypatch, svm_payload):
    store = ResultStore(tmp_path)
    spec = svm_spec()
    digest = spec.digest()
    first = GridExecutor(jobs=1, store=store).map([spec])
    assert len(store) == 1
    # A second executor must serve the hit without evaluating anything.
    def boom(_spec):
        raise AssertionError("cache hit must not recompute")
    monkeypatch.setattr(parallel, "evaluate_cell", boom)
    reloaded = GridExecutor(jobs=1, store=store).map([spec])
    assert encode_result(reloaded[digest]) == encode_result(first[digest])
    assert encode_result(first[digest]) == svm_payload["result"]


def test_executor_fingerprint_invalidates(tmp_path, monkeypatch):
    store = ResultStore(tmp_path)
    spec = svm_spec()
    GridExecutor(jobs=1, store=store).map([spec])
    assert len(store) == 1
    monkeypatch.setattr(parallel, "code_fingerprint", lambda: "0" * 16)
    GridExecutor(jobs=1, store=store).map([spec])
    assert len(store) == 2  # new digest, old entry untouched


def test_executor_recovers_from_corrupted_entry(tmp_path, svm_payload):
    store = ResultStore(tmp_path)
    spec = svm_spec()
    digest = spec.digest()
    GridExecutor(jobs=1, store=store).map([spec])
    store.path_for(digest).write_text('{"schema": 1, "payload": {}}')
    result = GridExecutor(jobs=1, store=store).map([spec])[digest]
    assert encode_result(result) == svm_payload["result"]
    # and the recomputed entry was re-persisted, healed
    assert store.load(digest)["payload"]["result"] == svm_payload["result"]


def test_executor_dedupes_equal_specs(tmp_path):
    store = ResultStore(tmp_path)
    out = GridExecutor(jobs=1, store=store).map([svm_spec(), svm_spec()])
    assert len(out) == 1
    assert len(store) == 1


def test_pool_matches_serial(svm_payload):
    """jobs=2 through a real spawn pool == jobs=1 in-process, bytewise."""
    specs = [svm_spec(), svm_spec(features=BASE)]
    serial = GridExecutor(jobs=1).map(specs)
    pooled = GridExecutor(jobs=2, jobs_force=True).map(specs)
    assert serial.keys() == pooled.keys()
    for digest in serial:
        assert (encode_result(serial[digest])
                == encode_result(pooled[digest]))
    assert encode_result(serial[specs[0].digest()]) == svm_payload["result"]


# ------------------------------------------------------------ jobs clamping

def test_jobs_clamped_to_cpu_count(monkeypatch):
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)
    ex = GridExecutor(jobs=8)
    assert ex.jobs == 2
    assert ex.requested_jobs == 8  # original ask kept for reporting


def test_jobs_force_overrides_clamp(monkeypatch):
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)
    ex = GridExecutor(jobs=8, jobs_force=True)
    assert ex.jobs == 8
    assert ex.requested_jobs == 8


def test_jobs_within_cpu_count_untouched(monkeypatch):
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 4)
    assert GridExecutor(jobs=2).jobs == 2
    assert GridExecutor(jobs=1).jobs == 1


# ----------------------------------------------------------- store locking

def test_store_skips_write_when_claim_held(tmp_path):
    """A fresh lockfile means a live concurrent writer owns the entry:
    store() must back off (content addressing makes their bytes ours)."""
    store = ResultStore(tmp_path)
    digest = "ef" * 32
    lock = store.lock_path(digest)
    lock.parent.mkdir(parents=True)
    lock.touch()  # another writer's live claim
    assert store.store(digest, {"schema": STORE_SCHEMA,
                                "payload": {}}) is False
    assert store.load(digest) is None  # nothing written by the loser
    assert lock.exists()  # and the owner's claim is intact


def test_store_breaks_stale_claim(tmp_path):
    """A claim older than lock_stale_s is an orphan (killed writer):
    the next store() breaks it and writes."""
    import os as _os
    store = ResultStore(tmp_path)
    digest = "ef" * 32
    lock = store.lock_path(digest)
    lock.parent.mkdir(parents=True)
    lock.touch()
    past = 10.0  # epoch-ish: way older than any staleness bound
    _os.utime(lock, (past, past))
    envelope = {"schema": STORE_SCHEMA, "payload": {"kind": "x"}}
    assert store.store(digest, envelope) is True
    assert store.load(digest) == envelope
    assert not lock.exists()  # claim released after the write


def test_store_write_releases_claim(tmp_path):
    store = ResultStore(tmp_path)
    digest = "ab" * 32
    assert store.store(digest, {"schema": STORE_SCHEMA,
                                "payload": {}}) is True
    assert not store.lock_path(digest).exists()
    # and the entry is immediately re-writable (no leaked claim)
    assert store.store(digest, {"schema": STORE_SCHEMA,
                                "payload": {"v": 2}}) is True


def test_executor_survives_blocked_store_write(tmp_path, svm_payload):
    """If another writer holds the claim, the executor still returns
    the computed result — persistence is best-effort, correctness
    comes from the in-memory path."""
    store = ResultStore(tmp_path)
    spec = svm_spec()
    digest = spec.digest()
    lock = store.lock_path(digest)
    lock.parent.mkdir(parents=True)
    lock.touch()
    result = GridExecutor(jobs=1, store=store).map([spec])[digest]
    assert encode_result(result) == svm_payload["result"]
    assert store.load(digest) is None  # write was skipped, not corrupted


# ----------------------------------------------------------- submit/collect

def test_submit_collect_halves(tmp_path, svm_payload):
    store = ResultStore(tmp_path)
    warm_spec, cold_spec = svm_spec(), svm_spec(features=BASE)
    GridExecutor(jobs=1, store=store).map([warm_spec])

    ex = GridExecutor(jobs=1, store=store)
    plan = ex.submit([warm_spec, cold_spec, warm_spec])  # dup collapses
    assert len(plan.order) == 2
    assert set(plan.hits) == {warm_spec.digest()}
    assert plan.misses == [cold_spec.digest()]
    out = ex.collect(plan)
    assert set(out) == set(plan.order)
    assert encode_result(out[warm_spec.digest()]) == svm_payload["result"]
    assert len(store) == 2  # miss persisted by collect


def test_submit_treats_corrupt_entry_as_miss(tmp_path):
    store = ResultStore(tmp_path)
    spec = svm_spec()
    digest = spec.digest()
    GridExecutor(jobs=1, store=store).map([spec])
    store.path_for(digest).write_text('{"schema": 1, "payload": {}}')
    plan = GridExecutor(jobs=1, store=store).submit([spec])
    assert plan.misses == [digest]
    assert not plan.hits


# ----------------------------------------------------- ExperimentCache glue

def test_cache_warm_is_idempotent(tmp_path):
    cache = ExperimentCache(store=ResultStore(tmp_path))
    specs = [cache.spec_svm(APP, GENIMA), cache.spec_seq(APP)]
    cache.warm(specs)
    first = cache.cell(specs[0])
    cache.warm(specs)
    assert cache.cell(specs[0]) is first  # in-memory identity preserved


def test_cache_spec_params_allow_dicts():
    cache = ExperimentCache()
    a = cache.spec_svm(APP, GENIMA, grid={"ny": 2, "nx": 1})
    b = cache.spec_svm(APP, GENIMA, grid={"nx": 1, "ny": 2})
    assert a.digest() == b.digest()


def test_caches_share_store_across_instances(tmp_path):
    store = ResultStore(tmp_path)
    first = ExperimentCache(store=store).svm(APP, GENIMA)
    second = ExperimentCache(store=store).svm(APP, GENIMA)
    assert first is not second
    assert encode_result(first) == encode_result(second)
