"""Tests for the fault injector and the drop-tolerant transport.

Three levels:

* config: ``FaultConfig`` validation and the ``--faults`` spec parser;
* transport: unit tests over the raw VMMC/NIC stack with targeted
  fault settings (total loss fails fast, duplicates are discarded,
  drops are repaired by retransmission);
* system: whole-app runs must be byte-identical for identical seeds,
  sanitizer-clean under loss, and the machine must not even build the
  fault layers when ``faults=None``.
"""

import hashlib

import pytest

from repro.hw import FaultConfig, Machine, MachineConfig
from repro.sim import SimulationError, Tracer
from repro.vmmc import VMMC

LOSSY = dict(retx_timeout_us=50.0, retx_timeout_max_us=200.0)


def make_stack(faults=None, **overrides):
    cfg = MachineConfig(faults=faults, **overrides)
    machine = Machine(cfg)
    return machine, VMMC(machine)


# ------------------------------------------------------------------ config

def test_fault_config_parse_round_trip():
    f = FaultConfig.parse("loss=0.01,jitter=5,seed=3")
    assert f.loss == 0.01
    assert f.jitter_us == 5.0
    assert f.seed == 3
    # Untouched knobs keep their defaults.
    assert f.dup == 0.0 and f.reorder == 0.0


def test_fault_config_parse_aliases_and_types():
    f = FaultConfig.parse("rto=100,rto_max=800,retries=4,window=25,dup=0.1")
    assert f.retx_timeout_us == 100.0
    assert f.retx_timeout_max_us == 800.0
    assert f.retx_max == 4
    assert isinstance(f.retx_max, int)
    assert f.reorder_window_us == 25.0


def test_fault_config_parse_rejects_junk():
    with pytest.raises(ValueError):
        FaultConfig.parse("warp=0.5")
    with pytest.raises(ValueError):
        FaultConfig.parse("loss")
    with pytest.raises(ValueError):
        FaultConfig.parse("loss=high")


def test_fault_config_validates_probabilities():
    with pytest.raises(ValueError):
        FaultConfig(loss=1.5)
    with pytest.raises(ValueError):
        FaultConfig(dup=-0.1)
    with pytest.raises(ValueError):
        FaultConfig(retx_max=0)


def test_fault_config_degrades_and_link_filter():
    assert not FaultConfig().degrades
    assert FaultConfig(loss=0.1).degrades
    f = FaultConfig(loss=1.0, links=((0, 1),))
    assert f.affects(0, 1)
    assert not f.affects(1, 0)


def test_faults_off_builds_no_fault_layers():
    machine, _ = make_stack(faults=None)
    assert machine.fault_injector is None
    assert machine.reliability is None
    assert machine.network.fault_injector is None
    assert all(nic.reliability is None for nic in machine.nics)


# --------------------------------------------------------------- transport

def _run_senders(machine, *gens):
    done = []

    def wrap(gen, tag):
        yield from gen
        done.append(tag)

    for i, gen in enumerate(gens):
        machine.sim.process(wrap(gen, i), name=f"sender{i}")
    machine.sim.run()
    assert len(done) == len(gens)


def test_total_loss_fails_fast_with_diagnostic():
    machine, vmmc = make_stack(
        faults=FaultConfig(loss=1.0, retx_max=3, **LOSSY))

    def sender():
        yield from vmmc.send(0, 1, size=64, kind="wn")

    machine.sim.process(sender(), name="sender")
    with pytest.raises(SimulationError, match="unacked after 3"):
        machine.sim.run()
    assert machine.reliability.retx_timeouts == 3


def test_drops_are_repaired_by_retransmission():
    machine, vmmc = make_stack(
        faults=FaultConfig(loss=0.4, seed=2, **LOSSY))
    delivered = []

    def sender():
        for _ in range(20):
            yield from vmmc.send(0, 1, size=256, kind="wn",
                                 await_delivery=True,
                                 on_delivered=delivered.append)

    _run_senders(machine, sender())
    assert len(delivered) == 20
    assert machine.fault_injector.drops > 0
    assert machine.reliability.retransmits > 0


def test_duplicates_deliver_exactly_once():
    machine, vmmc = make_stack(faults=FaultConfig(dup=1.0, **LOSSY))
    delivered = []

    def sender():
        for _ in range(5):
            yield from vmmc.send(0, 1, size=64, kind="wn",
                                 await_delivery=True,
                                 on_delivered=delivered.append)

    _run_senders(machine, sender())
    assert len(delivered) == 5
    assert machine.fault_injector.dups > 0
    assert machine.reliability.dup_discards > 0


def test_link_filter_spares_other_links():
    machine, vmmc = make_stack(
        faults=FaultConfig(loss=1.0, links=((2, 3),), retx_max=2, **LOSSY))
    delivered = []

    def sender():
        yield from vmmc.send(0, 1, size=64, kind="wn",
                             await_delivery=True,
                             on_delivered=delivered.append)

    _run_senders(machine, sender())
    assert len(delivered) == 1
    assert machine.fault_injector.drops == 0
    assert machine.reliability.retransmits == 0


def test_multicast_survives_loss():
    machine, vmmc = make_stack(
        faults=FaultConfig(loss=0.5, seed=5, **LOSSY))
    landed = []

    def sender():
        yield from vmmc.send_multicast(
            0, [1, 2, 3], size=128, kind="wn",
            on_packet_delivered=lambda pkt: landed.append(pkt.dst))
        # Wait out the recovery tail.
        yield machine.sim.timeout(5000.0)

    _run_senders(machine, sender())
    assert sorted(landed) == [1, 2, 3]


# ------------------------------------------------------------ determinism

def _trace_digest(seed):
    from repro.apps import APP_REGISTRY
    from repro.runtime import run_svm
    from repro.svm import GENIMA
    tracer = Tracer(capacity=None)
    cfg = MachineConfig(
        faults=FaultConfig(loss=0.03, dup=0.01, jitter_us=3.0, seed=seed))
    run_svm(APP_REGISTRY["Water-spatial"](), GENIMA, config=cfg,
            tracer=tracer)
    return hashlib.sha256(tracer.to_jsonl().encode()).hexdigest()


def test_same_seed_gives_byte_identical_traces():
    assert _trace_digest(7) == _trace_digest(7)


def test_different_seed_gives_different_faults():
    assert _trace_digest(7) != _trace_digest(8)


# -------------------------------------------------------------- sanitizer

def test_fault_recovery_check_flags_unacked_drop():
    from repro.analysis import Sanitizer
    tracer = Tracer(capacity=None)
    tracer.record(1.0, "fault.drop", src=0, dst=1, kind="wn", msg=5,
                  idx=0, size=64)
    findings = Sanitizer(checks=["fault-recovery"]).run(tracer.events)
    assert len(findings) == 1
    assert "never acked" in str(findings[0])


def test_fault_recovery_check_accepts_repaired_drop():
    from repro.analysis import Sanitizer
    tracer = Tracer(capacity=None)
    tracer.record(1.0, "fault.drop", src=0, dst=1, kind="wn", msg=5,
                  idx=0, size=64)
    tracer.record(2.0, "retx.resend", node=0, msg=5, dst=1, idx=0,
                  seq=0, attempt=1)
    tracer.record(3.0, "retx.ack", node=0, msg=5, dst=1)
    findings = Sanitizer(checks=["fault-recovery"]).run(tracer.events)
    assert findings == []


def test_lossy_run_is_sanitizer_clean():
    from repro.analysis import sanitize_run
    from repro.apps import APP_REGISTRY
    from repro.svm import GENIMA
    cfg = MachineConfig(faults=FaultConfig(loss=0.05, seed=1))
    result, findings = sanitize_run(APP_REGISTRY["Water-spatial"](),
                                    GENIMA, config=cfg)
    assert findings == []
    assert result.stats["packets_dropped"] > 0
    assert result.stats["retransmits"] > 0


# -------------------------------------------------------- fetch retry cap

def test_fetch_retry_exhaustion_raises():
    from repro.svm import DW_RF, HLRCProtocol
    cfg = MachineConfig(fetch_retry_max=3)
    machine = Machine(cfg)
    tracer = Tracer(capacity=None)
    proto = HLRCProtocol(machine, DW_RF, tracer=tracer)
    region = proto.allocate("a", 1, home_policy="node:0")
    gid = region.gid(0)

    def fetcher():
        # Demand a version the home copy can never reach: the loop
        # must give up after fetch_retry_max re-fetches, not livelock.
        yield from proto._fetch_rf(1, gid, 0, {99: 1})

    machine.sim.process(fetcher(), name="fetcher")
    with pytest.raises(SimulationError, match="fetch_retry_max=3"):
        machine.sim.run()
    assert tracer.counts().get("fetch.retry_exhausted") == 1
    assert proto.fetch_retries == 4  # 3 allowed retries + the last straw
