"""Every example must run to completion as a script."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples")
    .glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_protocol_ladder_example_accepts_app_argument():
    script = next(p for p in EXAMPLES if p.name == "protocol_ladder.py")
    proc = subprocess.run(
        [sys.executable, str(script), "Water-spatial"],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "Water-spatial" in proc.stdout


def test_protocol_ladder_example_rejects_unknown_app():
    script = next(p for p in EXAMPLES if p.name == "protocol_ladder.py")
    proc = subprocess.run(
        [sys.executable, str(script), "NotAnApp"],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode != 0
