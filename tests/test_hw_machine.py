"""Unit tests for Node, Machine, Network and packet mechanics."""

import pytest

from repro.hw import Machine, MachineConfig, Message
from repro.hw.packet import Packet


# -------------------------------------------------------------------- node

def test_compute_time_inflates_with_bus_intensity():
    machine = Machine()
    node = machine.nodes[0]
    base = node.compute_time(100.0, bus_intensity=0.0)
    hot = node.compute_time(100.0, bus_intensity=1.0)
    assert base == pytest.approx(100.0)
    cfg = machine.config
    assert hot == pytest.approx(
        100.0 * (1 + cfg.bus_contention_factor * 3))


def test_compute_time_validates_inputs():
    node = Machine().nodes[0]
    with pytest.raises(ValueError):
        node.compute_time(-1.0)
    with pytest.raises(ValueError):
        node.compute_time(1.0, bus_intensity=1.5)


def test_interrupt_entry_delay_is_positive_and_jittered():
    node = Machine().nodes[0]
    delays = [node.interrupt_entry_delay() for _ in range(50)]
    cfg = node.config
    floor = cfg.interrupt_us + cfg.handler_dispatch_us
    assert all(d >= floor for d in delays)
    assert len(set(delays)) > 10  # jitter varies


def test_interrupt_jitter_is_deterministic_per_seed():
    a = Machine(MachineConfig(seed=7)).nodes[0]
    b = Machine(MachineConfig(seed=7)).nodes[0]
    assert [a.interrupt_entry_delay() for _ in range(10)] \
        == [b.interrupt_entry_delay() for _ in range(10)]


def test_handlers_serialize_on_protocol_process():
    machine = Machine(MachineConfig(sched_jitter_us=0.0))
    node = machine.nodes[0]
    sim = machine.sim
    spans = []

    def handler(tag):
        t0 = sim.now
        yield from node.run_handler(50.0)
        spans.append((tag, t0, sim.now))

    for i in range(3):
        sim.process(handler(i))
    sim.run()
    # each activation costs entry + 50us service and they serialize
    per = machine.config.interrupt_us \
        + machine.config.handler_dispatch_us + 50.0
    ends = sorted(end for _t, _s, end in spans)
    assert ends[1] - ends[0] == pytest.approx(per)
    assert node.interrupts_taken == 3


def test_handler_without_entry_delay_pays_dispatch_only():
    machine = Machine(MachineConfig(sched_jitter_us=0.0))
    node = machine.nodes[0]
    sim = machine.sim
    t_end = []

    def run():
        yield from node.run_handler(10.0, entry_delay=False)
        t_end.append(sim.now)

    sim.process(run())
    sim.run()
    assert t_end[0] == pytest.approx(
        machine.config.handler_dispatch_us + 10.0)
    assert node.interrupts_taken == 0


# ----------------------------------------------------------------- machine

def test_machine_builds_requested_topology():
    machine = Machine(MachineConfig(nodes=8))
    assert len(machine.nodes) == 8
    assert len(machine.nics) == 8
    assert machine.network.node_ids == list(range(8))


def test_machine_node_and_nic_of_rank():
    machine = Machine()
    assert machine.node_of(5) is machine.nodes[1]
    assert machine.nic_of(15) is machine.nics[3]


def test_network_rejects_duplicate_attach():
    machine = Machine()
    with pytest.raises(ValueError):
        machine.network.attach(0, machine.nics[0])


def test_network_rejects_loopback_packet():
    machine = Machine()
    msg = Message(src=0, dst=0, size=8)
    pkt = Packet(message=msg, size=8, index=0, is_last=True)
    with pytest.raises(ValueError):
        machine.network.deliver(pkt)


@pytest.mark.parametrize("nodes", [3, 8, 257])
def test_machine_invariants_at_odd_node_counts(nodes):
    cfg = MachineConfig(nodes=nodes, procs_per_node=1)
    machine = Machine(cfg)
    assert machine.network.node_ids == list(range(nodes))
    assert cfg.node_of(0) == 0
    assert cfg.node_of(nodes - 1) == nodes - 1
    assert machine.node_of(nodes - 1) is machine.nodes[-1]
    with pytest.raises(ValueError):
        cfg.node_of(nodes)


def test_node_ids_cache_tracks_attach():
    machine = Machine(MachineConfig(nodes=3))
    net = machine.network
    ids = net.node_ids
    assert ids == [0, 1, 2]
    # the cached list is returned by reference, rebuilt only on attach.
    assert net.node_ids is ids
    net.attach(7, machine.nics[0])
    assert net.node_ids == [0, 1, 2, 7]


def test_config_rejects_non_positive_counts():
    with pytest.raises(ValueError):
        MachineConfig(nodes=0)
    with pytest.raises(ValueError):
        MachineConfig(procs_per_node=0)


def test_large_machine_constructs_quickly():
    import time
    t0 = time.perf_counter()  # repro: noqa[wall-clock] — timing test
    machine = Machine(MachineConfig(nodes=1024, procs_per_node=1))
    elapsed = time.perf_counter() - t0  # repro: noqa[wall-clock] — timing test
    assert len(machine.nodes) == 1024
    # acceptance bound is < 1s; typical is tens of ms with lazy metrics.
    assert elapsed < 1.0, f"1024-node construction took {elapsed:.2f}s"


def test_machine_metrics_registration_is_deferred():
    machine = Machine(MachineConfig(nodes=4))
    # no instrument materialized yet: construction queued one thunk.
    assert len(machine.metrics._instruments) == 0
    assert machine.metrics._pending
    names = machine.metrics.names()
    assert "nic.3.delivery_latency_us" in names
    assert "node.0.interrupts_taken" in names
    assert not machine.metrics._pending


def test_deferred_metrics_lose_no_samples():
    machine = Machine(MachineConfig(nodes=2))
    # samples recorded before the registry ever materializes ...
    machine.nics[1].delivery_latency.add(12.5)
    snap = machine.metrics.snapshot()
    # ... are visible once it does: the NIC owns the accumulator.
    assert snap["nic.1.delivery_latency_us"]["count"] == 1
    assert snap["nic.1.delivery_latency_us"]["mean"] == 12.5


def test_fault_gauges_read_per_key_attributes():
    from repro.hw import FaultConfig
    machine = Machine(MachineConfig(faults=FaultConfig(loss=0.01)))
    machine.fault_injector.drops = 5
    machine.reliability.retransmits = 7
    snap = machine.metrics.snapshot()
    assert snap["faults.packets_dropped"] == 5
    assert snap["retx.retransmits"] == 7


# ------------------------------------------------------------------ packet

def test_message_rejects_negative_size():
    with pytest.raises(ValueError):
        Message(src=0, dst=1, size=-1)


def test_message_rejects_nondeposit_loopback():
    with pytest.raises(ValueError):
        Message(src=1, dst=1, size=8, kind="fetch_req")


def test_multicast_validation():
    with pytest.raises(ValueError):
        Message(src=0, dst=1, size=8, multicast_dsts=(0, 1))
    with pytest.raises(ValueError):
        Message(src=0, dst=1, size=8, multicast_dsts=(1, 1))


def test_packet_stage_latencies():
    msg = Message(src=0, dst=1, size=100)
    pkt = Packet(message=msg, size=100, index=0, is_last=True)
    pkt.t_enqueue = 10.0
    pkt.t_src_done = 14.0
    pkt.t_injected = 20.0
    pkt.t_net_arrival = 21.0
    pkt.t_delivered = 30.0
    assert pkt.source_latency == pytest.approx(4.0)
    assert pkt.lanai_latency == pytest.approx(6.0)
    assert pkt.net_latency == pytest.approx(7.0)
    assert pkt.dest_latency == pytest.approx(9.0)


def test_packet_small_classification():
    msg = Message(src=0, dst=1, size=5000)
    small = Packet(message=msg, size=256, index=0, is_last=False)
    large = Packet(message=msg, size=257, index=1, is_last=True)
    assert small.is_small and not large.is_small


def test_packet_dst_override_for_multicast():
    msg = Message(src=0, dst=1, size=8, multicast_dsts=(1, 2))
    pkt = Packet(message=msg, size=8, index=0, is_last=True, dst_node=2)
    assert pkt.dst == 2


# -------------------------------------------------------------- NI queues

def test_post_queue_depth_respected():
    machine = Machine(MachineConfig(post_queue_len=4))
    nic = machine.nics[0]
    assert nic.post_queue.capacity == 4


def test_unknown_fw_kind_raises():
    machine = Machine()
    sim = machine.sim
    msg = Message(src=0, dst=1, size=8, kind="mystery",
                  deliver_to_host=False)

    def sender():
        yield machine.nics[0].post(msg)

    sim.process(sender())
    with pytest.raises(LookupError):
        sim.run()
