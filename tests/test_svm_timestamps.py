"""Unit + property tests for vector clocks, intervals, write notices."""

import pytest
from hypothesis import given, strategies as st

from repro.svm import Interval, IntervalLog, VectorClock, WriteNotice


# ------------------------------------------------------------- VectorClock

def test_clock_starts_at_zero():
    vc = VectorClock(4)
    assert vc.values == (0, 0, 0, 0)


def test_clock_set_and_get():
    vc = VectorClock(4)
    vc[2] = 5
    assert vc[2] == 5
    assert vc.values == (0, 0, 5, 0)


def test_clock_entries_never_decrease():
    vc = VectorClock(4)
    vc[1] = 3
    with pytest.raises(ValueError):
        vc[1] = 2


def test_clock_merge_is_pointwise_max():
    a = VectorClock(values=[1, 5, 2, 0])
    b = VectorClock(values=[3, 1, 2, 4])
    a.merge(b)
    assert a.values == (3, 5, 2, 4)


def test_clock_merge_size_mismatch():
    with pytest.raises(ValueError):
        VectorClock(3).merge(VectorClock(4))


def test_clock_dominates():
    a = VectorClock(values=[2, 2, 2])
    b = VectorClock(values=[1, 2, 2])
    assert a.dominates(b)
    assert not b.dominates(a)
    assert a.dominates(a)


def test_clock_copy_is_independent():
    a = VectorClock(values=[1, 2])
    b = a.copy()
    b[0] = 9
    assert a[0] == 1


clocks = st.lists(st.integers(0, 100), min_size=1, max_size=8)


@given(clocks, clocks)
def test_merge_commutative(xs, ys):
    n = min(len(xs), len(ys))
    a1 = VectorClock(values=xs[:n])
    b1 = VectorClock(values=ys[:n])
    m1 = a1.merged(b1)
    m2 = b1.merged(a1)
    assert m1 == m2


@given(clocks)
def test_merge_idempotent(xs):
    a = VectorClock(values=xs)
    assert a.merged(a) == a


@given(clocks, clocks, clocks)
def test_merge_associative(xs, ys, zs):
    n = min(len(xs), len(ys), len(zs))
    a = VectorClock(values=xs[:n])
    b = VectorClock(values=ys[:n])
    c = VectorClock(values=zs[:n])
    assert a.merged(b).merged(c) == a.merged(b.merged(c))


@given(clocks, clocks)
def test_merge_dominates_both(xs, ys):
    n = min(len(xs), len(ys))
    a = VectorClock(values=xs[:n])
    b = VectorClock(values=ys[:n])
    m = a.merged(b)
    assert m.dominates(a) and m.dominates(b)


@given(clocks)
def test_dominates_reflexive(xs):
    a = VectorClock(values=xs)
    assert a.dominates(a)


@given(clocks, clocks)
def test_dominates_antisymmetric(xs, ys):
    n = min(len(xs), len(ys))
    a = VectorClock(values=xs[:n])
    b = VectorClock(values=ys[:n])
    if a.dominates(b) and b.dominates(a):
        assert a == b


@given(clocks, clocks, clocks)
def test_dominates_transitive(xs, ys, zs):
    n = min(len(xs), len(ys), len(zs))
    a = VectorClock(values=xs[:n])
    b = VectorClock(values=ys[:n])
    c = VectorClock(values=zs[:n])
    if a.dominates(b) and b.dominates(c):
        assert a.dominates(c)


@given(clocks, clocks)
def test_dominates_consistent_with_merge(xs, ys):
    # The partial order and the join agree: a >= b iff a join b == a.
    n = min(len(xs), len(ys))
    a = VectorClock(values=xs[:n])
    b = VectorClock(values=ys[:n])
    assert a.dominates(b) == (a.merged(b) == a)


# ------------------------------------------------------------ IntervalLog

def test_interval_notices():
    iv = Interval(node=1, index=3, pages=(10, 11))
    notices = iv.notices()
    assert notices == [WriteNotice(10, 1, 3), WriteNotice(11, 1, 3)]


def test_log_appends_in_order():
    log = IntervalLog(2)
    log.append(Interval(0, 1, (1,)))
    log.append(Interval(0, 2, (2,)))
    assert log.current_index(0) == 2
    assert log.current_index(1) == 0


def test_log_rejects_out_of_order_append():
    log = IntervalLog(2)
    with pytest.raises(ValueError):
        log.append(Interval(0, 2, (1,)))


def test_intervals_between_window():
    log = IntervalLog(1)
    for i in range(1, 6):
        log.append(Interval(0, i, (i,)))
    ivs = log.intervals_between(0, 2, 4)
    assert [iv.index for iv in ivs] == [3, 4]


def test_intervals_between_unclosed_rejected():
    log = IntervalLog(1)
    log.append(Interval(0, 1, (1,)))
    with pytest.raises(ValueError):
        log.intervals_between(0, 0, 2)


def test_notices_between_clocks():
    log = IntervalLog(2)
    log.append(Interval(0, 1, (10,)))
    log.append(Interval(1, 1, (20, 21)))
    log.append(Interval(0, 2, (11,)))
    have = VectorClock(values=[1, 0])
    want = VectorClock(values=[2, 1])
    notices = log.notices_between(have, want)
    pages = sorted(n.page for n in notices)
    assert pages == [11, 20, 21]


def test_notices_between_empty_window():
    log = IntervalLog(2)
    log.append(Interval(0, 1, (10,)))
    have = VectorClock(values=[1, 0])
    assert log.notices_between(have, have) == []


def test_notices_between_inverted_entry_is_empty():
    # A want entry below have yields nothing for that node (slice
    # semantics), which apply paths rely on after clock merges.
    log = IntervalLog(2)
    log.append(Interval(0, 1, (10,)))
    log.append(Interval(0, 2, (11,)))
    have = VectorClock(values=[2, 0])
    want = VectorClock(values=[1, 0])
    assert log.notices_between(have, want) == []
