"""Unit tests for small shared utilities: stats, monitor internals,
trace export, reporting edge cases."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.experiments.reporting import format_float, format_table
from repro.hw import MachineConfig, Message
from repro.hw.packet import Packet
from repro.sim import RunningStat, TimeBuckets, Tracer, weighted_mean


# -------------------------------------------------------------- RunningStat

def test_running_stat_basics():
    rs = RunningStat()
    rs.extend([1.0, 2.0, 3.0, 4.0])
    assert rs.count == 4
    assert rs.mean == pytest.approx(2.5)
    assert rs.min == 1.0 and rs.max == 4.0
    assert rs.total == pytest.approx(10.0)
    assert rs.variance == pytest.approx(5.0 / 3.0)


def test_running_stat_empty():
    rs = RunningStat()
    assert rs.mean == 0.0
    assert rs.variance == 0.0


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
def test_running_stat_matches_naive(xs):
    rs = RunningStat()
    rs.extend(xs)
    assert rs.mean == pytest.approx(sum(xs) / len(xs), rel=1e-6, abs=1e-6)
    assert rs.min == min(xs) and rs.max == max(xs)


@given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
       st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50))
def test_running_stat_merge_equals_concat(xs, ys):
    a = RunningStat()
    a.extend(xs)
    b = RunningStat()
    b.extend(ys)
    merged = a.merge(b)
    naive = RunningStat()
    naive.extend(xs + ys)
    assert merged.count == naive.count
    assert merged.mean == pytest.approx(naive.mean, rel=1e-6, abs=1e-6)
    assert merged.variance == pytest.approx(naive.variance,
                                            rel=1e-4, abs=1e-4)


def test_weighted_mean():
    assert weighted_mean([(10.0, 1.0), (20.0, 3.0)]) == pytest.approx(17.5)
    assert weighted_mean([]) == 0.0


# -------------------------------------------------------------- TimeBuckets

def test_buckets_reject_negative_charge():
    b = TimeBuckets()
    with pytest.raises(ValueError):
        b.charge("compute", -1.0)


def test_buckets_fractions_empty():
    b = TimeBuckets()
    assert all(v == 0.0 for v in b.fractions().values())


def test_buckets_average_empty_list():
    avg = TimeBuckets.average([])
    assert avg.total == 0.0


# -------------------------------------------------------- monitor internals

def test_monitor_skips_source_for_fw_origin_control():
    from repro.hw import Machine
    from repro.vmmc import PerfMonitor

    machine = Machine(MachineConfig())
    monitor = PerfMonitor(machine)
    msg = Message(src=0, dst=1, size=16, kind="lock_op",
                  deliver_to_host=False)
    pkt = Packet(message=msg, size=16, index=0, is_last=True,
                 fw_origin=True)
    pkt.t_enqueue = 0.0
    pkt.t_src_done = 0.0
    pkt.t_injected = 5.0
    pkt.t_net_arrival = 6.0
    pkt.t_delivered = 14.0
    monitor.record(pkt)
    small = monitor._ratios["small"]
    assert small["source"].count == 0   # not comparable, skipped
    assert small["dest"].count == 1


# ----------------------------------------------------------------- tracing

def test_chrome_trace_export(tmp_path):
    tr = Tracer()
    tr.record(1.5, "lock.acquire", rank=3, lock=7)
    tr.record(2.5, "barrier.enter", rank=0)
    events = tr.to_chrome_trace()
    meta = [e for e in events if e["ph"] == "M"]
    # process label + one thread label per rank row
    assert [m["args"]["name"] for m in meta] == \
        ["repro", "rank 0", "rank 3"]
    instants = [e for e in events if e["ph"] == "i"]
    assert instants[0]["name"] == "lock.acquire"
    assert instants[0]["tid"] == 3
    assert instants[0]["ts"] == 1.5
    path = tmp_path / "trace.json"
    tr.save_chrome_trace(path)
    loaded = json.loads(path.read_text())
    assert loaded == events
    assert loaded[-1]["name"] == "barrier.enter"


# --------------------------------------------------------------- reporting

def test_format_float_variants():
    assert format_float(None) == "-"
    assert format_float("txt") == "txt"
    assert format_float(1.2345, digits=1) == "1.2"


def test_format_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text and "b" in text
