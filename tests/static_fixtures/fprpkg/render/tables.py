"""FPR001: reachable from the cache entry point, not fingerprinted."""


def render(result):
    return {"value": result}
