"""Covered by FINGERPRINT_DIRS ("sim")."""


def run(cell):
    return cell
