"""The cache entry point: declares the fingerprint, lazily imports."""

from ..sim.engine import run

# FPR002: "ghostdir" does not exist on disk
FINGERPRINT_DIRS = ("sim", "runtime", "ghostdir")
FINGERPRINT_MODULES = ()


def evaluate_cell(cell):
    from ..render.tables import render      # lazy, outside the dirs
    return render(run(cell))
