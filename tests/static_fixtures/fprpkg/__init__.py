"""Fixture: run-cache fingerprint with seeded FPR violations."""
