"""Protocol code touching shared objects: two seeded RACE hits."""

from .shared import Network


class Machine:
    def __init__(self, network):
        self.network = network
        self.network.fault_injector = None   # __init__ wiring: allowed

    def handle(self):
        # RACE001: mutating shared Network state outside dispatch
        self.network.inflight = 0

    def rebind(self, network):
        self.network = network               # rebinding a ref: allowed


def collect(results, store=None):
    if store is None:
        store = {}
    return results


def leaky(network=Network()):
    # RACE002: one Network instance shared by every caller
    return network
