"""Fixture: shared-state mutation with seeded RACE violations."""
