"""The shared classes; mutation inside them is allowed."""


class Network:
    def __init__(self):
        self.fault_injector = None
        self.inflight = 0

    def absorb(self):
        self.inflight += 1          # own method: allowed


class ResultStore:
    def __init__(self):
        self.entries = {}
