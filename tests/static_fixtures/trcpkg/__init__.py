"""Fixture: trace emit sites with seeded TRC violations."""
