"""Trace emit sites: clean ones plus seeded TRC violations."""


class GuardedEmitter:
    def __init__(self, sim, tracer=None):
        self.sim = sim
        self.tracer = tracer

    def _trace(self, category, **fields):
        if self.tracer is not None:
            self.tracer.record(self.sim.now, category, **fields)

    def ok(self, rank, gid):
        self._trace("fault.read", rank=rank, gid=gid)

    def unknown_category(self):
        # TRC001: "fault.raed" is not a declared family
        self._trace("fault.raed", rank=0, gid=1)

    def missing_field(self):
        # TRC002: required field gid absent
        self._trace("fault.read", rank=0)

    def extra_field(self):
        # TRC002: clock.advance is not variadic, "want" undeclared
        self._trace("clock.advance", node=0, clock=1.0, want=2.0)

    def variadic_ok(self):
        self._trace("span.begin", sid=1, name="x", custom="fine")

    def unguarded(self, sim):
        # TRC003: self.tracer may be None, no guard
        self.tracer.record(sim.now, "fault.read", rank=0, gid=1)

    def guarded_direct(self, sim):
        if self.tracer is not None:
            self.tracer.record(sim.now, "fault.read", rank=0, gid=2)


class MandatoryEmitter:
    """tracer is never None here: direct calls need no guard."""

    def __init__(self, tracer):
        self.tracer = tracer

    def emit(self, sim):
        self.tracer.record(sim.now, "clock.advance", node=0, clock=1.0)
