"""Declared trace schema for the fixture package."""


def family(name, fields=(), required=None, variadic=False, doc=""):
    return (name, tuple(fields),
            tuple(required if required is not None else fields),
            variadic, doc)


FAMILIES = (
    family("fault.read", fields=("rank", "gid")),
    family("span.begin", fields=("sid", "name", "extra"),
           required=("sid", "name"), variadic=True),
    family("clock.advance", fields=("node", "clock")),
)
