"""Handler registrations: two live, one unreachable (PROTO002)."""


class Message:
    def __init__(self, kind="deposit", deliver_to_host=True,
                 on_delivered=None):
        self.kind = kind
        self.deliver_to_host = deliver_to_host
        self.on_delivered = on_delivered


def wire(nic):
    nic.fw_handlers["fetch_req"] = handle_fetch
    nic.fw_handlers["lock_op"] = handle_lock
    # PROTO002: no send site ever constructs kind "ghost_op"
    nic.fw_handlers["ghost_op"] = handle_ghost


def handle_fetch(msg):
    return msg


def handle_lock(msg):
    return msg


def handle_ghost(msg):
    return msg
