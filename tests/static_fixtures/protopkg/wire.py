"""Send sites: one clean, four seeded PROTO violations."""

from .nic import Message

FW_KINDS = ("fetch_req", "lock_op", "drain_req")       # PROTO003: drain_req


def good_send(vmmc):
    yield from vmmc.send(0, 1, 32, kind="fetch_req",
                         deliver_to_host=False)


def orphan_fw_send(vmmc):
    # PROTO001: no fw_handlers["evict_req"] anywhere
    yield from vmmc.send(0, 1, 32, kind="evict_req",
                         deliver_to_host=False)


def misrouted_send():
    # PROTO004: lock_op is a declared firmware kind, constructed
    # without deliver_to_host=False
    return Message(kind="lock_op")


def fire_and_forget(vmmc):
    # PROTO005: nothing consumes stats_blob deliveries
    yield from vmmc.send(0, 1, 64, kind="stats_blob")


def consumed_send(vmmc, done):
    yield from vmmc.send(0, 1, 64, kind="page_reply", on_delivered=done)
