"""Fixture: protocol wiring with seeded PROTO violations."""
