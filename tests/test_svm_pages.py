"""Unit tests for regions, the page directory, page tables, mprotect."""

import pytest
from hypothesis import given, strategies as st

from repro.hw import MachineConfig
from repro.svm import (DiffShape, HomePage, NodePageTable, PageAccess,
                       PageDirectory, coalesce_pages)
from repro.svm.mprotect import MprotectModel


CFG = MachineConfig()


# --------------------------------------------------------------- directory

def test_blocked_home_policy_partitions_contiguously():
    d = PageDirectory(CFG)
    region = d.allocate("a", 16, home_policy="blocked")
    assert region.homes == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4


def test_round_robin_home_policy():
    d = PageDirectory(CFG)
    region = d.allocate("a", 8, home_policy="round_robin")
    assert region.homes == [0, 1, 2, 3, 0, 1, 2, 3]


def test_single_node_home_policy():
    d = PageDirectory(CFG)
    region = d.allocate("a", 5, home_policy="node:2")
    assert region.homes == [2] * 5


def test_custom_home_policy():
    d = PageDirectory(CFG)
    region = d.allocate("a", 6, home_policy="custom",
                        home_fn=lambda i: (i * 2) % 4)
    assert region.homes == [0, 2, 0, 2, 0, 2]


def test_custom_policy_requires_fn():
    d = PageDirectory(CFG)
    with pytest.raises(ValueError):
        d.allocate("a", 4, home_policy="custom")


def test_invalid_home_node_rejected():
    d = PageDirectory(CFG)
    with pytest.raises(ValueError):
        d.allocate("a", 4, home_policy="node:9")


def test_duplicate_region_name_rejected():
    d = PageDirectory(CFG)
    d.allocate("a", 4)
    with pytest.raises(ValueError):
        d.allocate("a", 4)


def test_gids_are_globally_unique_across_regions():
    d = PageDirectory(CFG)
    a = d.allocate("a", 10)
    b = d.allocate("b", 10)
    assert set(a.gids(range(10))).isdisjoint(b.gids(range(10)))
    assert d.total_pages == 20


def test_region_of_and_home_of():
    d = PageDirectory(CFG)
    a = d.allocate("a", 8, home_policy="round_robin")
    gid = a.gid(5)
    assert d.region_of(gid) is a
    assert d.home_of(gid) == 1  # 5 % 4


def test_region_gid_bounds_checked():
    d = PageDirectory(CFG)
    a = d.allocate("a", 4)
    with pytest.raises(IndexError):
        a.gid(4)
    with pytest.raises(KeyError):
        d.region_of(99)


def test_concrete_region_has_data_pages():
    d = PageDirectory(CFG)
    a = d.allocate("a", 3, concrete=True)
    assert len(a.data) == 3
    assert all(len(page) == CFG.page_size for page in a.data)
    b = d.allocate("b", 3)
    assert b.data is None


# ---------------------------------------------------------------- HomePage

def test_home_page_satisfies():
    hp = HomePage()
    hp.applied = {0: 3, 2: 1}
    assert hp.satisfies({0: 3})
    assert hp.satisfies({0: 2, 2: 1})
    assert not hp.satisfies({0: 4})
    assert not hp.satisfies({1: 1})
    assert hp.satisfies({})


def test_home_page_snapshot_is_stable():
    hp = HomePage()
    hp.applied = {0: 1}
    snap = hp.snapshot()
    hp.applied[0] = 5
    assert snap == {0: 1}
    assert HomePage.snapshot_satisfies(snap, {0: 1})
    assert not HomePage.snapshot_satisfies(snap, {0: 2})


# ------------------------------------------------------------ NodePageTable

def make_table():
    return NodePageTable(0, CFG)


def test_pages_start_invalid():
    t = make_table()
    assert t.access(123) is PageAccess.INVALID


def test_mark_valid_read_and_write():
    t = make_table()
    t.mark_valid(1)
    assert t.access(1) is PageAccess.READ
    t.mark_valid(2, writable=True)
    assert t.access(2) is PageAccess.WRITE


def test_first_write_twins_second_does_not():
    t = make_table()
    t.mark_valid(1)
    shape = DiffShape(runs=1, bytes_modified=64)
    assert t.record_write(1, shape) is True
    assert t.record_write(1, shape) is False
    assert t.access(1) is PageAccess.WRITE


def test_repeat_writes_merge_shapes():
    t = make_table()
    t.record_write(1, DiffShape(runs=2, bytes_modified=64))
    t.record_write(1, DiffShape(runs=5, bytes_modified=100))
    assert t.dirty_pages[1].runs == 5
    assert t.dirty_pages[1].bytes_modified == 164


def test_take_dirty_resets_and_downgrades():
    t = make_table()
    t.record_write(1, DiffShape(runs=1, bytes_modified=32))
    t.record_write(2, DiffShape(runs=1, bytes_modified=32))
    dirty = t.take_dirty()
    assert set(dirty) == {1, 2}
    assert t.dirty_pages == {}
    assert t.access(1) is PageAccess.READ
    # next write twins again
    assert t.record_write(1, DiffShape(runs=1, bytes_modified=32)) is True


def test_invalidate_updates_needed_and_state():
    t = make_table()
    t.mark_valid(7)
    changed = t.invalidate(7, writer=2, interval=4)
    assert changed is True
    assert t.access(7) is PageAccess.INVALID
    assert t.needed_versions(7) == {2: 4}


def test_invalidate_already_invalid_needs_no_mprotect():
    t = make_table()
    assert t.invalidate(7, writer=1, interval=1) is False
    assert t.needed_versions(7) == {1: 1}


def test_invalidate_at_home_keeps_access():
    t = make_table()
    t.mark_valid(7)
    changed = t.invalidate(7, writer=2, interval=1, is_home=True)
    assert changed is False
    assert t.access(7) is PageAccess.READ
    assert t.needed_versions(7) == {2: 1}


def test_needed_versions_keep_maximum():
    t = make_table()
    t.invalidate(7, writer=1, interval=5)
    t.invalidate(7, writer=1, interval=3)
    assert t.needed_versions(7) == {1: 5}


# ----------------------------------------------------------------- mprotect

def test_coalesce_pages_runs():
    assert coalesce_pages([1, 2, 3, 7, 8, 10]) == [(1, 3), (7, 2), (10, 1)]
    assert coalesce_pages([]) == []
    assert coalesce_pages([5, 5, 5]) == [(5, 1)]


@given(st.lists(st.integers(0, 200), max_size=50))
def test_coalesce_covers_exactly_the_unique_pages(pages):
    runs = coalesce_pages(pages)
    covered = []
    for first, count in runs:
        covered.extend(range(first, first + count))
    assert covered == sorted(set(pages))


def test_mprotect_coalescing_is_cheaper():
    m = MprotectModel(CFG)
    contiguous = m.cost_us(range(100))
    scattered = m.cost_us(range(0, 200, 2))
    assert contiguous < scattered
    # one call + per-page increments
    assert contiguous == pytest.approx(
        CFG.mprotect_call_us + 99 * CFG.mprotect_page_us)
    assert scattered == pytest.approx(100 * CFG.mprotect_call_us)


def test_mprotect_accounting():
    m = MprotectModel(CFG)
    cost = m.protect(1, [1, 2, 3])
    assert cost > 0
    assert m.total_us[1] == pytest.approx(cost)
    assert m.calls[1] == 1
    assert m.pages_protected[1] == 3
    assert m.grand_total_us == pytest.approx(cost)


def test_mprotect_empty_is_free():
    m = MprotectModel(CFG)
    assert m.protect(0, []) == 0.0
    assert m.calls[0] == 0
