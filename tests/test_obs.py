"""Tests for repro.obs: metrics registry, slice hooks, profiler,
reports and the sum-equals-wall time-accounting invariant."""

import json
import random

import pytest

from repro.analysis.invariants import InvariantChecker, InvariantViolation
from repro.apps import Application
from repro.cli import main
from repro.hw import Machine, MachineConfig
from repro.obs import (MetricsRegistry, PhaseProfiler, TIME_TOLERANCE_US,
                       check_time_accounting, render_profiles,
                       render_profiles_html, render_timeline,
                       render_utilization)
from repro.runtime import RunResult, run_svm
from repro.sim import BUCKETS, RunningStat, Simulator, TimeBuckets
from repro.svm import PROTOCOL_LADDER, GENIMA


class TinyApp(Application):
    """Compute + one shared write + a barrier; fast under any variant."""

    name = "tiny"
    bus_intensity = 0.1

    def __init__(self, work_us: float = 4000.0):
        self.work_us = work_us

    def setup(self, backend):
        return {"r": backend.allocate("tiny.r", 16)}

    def process(self, ctx, regions):
        yield from ctx.compute(self.work_us / ctx.nprocs)
        yield from ctx.write(regions["r"], [ctx.rank % 16])
        yield from ctx.barrier()


TWO_NODES = MachineConfig(nodes=2, procs_per_node=2)


# ------------------------------------------------------------ RunningStat

def test_running_stat_merge_matches_direct_accumulation():
    rng = random.Random(7)
    xs = [rng.uniform(-50, 100) for _ in range(200)]
    for cut in (0, 1, 57, 199, 200):
        left, right = RunningStat(), RunningStat()
        left.extend(xs[:cut])
        right.extend(xs[cut:])
        direct = RunningStat()
        direct.extend(xs)
        merged = left.merge(right)
        assert merged.count == direct.count
        assert merged.total == pytest.approx(direct.total)
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.variance == pytest.approx(direct.variance)
        assert merged.min == direct.min
        assert merged.max == direct.max


def test_running_stat_merge_of_empties_stays_empty():
    merged = RunningStat().merge(RunningStat())
    assert merged.count == 0
    assert merged.mean == 0.0
    # The inf/-inf sentinels must not leak into reports.
    assert repr(merged) == "RunningStat(n=0)"


def test_running_stat_merge_empty_side_copies_other():
    full = RunningStat()
    full.extend([1.0, 2.0, 3.0])
    for merged in (RunningStat().merge(full), full.merge(RunningStat())):
        assert merged.count == 3
        assert merged.min == 1.0
        assert merged.max == 3.0
        assert "inf" not in repr(merged)


# ------------------------------------------------------------ TimeBuckets

def test_time_buckets_average_of_empty_list_is_zero():
    avg = TimeBuckets.average([])
    assert avg.total == 0.0
    for name in BUCKETS:
        assert getattr(avg, name) == 0.0


def test_time_buckets_fractions_zero_total():
    fracs = TimeBuckets().fractions()
    assert set(fracs) == set(BUCKETS)
    assert all(v == 0.0 for v in fracs.values())


# -------------------------------------------------------- MetricsRegistry

def test_registry_counter_gauge_stat_snapshot():
    reg = MetricsRegistry()
    c = reg.counter("layer.events")
    c.inc()
    c.inc(4)
    box = {"v": 10}
    reg.gauge("layer.depth", lambda: box["v"])
    s = reg.stat("layer.latency")
    s.add(2.0)
    s.add(4.0)
    empty = reg.stat("layer.unused")
    snap = reg.snapshot()
    assert snap["layer.events"] == 5
    assert snap["layer.depth"] == 10
    assert snap["layer.latency"]["count"] == 2
    assert snap["layer.latency"]["mean"] == pytest.approx(3.0)
    assert snap["layer.unused"]["min"] is None  # never inf in JSON
    json.dumps(snap)  # everything must be serializable


def test_snapshot_stat_variance_and_stdev():
    reg = MetricsRegistry()
    s = reg.stat("layer.lat")
    for x in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
        s.add(x)
    snap = reg.snapshot()["layer.lat"]
    # Sample (n-1) variance of the classic 8-value example.
    assert snap["variance"] == pytest.approx(32.0 / 7.0)
    assert snap["stdev"] == pytest.approx((32.0 / 7.0) ** 0.5)
    json.dumps(snap)


def test_snapshot_stat_variance_edge_cases():
    reg = MetricsRegistry()
    reg.stat("empty")
    one = reg.stat("single")
    one.add(42.0)
    snap = reg.snapshot()
    # Below two samples the Welford estimate is defined as 0.0 (not
    # NaN), so snapshots always serialize cleanly.
    assert snap["empty"]["variance"] == 0.0
    assert snap["empty"]["stdev"] == 0.0
    assert snap["single"]["variance"] == 0.0
    assert snap["single"]["stdev"] == 0.0
    json.dumps(snap)


def test_merged_stat_variance_matches_direct():
    left, right, direct = RunningStat(), RunningStat(), RunningStat()
    xs = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0]
    for i, x in enumerate(xs):
        (left if i % 2 else right).add(x)
        direct.add(x)
    merged = left.merge(right)
    assert merged.variance == pytest.approx(direct.variance)
    assert merged.stdev == pytest.approx(direct.stdev)


def test_registry_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("x").inc(-1)


def test_register_gauges_binds_attributes_and_rejects_typos():
    class Layer:
        hits = 3

    reg = MetricsRegistry()
    layer = Layer()
    reg.register_gauges("layer", layer, "hits")
    layer.hits = 9
    assert reg.snapshot()["layer.hits"] == 9
    with pytest.raises(AttributeError):
        reg.register_gauges("layer", layer, "typo")


def test_registry_rebinding_last_instance_wins():
    reg = MetricsRegistry()
    reg.gauge("svm.x", lambda: 1)
    reg.gauge("svm.x", lambda: 2)
    assert len(reg) == 1
    assert reg.snapshot()["svm.x"] == 2


def test_deferred_registration_runs_on_first_query():
    reg = MetricsRegistry()
    calls = []

    def register(r):
        calls.append(True)
        r.counter("lazy.count", 3)

    reg.defer(register)
    assert calls == []                  # nothing ran yet
    assert "lazy.count" in reg          # first query materializes
    assert calls == [True]
    assert reg.snapshot()["lazy.count"] == 3
    assert calls == [True]              # thunk ran exactly once


def test_deferred_registration_supports_nested_defers():
    reg = MetricsRegistry()

    def inner(r):
        r.counter("b", 2)

    def outer(r):
        r.counter("a", 1)
        r.defer(inner)

    reg.defer(outer)
    snap = reg.snapshot()
    assert snap == {"a": 1, "b": 2}


def test_register_stat_binds_existing_accumulator_without_reset():
    reg = MetricsRegistry()
    stat = RunningStat()
    stat.add(5.0)
    bound = reg.register_stat("layer.lat", stat)
    assert bound is stat
    assert reg.snapshot()["layer.lat"]["count"] == 1
    stat.add(7.0)
    assert reg.snapshot()["layer.lat"]["mean"] == pytest.approx(6.0)


def test_machine_layers_register_into_the_registry():
    machine = Machine(TWO_NODES)
    names = machine.metrics.names()
    for expected in ("nic.0.packets_sent", "nic.1.delivery_latency_us",
                     "node.0.interrupts_taken", "node.1.proto_busy_us"):
        assert expected in names


def test_protocol_and_vmmc_metrics_registered():
    from repro.runtime.backends import SVMBackend
    backend = SVMBackend(TWO_NODES, GENIMA)
    names = backend.machine.metrics.names()
    for expected in ("svm.page_fetches", "svm.interrupts",
                     "vmmc.messages_sent", "vmmc.bytes_sent"):
        assert expected in names


# ------------------------------------------------------------ slice hooks

def test_slice_hook_fires_at_boundaries_without_extending_run():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(2500.0)

    sim.process(proc())
    sim.add_slice_hook(1000.0, seen.append)
    end = sim.run()
    # Boundaries up to the last event only: the hook must not keep the
    # simulation alive past its processes.
    assert seen == [1000.0, 2000.0]
    assert end == 2500.0


def test_slice_hook_removal_and_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.add_slice_hook(0.0, lambda t: None)
    seen = []
    hook = sim.add_slice_hook(10.0, seen.append)
    sim.remove_slice_hook(hook)

    def proc():
        yield sim.timeout(100.0)

    sim.process(proc())
    sim.run()
    assert seen == []


# --------------------------------------------------------------- profiler

def test_profiler_slice_deltas_sum_to_final_buckets():
    profiler = PhaseProfiler(slice_us=500.0)
    result = run_svm(TinyApp(), GENIMA, config=TWO_NODES,
                     profiler=profiler)
    profile = profiler.build_profile(result)
    assert profile.slices, "run long enough for at least one slice"
    for rank in range(profile.nprocs):
        for name in BUCKETS:
            sliced = sum(s["ranks"][rank][name] for s in profile.slices)
            # Slices also cover the untimed init section, whose charges
            # are discarded at the timed-section reset; the timed-run
            # buckets can only be <= the all-run slice sum.
            assert sliced >= profile.buckets[rank][name] - 1e-6


def test_profiler_utilization_fractions_bounded():
    profiler = PhaseProfiler(slice_us=500.0)
    result = run_svm(TinyApp(), GENIMA, config=TWO_NODES,
                     profiler=profiler)
    profile = profiler.build_profile(result)
    for util in profile.utilization + [u for s in profile.slices
                                       for u in s["utilization"]]:
        for value in util.values():
            assert -1e-9 <= value <= 1.0 + 1e-9


def test_profiler_rejects_non_positive_slice():
    with pytest.raises(ValueError):
        PhaseProfiler(slice_us=0.0)


def test_profiling_does_not_change_the_run():
    bare = run_svm(TinyApp(), GENIMA, config=TWO_NODES)
    profiled = run_svm(TinyApp(), GENIMA, config=TWO_NODES,
                       profiler=PhaseProfiler(slice_us=250.0))
    assert profiled.time_us == bare.time_us
    assert profiled.wall_us == bare.wall_us


# ------------------------------------------------- sum-equals-wall invariant

@pytest.mark.parametrize("features", PROTOCOL_LADDER,
                         ids=[f.name for f in PROTOCOL_LADDER])
def test_sum_equals_wall_across_the_ladder(features):
    result = run_svm(TinyApp(), features, config=TWO_NODES, check=True)
    assert result.wall_us
    assert check_time_accounting(result) == []
    for wall, buckets in zip(result.wall_us, result.buckets):
        assert buckets.total == pytest.approx(wall, abs=TIME_TOLERANCE_US)


def test_check_time_accounting_flags_violations():
    b = TimeBuckets()
    b.charge("compute", 80.0)
    result = RunResult(app="x", system="y", nprocs=1, time_us=100.0,
                       wall_us=[100.0], buckets=[b])
    violations = check_time_accounting(result)
    assert violations == [(0, 100.0, pytest.approx(-20.0))]
    # Results without per-rank wall times trivially pass.
    assert check_time_accounting(
        RunResult(app="x", system="y", nprocs=1, time_us=1.0)) == []


def test_invariant_checker_on_run_complete_raises():
    backend = __import__("repro.runtime.backends",
                         fromlist=["SVMBackend"]).SVMBackend(
        MachineConfig(nodes=2, procs_per_node=2), GENIMA)
    checker = InvariantChecker(backend.protocol).install()
    good = TimeBuckets()
    good.charge("compute", 10.0)
    checker.on_run_complete(0, 10.0, good)
    bad = TimeBuckets()
    bad.charge("compute", 9.0)
    with pytest.raises(InvariantViolation, match="time accounting"):
        checker.on_run_complete(1, 10.0, bad)


def test_traced_profiled_run_leaves_prof_records_and_sanitizes_clean():
    from repro.analysis.sanitizer import Sanitizer
    from repro.sim import Tracer
    tracer = Tracer(capacity=None)
    run_svm(TinyApp(), GENIMA, config=TWO_NODES, tracer=tracer,
            profiler=PhaseProfiler(slice_us=500.0))
    prof_events = [e for e in tracer.events if e.category == "prof.rank"]
    assert len(prof_events) == 4  # one per rank
    findings = Sanitizer(["time-accounting"]).run(tracer.events)
    assert findings == []


def test_sanitizer_time_accounting_flags_bad_records():
    from repro.analysis.sanitizer import Sanitizer
    from repro.sim.trace import TraceEvent
    bad = TraceEvent(t=1.0, category="prof.rank", seq=1,
                     fields={"rank": 2, "wall_us": 100.0,
                             "bucket_us": 90.0, "residual_us": -10.0})
    findings = Sanitizer(["time-accounting"]).run([bad])
    assert len(findings) == 1
    assert "rank 2" in findings[0].message


def test_untraced_runs_leave_no_prof_records():
    from repro.sim import Tracer
    tracer = Tracer(capacity=None)
    run_svm(TinyApp(), GENIMA, config=TWO_NODES, tracer=tracer)
    assert not any(e.category == "prof.rank" for e in tracer.events)


# ------------------------------------------------------------------ reports

def _small_profile():
    profiler = PhaseProfiler(slice_us=500.0)
    result = run_svm(TinyApp(), GENIMA, config=TWO_NODES,
                     profiler=profiler)
    return profiler.build_profile(result)


def test_render_profiles_and_timeline_and_utilization():
    profile = _small_profile()
    text = render_profiles([profile])
    assert "GeNIMA" in text and "accounting" in text and "ok" in text
    strip = render_timeline(profile)
    assert f"rank {profile.nprocs - 1:3d}" in strip
    table = render_utilization(profile)
    assert "lanai" in table
    html = render_profiles_html([profile])
    assert html.startswith("<!doctype html>") and "GeNIMA" in html


def test_profile_json_round_trip():
    profile = _small_profile()
    data = json.loads(profile.to_json())
    assert data["schema"] == 1
    assert data["invariant"]["ok"] is True
    assert len(data["ranks"]) == profile.nprocs
    for rank in data["ranks"]:
        total = sum(rank["buckets"].values())
        assert abs(total - rank["wall_us"]) <= TIME_TOLERANCE_US
    assert "svm.page_fetches" in data["metrics"]


# ---------------------------------------------------------------------- CLI

def test_cli_profile_writes_json_and_reports(tmp_path, capsys):
    out = tmp_path / "profile.json"
    html = tmp_path / "profile.html"
    rc = main(["profile", "--app", "fft", "--variant", "genima",
               "--nodes", "2", "--slice-us", "2000",
               "--out", str(out), "--html", str(html)])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "execution-time breakdown" in captured
    assert "phase timeline" in captured
    data = json.loads(out.read_text())
    assert data["schema"] == 1
    for profile in data["profiles"]:
        assert profile["invariant"]["ok"]
        for rank in profile["ranks"]:
            total = sum(rank["buckets"].values())
            assert abs(total - rank["wall_us"]) <= 1e-6
    assert html.read_text().startswith("<!doctype html>")


def test_cli_profile_rejects_unknown_names():
    with pytest.raises(SystemExit):
        main(["profile", "--app", "nosuchapp"])
