"""Property-based whole-protocol invariants.

Random small workloads (reads, writes, locks, flags, barriers over a
shared region) are run to completion under randomly chosen protocol
variants; afterwards the protocol's global state must satisfy the LRC
invariants the implementation relies on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import Machine, MachineConfig
from repro.svm import PROTOCOL_LADDER, HLRCProtocol


N_PAGES = 12

# one op per tuple: (kind, page-or-lock, size-ish)
ops = st.lists(
    st.tuples(st.sampled_from(["read", "write", "lock", "compute"]),
              st.integers(0, N_PAGES - 1),
              st.integers(1, 6)),
    min_size=1, max_size=8)

workloads = st.lists(ops, min_size=16, max_size=16)  # one op-list per rank
protocol_idx = st.integers(0, len(PROTOCOL_LADDER) - 1)


def run_workload(proto, machine, per_rank_ops, region):
    done = []
    end_times = {}

    def worker(rank, my_ops):
        for kind, page, amount in my_ops:
            if kind == "read":
                yield from proto.read(rank, region,
                                      [page, (page + 1) % N_PAGES])
            elif kind == "write":
                yield from proto.write(rank, region, [page],
                                       runs_per_page=amount,
                                       bytes_per_page=amount * 64)
            elif kind == "lock":
                yield from proto.lock(rank, page % 4)
                yield from proto.compute(rank, float(amount))
                yield from proto.unlock(rank, page % 4)
            else:
                yield from proto.compute(rank, float(amount) * 5)
        yield from proto.barrier(rank)
        end_times[rank] = machine.sim.now
        done.append(rank)

    for rank, my_ops in enumerate(per_rank_ops):
        machine.sim.process(worker(rank, my_ops))
    machine.run()
    assert len(done) == 16, "workload did not complete (deadlock?)"
    return end_times


@settings(max_examples=30, deadline=None)
@given(workloads, protocol_idx)
def test_protocol_invariants_after_random_workload(per_rank_ops, pidx):
    feats = PROTOCOL_LADDER[pidx]
    machine = Machine(MachineConfig())
    proto = HLRCProtocol(machine, feats)
    region = proto.allocate("inv", N_PAGES, home_policy="round_robin")
    run_workload(proto, machine, per_rank_ops, region)

    nodes = machine.config.nodes

    # I1: the final barrier leaves no unflushed intervals anywhere.
    assert all(not pending for pending in proto.pending_flush)

    # I2: after the closing barrier, every node's clock covers every
    # closed interval of every node.
    for node in range(nodes):
        for writer in range(nodes):
            assert proto.node_clock[node][writer] \
                == proto.interval_log.current_index(writer), (node, writer)

    # I3: every closed interval's diffs have been applied at the homes.
    for node in range(nodes):
        idx = proto.interval_log.current_index(node)
        for interval in proto.interval_log.intervals_between(node, 0, idx):
            for gid in interval.pages:
                home = proto.directory.home_of(gid)
                if home == interval.node:
                    continue
                hp = proto._homes.get(gid)
                assert hp is not None and \
                    hp.applied.get(interval.node, 0) >= interval.index, \
                    (gid, interval)

    # I4: no parked waiters of any kind remain.
    assert not any(proto._wn_waiters[n] for n in range(nodes))
    assert not proto._home_waiters
    assert not proto._inflight_fetch

    # I5: a node's dirty set is empty and dirtied pages were downgraded.
    for node in range(nodes):
        assert proto.tables[node].dirty_pages == {}

    # I6: hardware-level conservation: every packet injected anywhere
    # was received somewhere.
    sent = sum(nic.packets_sent for nic in machine.nics)
    received = sum(nic.packets_received for nic in machine.nics)
    assert sent == received


@settings(max_examples=15, deadline=None)
@given(workloads)
def test_runs_are_deterministic(per_rank_ops):
    """Same seed + same workload => identical final time and stats."""
    results = []
    for _ in range(2):
        machine = Machine(MachineConfig(seed=99))
        proto = HLRCProtocol(machine, PROTOCOL_LADDER[4])
        region = proto.allocate("det", N_PAGES,
                                home_policy="round_robin")
        run_workload(proto, machine, per_rank_ops, region)
        results.append((machine.sim.now, proto.page_fetches,
                        proto.diff_runs_sent, proto.wn_messages,
                        tuple(c.values for c in proto.node_clock)))
    assert results[0] == results[1]


@settings(max_examples=15, deadline=None)
@given(workloads, protocol_idx)
def test_breakdowns_are_complete_and_nonnegative(per_rank_ops, pidx):
    machine = Machine(MachineConfig())
    proto = HLRCProtocol(machine, PROTOCOL_LADDER[pidx])
    region = proto.allocate("bk", N_PAGES, home_policy="round_robin")
    end_times = run_workload(proto, machine, per_rank_ops, region)
    for rank in range(16):
        b = proto.buckets[rank]
        for name, value in b.as_dict().items():
            assert value >= 0.0, (rank, name)
        # each rank's charged time equals its own elapsed time (the
        # simulation keeps running briefly to drain async traffic)
        assert b.total == pytest.approx(end_times[rank], rel=0.05), rank
