"""Tests for first-touch home allocation and home migration."""

from repro.hw import Machine, MachineConfig
from repro.svm import BASE, GENIMA, HLRCProtocol, PageAccess


def make(feats=GENIMA):
    machine = Machine(MachineConfig())
    return machine, HLRCProtocol(machine, feats)


def run_all(machine, gens):
    done = []

    def wrap(g, i):
        yield from g
        done.append(i)

    for i, g in enumerate(gens):
        machine.sim.process(wrap(g, i))
    machine.run()
    assert len(done) == len(gens)


# -------------------------------------------------------------- first touch

def test_first_touch_region_starts_unhomed():
    machine, proto = make()
    region = proto.allocate("ft", 8, home_policy="first_touch")
    assert all(h is None for h in region.homes)


def test_first_writer_becomes_the_home():
    machine, proto = make()
    region = proto.allocate("ft", 8, home_policy="first_touch")

    def writer(rank, page):
        yield from proto.write(rank, region, [page],
                               runs_per_page=1, bytes_per_page=64)

    run_all(machine, [writer(0, 0), writer(5, 1), writer(14, 2)])
    assert region.homes[0] == 0   # rank 0 -> node 0
    assert region.homes[1] == 1   # rank 5 -> node 1
    assert region.homes[2] == 3   # rank 14 -> node 3
    assert proto.home_allocations == 3


def test_first_touch_writes_are_home_local():
    """After first touch, the toucher writes its pages without diffs —
    the whole point of first-touch placement."""
    machine, proto = make()
    region = proto.allocate("ft", 4, home_policy="first_touch")

    def worker(rank):
        yield from proto.write(0, region, [0], runs_per_page=1,
                               bytes_per_page=64)
        yield from proto.barrier(0)

    def others(rank):
        yield from proto.barrier(rank)

    run_all(machine, [worker(0)] + [others(r) for r in range(1, 16)])
    assert proto.diffs_sent == 0
    assert proto.diff_runs_sent == 0


def test_first_touch_reader_fetch_after_assignment():
    machine, proto = make()
    region = proto.allocate("ft", 4, home_policy="first_touch")

    def writer():
        yield from proto.write(0, region, [0], runs_per_page=1,
                               bytes_per_page=64)
        yield from proto.release_flag(0, 1)

    def reader():
        yield from proto.acquire_flag(8, 1)
        yield from proto.read(8, region, [0])

    run_all(machine, [writer(), reader()])
    assert region.homes[0] == 0
    assert proto.tables[2].access(region.gid(0)) is PageAccess.READ


def test_first_touch_pages_exported_on_assignment():
    machine, proto = make()
    region = proto.allocate("ft", 4, home_policy="first_touch")
    gid = region.gid(3)
    assert not proto.vmmc.exports.is_exported(0, gid)

    def writer():
        yield from proto.write(2, region, [3], runs_per_page=1,
                               bytes_per_page=64)

    run_all(machine, [writer()])
    assert proto.vmmc.exports.is_exported(0, gid)


# ---------------------------------------------------------------- migration

def test_migrate_home_moves_ownership():
    machine, proto = make()
    region = proto.allocate("m", 4, home_policy="node:0")

    def migrator():
        yield from proto.migrate_home(8, region, 2)  # rank 8 = node 2

    run_all(machine, [migrator()])
    assert region.homes[2] == 2
    assert proto.home_migrations == 1
    assert proto.vmmc.exports.is_exported(2, region.gid(2))


def test_migrate_to_own_home_is_noop():
    machine, proto = make()
    region = proto.allocate("m", 4, home_policy="node:1")

    def migrator():
        yield from proto.migrate_home(4, region, 0)  # already node 1

    run_all(machine, [migrator()])
    assert proto.home_migrations == 0


def test_migrated_page_writes_become_local():
    machine, proto = make()
    region = proto.allocate("m", 4, home_policy="node:0")

    def worker():
        # before migration: remote writes diff to node 0
        yield from proto.write(12, region, [1], runs_per_page=1,
                               bytes_per_page=64)
        yield from proto.barrier(12)
        runs_before = proto.diff_runs_sent
        yield from proto.migrate_home(12, region, 1)
        yield from proto.write(12, region, [1], runs_per_page=1,
                               bytes_per_page=64)
        yield from proto.barrier(12)
        assert proto.diff_runs_sent == runs_before  # now home-local

    def others(rank):
        yield from proto.barrier(rank)
        yield from proto.barrier(rank)

    run_all(machine, [worker()] + [others(r) for r in range(16)
                                   if r != 12])


def test_migration_after_remote_reads_preserves_versions():
    """The version vector travels with the home: a reader that needed
    writer intervals still sees them satisfied at the new home."""
    machine, proto = make(BASE)
    region = proto.allocate("m", 4, home_policy="node:0")

    def worker():
        yield from proto.write(4, region, [0], runs_per_page=1,
                               bytes_per_page=64)
        yield from proto.barrier(4)
        yield from proto.migrate_home(4, region, 0)  # to node 1
        yield from proto.barrier(4)

    def reader():
        yield from proto.barrier(0)
        yield from proto.barrier(0)
        yield from proto.read(0, region, [0])

    def others(rank):
        yield from proto.barrier(rank)
        yield from proto.barrier(rank)

    run_all(machine, [worker(), reader()]
            + [others(r) for r in range(16) if r not in (0, 4)])
    gid = region.gid(0)
    assert region.homes[0] == 1
    assert proto._homes[gid].applied.get(1, 0) >= 1
    assert proto.tables[0].access(gid) is PageAccess.READ
