"""Tooling gates: ruff/mypy configs stay green, CLI gates exit cleanly.

ruff and mypy are dev-only dependencies; when they are not installed
(minimal container), those tests skip and CI — which installs
``.[dev]`` — enforces them.
"""

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _run(argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.run(argv, cwd=ROOT, env=env,
                          capture_output=True, text=True)


@pytest.mark.skipif(shutil.which("ruff") is None,
                    reason="ruff not installed")
def test_ruff_clean():
    proc = _run([shutil.which("ruff"), "check", "src", "tests"])
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None,
                    reason="mypy not installed")
def test_mypy_analysis_clean():
    proc = _run([shutil.which("mypy"), "src/repro/analysis"])
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_repro_lint_gate():
    proc = _run([sys.executable, "-m", "repro", "lint"])
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "lint clean" in proc.stdout
