"""Unit and structural tests for the application models."""

import pytest

from repro.apps import (APP_REGISTRY, DATACENTER_APPS, PAPER_APPS,
                        BarnesOriginal, BarnesSpatial, FFT, LU, Ocean,
                        Radix, Raytrace, Volrend, WaterNsquared,
                        WaterSpatial, pages_for_bytes)
from repro.hw import MachineConfig
from repro.runtime import LocalBackend, SVMBackend, run_on_backend
from repro.svm import GENIMA


# ---------------------------------------------------------------- registry

def test_registry_covers_the_papers_table1():
    assert set(PAPER_APPS) | set(DATACENTER_APPS) == set(APP_REGISTRY)
    assert len(PAPER_APPS) == 10
    assert len(DATACENTER_APPS) == 3


def test_all_apps_declare_paper_params():
    for name, cls in APP_REGISTRY.items():
        if name in PAPER_APPS:  # datacenter apps have no Table 1 row
            assert cls.paper_params, name
        assert 0.0 <= cls.bus_intensity <= 1.0, name


def test_pages_for_bytes():
    assert pages_for_bytes(0) == 1
    assert pages_for_bytes(1) == 1
    assert pages_for_bytes(4096) == 1
    assert pages_for_bytes(4097) == 2


# ----------------------------------------------------------- layout logic

def test_fft_rejects_odd_log2():
    with pytest.raises(ValueError):
        FFT(log2_n=15)
    with pytest.raises(ValueError):
        FFT(log2_n=6)


def test_fft_block_pages_stay_in_owner_band():
    app = FFT(log2_n=14)
    backend = LocalBackend()
    regions = app.setup(backend)
    total = app.total_pages()
    band = total // 16
    for owner in range(16):
        for reader in range(16):
            pages = list(app._block_pages(regions["src"], owner, reader, 16))
            assert pages, (owner, reader)
            for p in pages:
                assert owner * band <= p < total


def test_lu_ownership_partitions_all_blocks():
    app = LU(n=512, block=32)
    owners = [app.owner(i, j, 16) for i in range(app.nblocks)
              for j in range(app.nblocks)]
    assert set(owners) == set(range(16))


def test_lu_rejects_bad_block():
    with pytest.raises(ValueError):
        LU(n=1000, block=32)


def test_lu_block_pages_distinct():
    app = LU(n=512, block=32)
    seen = set()
    for bi in range(app.nblocks):
        for bj in range(app.nblocks):
            pages = set(app.block_pages(bi, bj))
            assert not pages & seen
            seen |= pages


def test_ocean_boundaries_touch_neighbour_bands():
    app = Ocean(n=258, sweeps=1)
    total = app.total_pages()
    per = total // 16
    for rank in (0, 5, 15):
        for p in app.boundary_pages(rank, 16):
            assert 0 <= p < total
            own = range(rank * per,
                        total if rank == 15 else (rank + 1) * per)
            assert p not in own
    # interior ranks have two boundaries, edges one
    assert len(app.boundary_pages(0, 16)) < len(app.boundary_pages(5, 16))


def test_water_molecule_page_mapping_in_range():
    app = WaterNsquared(molecules=1024)
    total = app.total_pages()
    for mol in (0, 511, 1023):
        assert 0 <= app.mol_page(mol) < total


def test_radix_scatter_pages_valid_and_interleaved():
    app = Radix(keys=1 << 17)
    total = app.key_pages()
    for rank in (0, 7, 15):
        pages = app.scatter_pages(rank, 16)
        assert pages
        assert all(0 <= p < total for p in pages)
    # different ranks write overlapping (false-shared) page sets
    a = set(app.scatter_pages(0, 16))
    b = set(app.scatter_pages(1, 16))
    assert a & b


def test_task_queue_cost_functions_positive():
    vol = Volrend(ntasks=64)
    ray = Raytrace(ntasks=64)
    for t in range(64):
        assert vol.task_cost(t) > 0
        assert ray.task_cost(t) > 0
        assert all(0 <= p < vol.scene_pages
                   for p in vol.scene_pages_for_task(t))
        assert all(0 <= p < ray.scene_pages
                   for p in ray.scene_pages_for_task(t))


def test_volrend_center_tasks_cost_more():
    vol = Volrend(ntasks=100)
    assert vol.task_cost(50) > 2.0 * vol.task_cost(0)


def test_barnes_spatial_pages_cover_region():
    app = BarnesSpatial(bodies=4096)
    total = app.body_pages()
    covered = set()
    for rank in range(16):
        pages = app.spatial_pages(rank, 16)
        assert all(0 <= p < total for p in pages)
        covered |= set(pages)
    # the interleaved boxes cover (nearly) the whole body array
    assert len(covered) >= (total // 16) * 16


# -------------------------------------------------------- end-to-end runs

SMALL_APP_FACTORIES = [
    lambda: FFT(log2_n=12),
    lambda: LU(n=256, block=32),
    lambda: Ocean(n=130, sweeps=4),
    lambda: WaterNsquared(molecules=128, steps=1),
    lambda: WaterSpatial(molecules=512, steps=1),
    lambda: Radix(keys=1 << 14, passes=2),
    lambda: Volrend(ntasks=64, volume_mb=1),
    lambda: Raytrace(ntasks=64, scene_mb=1),
    lambda: BarnesOriginal(bodies=512, steps=1),
    lambda: BarnesSpatial(bodies=1024, steps=1),
]
SMALL_APP_IDS = [f().name for f in SMALL_APP_FACTORIES]


@pytest.mark.parametrize("factory", SMALL_APP_FACTORIES, ids=SMALL_APP_IDS)
def test_every_app_completes_under_genima(factory):
    backend = SVMBackend(MachineConfig(), GENIMA)
    result = run_on_backend(factory(), backend, system="GeNIMA")
    assert result.time_us > 0
    assert result.stats["interrupts"] == 0  # GeNIMA promise
    # all 16 processes accumulated time
    assert all(b.total > 0 for b in result.buckets)


@pytest.mark.parametrize("factory", SMALL_APP_FACTORIES, ids=SMALL_APP_IDS)
def test_every_app_runs_sequentially(factory):
    from repro.runtime import run_sequential
    result = run_sequential(factory())
    assert result.time_us > 0
    assert result.nprocs == 1


def test_task_queue_executes_every_task_exactly_once():
    app = Volrend(ntasks=96, volume_mb=1)
    backend = SVMBackend(MachineConfig(), GENIMA)
    run_on_backend(app, backend, system="GeNIMA")
    assert sum(app._remaining) == 0
