"""Tests for the sim-time telemetry pipeline.

Covers the LogHistogram bucket algebra, the sampler's counter/gauge
semantics and decimation bound, the scale-aware reductions (top-k,
skew), hot-node detection on the sharded KV workload, the OpenMetrics
exposition format, and the determinism contract (summaries identical
across runs and across ``--jobs`` fan-out; the schedule untouched —
the byte-identity pin itself lives in ``test_golden.py``).
"""

import json

import pytest

from repro.experiments import compute_scale, scale_params
from repro.experiments.cache import ExperimentCache
from repro.hw import MachineConfig
from repro.obs import (LogHistogram, TimeSeriesSampler, render_dash,
                       render_dash_html, render_openmetrics, sparkline,
                       telemetry_brief)
from repro.runtime import run_svm
from repro.runtime.parallel import decode_result, encode_result, evaluate_cell
from repro.svm import GENIMA
from repro.apps import ShardedKVStore, WaterSpatial


# ------------------------------------------------------------ LogHistogram

def test_log_histogram_bucket_edges():
    h = LogHistogram()
    # frexp puts v in [2**(e-1), 2**e): 1.0 and 1.99 share a bucket,
    # 2.0 starts the next one.
    h.add(1.0)
    h.add(1.99)
    h.add(2.0)
    assert h.buckets() == [(2.0, 2), (4.0, 1)]
    assert h.count == 3


def test_log_histogram_zero_and_negative_bucket():
    h = LogHistogram()
    h.add(0.0)
    h.add(-5.0)
    h.add(3.0)
    assert h.zeros == 2
    assert h.buckets()[0] == (0.0, 2)
    assert h.count == 3


def test_log_histogram_quantile():
    h = LogHistogram()
    for v in (1.0, 1.0, 1.0, 8.0):
        h.add(v)
    assert h.quantile(0.5) == 2.0    # bucket upper bound
    assert h.quantile(1.0) == 16.0
    assert LogHistogram().quantile(0.5) == 0.0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_log_histogram_merge():
    a, b = LogHistogram(), LogHistogram()
    a.add(1.0)
    a.add(0.0)
    b.add(1.5)
    b.add(100.0)
    a.merge(b)
    assert a.count == 4
    assert a.zeros == 1
    assert dict(a.buckets())[2.0] == 2


def test_log_histogram_round_trips_through_json():
    h = LogHistogram()
    for v in (0.0, 0.5, 3.0, 1e9):
        h.add(v)
    d = json.loads(json.dumps(h.to_dict()))
    assert d["count"] == 4
    assert sum(n for _, n in d["buckets"]) == 4


# ----------------------------------------------------------- sampler units

def test_sampler_counter_probes_record_deltas():
    box = {"v": 0}
    s = TimeSeriesSampler(cadence_us=1.0)
    s.probe_counter("m.count", 0, lambda: box["v"])
    for v in (3, 10, 10):
        box["v"] = v
        s._sample(float(v))
    _, sums, _, _ = s.series("m.count")
    assert sums == [3.0, 7.0, 0.0]
    track = s._series["m.count"].tracks[0]
    assert track.stat.total == 10.0


def test_sampler_gauge_probes_record_levels():
    box = {"v": 0}
    s = TimeSeriesSampler(cadence_us=1.0)
    s.probe_gauge("m.depth", 0, lambda: box["v"])
    for v in (3, 10, 2):
        box["v"] = v
        s._sample(float(v))
    _, sums, maxima, _ = s.series("m.depth")
    assert sums == [3.0, 10.0, 2.0]
    assert maxima == [3.0, 10.0, 2.0]


def test_sampler_vector_probe_tracks_every_node():
    s = TimeSeriesSampler(cadence_us=1.0)
    s.probe_vector("m.vec", "gauge", lambda: [1.0, 5.0, 2.0])
    s._sample(0.0)
    _, sums, maxima, argmax = s.series("m.vec")
    assert sums == [8.0]
    assert maxima == [5.0]
    assert argmax == [1]
    assert s.top_nodes("m.vec", 2) == [(1, 5.0), (2, 2.0)]


def test_sampler_rejects_kind_conflicts_and_double_vectors():
    s = TimeSeriesSampler(cadence_us=1.0)
    s.probe_gauge("m", 0, lambda: 0.0)
    with pytest.raises(ValueError):
        s.probe_counter("m", 1, lambda: 0.0)
    s.probe_vector("v", "gauge", lambda: [])
    with pytest.raises(ValueError):
        s.probe_vector("v", "gauge", lambda: [])
    with pytest.raises(ValueError):
        s.probe_vector("w", "histogram", lambda: [])
    with pytest.raises(ValueError):
        TimeSeriesSampler(cadence_us=0.0)
    with pytest.raises(ValueError):
        TimeSeriesSampler(max_samples=1)


def test_sampler_decimation_bounds_memory_and_doubles_stride():
    s = TimeSeriesSampler(cadence_us=1.0, max_samples=4)
    s.probe_gauge("m", 0, lambda: 1.0)
    for t in range(32):
        s._sample(float(t))
    assert len(s.times) < 4
    assert s._stride == 16
    # Histograms still saw every sample: bounded series, full stats.
    assert s._series["m"].tracks[0].stat.count == 32


def test_sampler_skew_ratio_none_when_median_idle():
    s = TimeSeriesSampler(cadence_us=1.0)
    s.probe_vector("m", "gauge", lambda: [9.0, 0.0, 0.0])
    s._sample(0.0)
    skew = s.skew("m")
    assert skew["max"] == 9.0
    assert skew["ratio"] is None


def test_summary_round_trips_and_reports_rollups():
    s = TimeSeriesSampler(cadence_us=1.0)
    s.probe_vector("m", "gauge", lambda: [1.0, 3.0])
    s.probe_gauge("g", None, lambda: 7.0)   # machine-wide probe
    s._sample(0.0)
    s._sample(1.0)
    summary = json.loads(json.dumps(s.summary()))
    m = summary["metrics"]["m"]
    assert m["agg"]["nodes"] == 2
    assert m["agg"]["count"] == 4
    assert m["agg"]["peak"] == 3.0
    assert m["agg"]["peak_node"] == 1
    assert m["top"][0] == [1, 3.0]
    g = summary["metrics"]["g"]
    assert "top" not in g            # no per-node tracks
    assert g["agg"]["nodes"] == 0


# ------------------------------------------------------------ sampled runs

@pytest.fixture(scope="module")
def sampled_water():
    sampler = TimeSeriesSampler(cadence_us=500.0)
    result = run_svm(WaterSpatial(molecules=256, steps=1), GENIMA,
                     telemetry=sampler)
    return sampler, result


def test_run_registers_the_probe_catalog(sampled_water):
    sampler, _ = sampled_water
    metrics = set(sampler.metrics())
    assert {"ni.queue_depth", "net.in_flight", "svm.page_faults",
            "svm.invalidations", "lock.wait_depth",
            "node.interrupts"} <= metrics


def test_run_result_carries_the_summary(sampled_water):
    sampler, result = sampled_water
    assert result.telemetry["samples"] == len(sampler.times)
    assert result.telemetry["metrics"]["svm.page_faults"]["agg"][
        "count"] > 0
    brief = telemetry_brief(result.telemetry)
    assert brief["peak_queue_depth"] > 0
    assert telemetry_brief(None) is None


def test_sampled_summaries_are_run_deterministic(sampled_water):
    sampler, result = sampled_water
    again = TimeSeriesSampler(cadence_us=500.0)
    r2 = run_svm(WaterSpatial(molecules=256, steps=1), GENIMA,
                 telemetry=again)
    assert r2.time_us == result.time_us
    assert json.dumps(again.summary(), sort_keys=True) == \
        json.dumps(sampler.summary(), sort_keys=True)


def test_sampler_cannot_attach_twice(sampled_water):
    sampler, _ = sampled_water
    with pytest.raises(RuntimeError):
        run_svm(WaterSpatial(molecules=64, steps=1), GENIMA,
                telemetry=sampler)


def test_hot_shard_node_tops_the_queue_table():
    """The acceptance scenario: skewed KVStore on a fat-tree — the
    hot shards' home nodes must surface in the top-k queue table."""
    nodes = 16
    config = MachineConfig().scaled(nodes=nodes, procs_per_node=1,
                                    topology="fat-tree")
    params = scale_params("KVStore", nodes)
    sampler = TimeSeriesSampler(cadence_us=500.0)
    run_svm(ShardedKVStore(**params), GENIMA, config=config,
            telemetry=sampler)
    top = sampler.top_nodes("ni.queue_depth", 4)
    # Blocked home mapping: hot shards 0..3 -> pages 0..15 -> the
    # low-numbered nodes (4 pages homed per node at this size).
    hot_homes = set(range(4))
    assert top[0][0] in hot_homes, top
    skew = sampler.skew("ni.queue_depth")
    assert skew["ratio"] is None or skew["ratio"] > 1.5


# ------------------------------------------------------------- OpenMetrics

def test_openmetrics_golden_format():
    snapshot = {
        "svm.page_fetches": 12,
        "nic.0.delivery_latency_us": {
            "count": 2, "total": 30.0, "mean": 15.0,
            "min": 10.0, "max": 20.0, "variance": 50.0,
            "stdev": 7.0710678118654755,
        },
    }
    telemetry = {
        "schema": 1, "samples": 2,
        "metrics": {
            "ni.queue_depth": {
                "kind": "gauge",
                "agg": {"nodes": 2, "count": 4, "mean": 2.0,
                        "stdev": 1.0, "peak": 4.0, "peak_node": 1},
                "hist": {"count": 4, "buckets": [[0.0, 1], [2.0, 2],
                                                 [4.0, 1]]},
                "skew": {"max": 3.0, "median": 1.0, "ratio": 3.0},
            },
        },
    }
    text = render_openmetrics(snapshot=snapshot, telemetry=telemetry)
    assert text == """\
# HELP repro_nic_delivery_latency_us registry stat nic_delivery_latency_us
# TYPE repro_nic_delivery_latency_us summary
repro_nic_delivery_latency_us_count{node="0"} 2
repro_nic_delivery_latency_us_sum{node="0"} 30
# HELP repro_nic_delivery_latency_us_max registry stat nic_delivery_latency_us max
# TYPE repro_nic_delivery_latency_us_max gauge
repro_nic_delivery_latency_us_max{node="0"} 20
# HELP repro_nic_delivery_latency_us_min registry stat nic_delivery_latency_us min
# TYPE repro_nic_delivery_latency_us_min gauge
repro_nic_delivery_latency_us_min{node="0"} 10
# HELP repro_nic_delivery_latency_us_stdev registry stat nic_delivery_latency_us stdev
# TYPE repro_nic_delivery_latency_us_stdev gauge
repro_nic_delivery_latency_us_stdev{node="0"} 7.0710678118654755
# HELP repro_svm_page_fetches registry metric svm_page_fetches
# TYPE repro_svm_page_fetches gauge
repro_svm_page_fetches 12
# HELP repro_ts_ni_queue_depth sampled telemetry ni.queue_depth (gauge, log2 buckets)
# TYPE repro_ts_ni_queue_depth histogram
repro_ts_ni_queue_depth_bucket{le="0"} 1
repro_ts_ni_queue_depth_bucket{le="2"} 3
repro_ts_ni_queue_depth_bucket{le="4"} 4
repro_ts_ni_queue_depth_bucket{le="+Inf"} 4
repro_ts_ni_queue_depth_count 4
repro_ts_ni_queue_depth_sum 8
# HELP repro_ts_ni_queue_depth_peak peak sampled ni.queue_depth (node label = argmax)
# TYPE repro_ts_ni_queue_depth_peak gauge
repro_ts_ni_queue_depth_peak{node="1"} 4
# HELP repro_ts_ni_queue_depth_skew max/median per-node skew of ni.queue_depth
# TYPE repro_ts_ni_queue_depth_skew gauge
repro_ts_ni_queue_depth_skew 3
# EOF
"""


def test_openmetrics_escapes_and_sanitizes():
    text = render_openmetrics(snapshot={'we"ird\\name\n.x': 1})
    assert 'we_ird_name' in text
    assert text.endswith("# EOF\n")
    # NaN for a None skew ratio (maximal skew) stays parseable.
    t = {"metrics": {"m": {"kind": "gauge",
                           "agg": {"nodes": 1, "count": 1, "mean": 0.0,
                                   "stdev": 0.0, "peak": 1.0,
                                   "peak_node": 0},
                           "hist": {"count": 1, "buckets": [[2.0, 1]]},
                           "skew": {"max": 1.0, "median": 0.0,
                                    "ratio": None}}}}
    assert "repro_ts_m_skew NaN" in render_openmetrics(telemetry=t)


def test_openmetrics_is_deterministic(sampled_water):
    sampler, _ = sampled_water
    snap = sampler.machine.metrics.snapshot()
    a = render_openmetrics(snapshot=snap, telemetry=sampler.summary())
    b = render_openmetrics(snapshot=snap, telemetry=sampler.summary())
    assert a == b


# -------------------------------------------------------------- dashboards

def test_sparkline_downsamples_by_max():
    line = sparkline([0.0, 1.0, 0.0, 8.0], width=2)
    assert len(line) == 2
    assert line[1] == "█"
    assert sparkline([], width=8) == ""
    assert sparkline([0.0, 0.0], width=8) == "  "


def test_render_dash_names_hot_nodes(sampled_water):
    sampler, _ = sampled_water
    text = render_dash(sampler, title="t")
    assert "ni.queue_depth" in text
    assert "hot nodes" in text
    assert "skew max/median" in text
    html = render_dash_html(sampler, title="t")
    assert html.startswith("<!doctype html>")
    assert "ni.queue_depth" in html


def test_counter_events_merge_into_chrome_trace(sampled_water):
    sampler, _ = sampled_water
    merged = sampler.merge_chrome_trace([{"ph": "X", "pid": 1}])
    counters = [e for e in merged if e.get("ph") == "C"]
    assert counters and all(e["pid"] == 99 for e in counters)
    assert merged[0] == {"ph": "X", "pid": 1}
    names = {e["name"] for e in counters}
    assert "ni.queue_depth" in names
    json.dumps(merged)


# ----------------------------------------------- cache / parallel plumbing

def test_cell_spec_telemetry_round_trips_through_json():
    cache = ExperimentCache(config=MachineConfig())
    spec = cache.spec_svm("Water-spatial", GENIMA, telemetry_us=500.0,
                          molecules=256, steps=1)
    payload = json.loads(json.dumps(evaluate_cell(spec)))
    result = decode_result(payload["result"])
    assert result.telemetry["samples"] > 0
    assert encode_result(result) == payload["result"]
    # An unsampled spec stays telemetry-free (and keys differently).
    plain = cache.spec_svm("Water-spatial", GENIMA,
                           molecules=256, steps=1)
    assert plain.digest("f" * 16) != spec.digest("f" * 16)
    bare = decode_result(json.loads(json.dumps(
        evaluate_cell(plain)))["result"])
    assert bare.telemetry is None
    assert bare.time_us == result.time_us  # sampling is schedule-free


def test_compute_scale_rows_identical_across_jobs():
    kwargs = dict(app_name="KVStore", node_counts=(4,),
                  topologies=("crossbar",), feature_sets=(GENIMA,),
                  telemetry_us=500.0)
    serial = compute_scale(cache=ExperimentCache(jobs=1), **kwargs)
    pooled = compute_scale(cache=ExperimentCache(jobs=2), **kwargs)
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(pooled, sort_keys=True)
    assert serial[0]["telemetry"]["samples"] > 0


def test_compute_scale_without_telemetry_has_no_digest():
    rows = compute_scale(app_name="KVStore", node_counts=(4,),
                         topologies=("crossbar",),
                         feature_sets=(GENIMA,),
                         cache=ExperimentCache(jobs=1),
                         telemetry_us=None)
    assert rows[0]["telemetry"] is None
