"""Integration tests for the HLRC/GeNIMA protocol engine."""

import pytest

from repro.hw import Machine, MachineConfig
from repro.svm import (BASE, DW, DW_RF, DW_RF_DD, GENIMA, HLRCProtocol,
                       PROTOCOL_LADDER, PageAccess, ProtocolFeatures)


def make(feats, **cfg_overrides):
    cfg = MachineConfig(**cfg_overrides) if cfg_overrides else MachineConfig()
    machine = Machine(cfg)
    proto = HLRCProtocol(machine, feats)
    return machine, proto


def run_workers(machine, workers):
    finished = []

    def wrap(gen, tag):
        yield from gen
        finished.append(tag)

    for i, gen in enumerate(workers):
        machine.sim.process(wrap(gen, i), name=f"w{i}")
    machine.run()
    assert len(finished) == len(workers), "some workers did not finish"
    return machine.sim.now


# ----------------------------------------------------------------- features

def test_feature_names():
    assert BASE.name == "Base"
    assert DW.name == "DW"
    assert DW_RF.name == "DW+RF"
    assert DW_RF_DD.name == "DW+RF+DD"
    assert GENIMA.name == "GeNIMA"
    assert GENIMA.interrupt_free and not DW_RF_DD.interrupt_free


def test_direct_diffs_require_remote_fetch():
    with pytest.raises(ValueError):
        ProtocolFeatures(direct_diffs=True)


def test_ladder_is_cumulative():
    for earlier, later in zip(PROTOCOL_LADDER, PROTOCOL_LADDER[1:]):
        for flag in ("direct_writes", "remote_fetch", "direct_diffs",
                     "ni_locks"):
            assert getattr(later, flag) >= getattr(earlier, flag)


# -------------------------------------------------------------- basic ops

def test_local_read_at_home_is_cheap():
    machine, proto = make(BASE)
    region = proto.allocate("a", 8, home_policy="node:0")
    times = []

    def worker():
        yield from proto.read(0, region, [0, 1, 2])
        times.append(machine.sim.now)

    run_workers(machine, [worker()])
    # three local faults: page fault + protocol op + mprotect each
    assert times[0] < 100.0
    assert proto.page_fetches == 0


def test_remote_read_base_uses_interrupts():
    machine, proto = make(BASE)
    region = proto.allocate("a", 8, home_policy="node:1")

    def worker():
        yield from proto.read(0, region, [0])

    run_workers(machine, [worker()])
    assert proto.page_fetches == 1
    assert machine.nodes[1].interrupts_taken == 1
    # ~200us uncontended in the paper
    assert 120.0 < proto.buckets[0].data < 300.0


def test_remote_read_rf_avoids_interrupts_and_is_faster():
    t = {}
    for feats in (BASE, DW_RF):
        machine, proto = make(feats)
        region = proto.allocate("a", 8, home_policy="node:1")

        def worker():
            yield from proto.read(0, region, [0])

        run_workers(machine, [worker()])
        t[feats.name] = proto.buckets[0].data
        if feats is DW_RF:
            assert machine.nodes[1].interrupts_taken == 0
    # paper: ~110us vs ~200us
    assert t["DW+RF"] < 0.75 * t["Base"]


def test_same_node_processes_share_fetched_page():
    machine, proto = make(BASE)
    region = proto.allocate("a", 4, home_policy="node:1")

    def first():
        yield from proto.read(0, region, [0])

    def second():
        yield machine.sim.timeout(5.0)
        yield from proto.read(1, region, [0])  # rank 1: same node

    run_workers(machine, [first(), second()])
    assert proto.page_fetches == 1  # in-flight fetch shared


def test_write_to_invalid_page_fetches_then_twins():
    machine, proto = make(GENIMA)
    region = proto.allocate("a", 4, home_policy="node:1")

    def worker():
        yield from proto.write(0, region, [0], runs_per_page=2,
                               bytes_per_page=128)

    run_workers(machine, [worker()])
    assert proto.page_fetches == 1
    table = proto.tables[0]
    assert table.access(region.gid(0)) is PageAccess.WRITE
    assert region.gid(0) in table.dirty_pages


# ------------------------------------------------------ coherence end-to-end

def coherence_workload(proto, region, readers_value):
    """Writer updates page 0 under a lock; reader later locks and reads."""

    def writer():
        yield from proto.lock(0, 0)
        yield from proto.write(0, region, [0], runs_per_page=1,
                               bytes_per_page=256)
        yield from proto.unlock(0, 0)

    def reader():
        yield proto.sim.timeout(2000.0)
        yield from proto.lock(4, 0)  # rank 4 = node 1
        yield from proto.read(4, region, [0])
        readers_value.append(proto.sim.now)
        yield from proto.unlock(4, 0)

    return [writer(), reader()]


@pytest.mark.parametrize("feats", PROTOCOL_LADDER,
                         ids=lambda f: f.name)
def test_release_acquire_invalidates_and_refetches(feats):
    machine, proto = make(feats)
    region = proto.allocate("a", 4, home_policy="node:2")
    seen = []

    # Prime the reader's node with a valid copy first.
    def prime():
        yield from proto.read(4, region, [0])

    run_list = [prime()]
    run_list += coherence_workload(proto, region, seen)
    run_workers(machine, run_list)
    # The reader's node invalidated its copy at the acquire and had to
    # refetch: at least 2 fetches from node 1 plus the version check.
    gid = region.gid(0)
    needed = proto.tables[1].needed_versions(gid)
    assert needed.get(0, 0) >= 1  # saw writer's interval
    hp = proto._homes[gid]
    assert hp.applied.get(0, 0) >= 1  # diff reached the home
    assert proto.tables[1].access(gid) is not PageAccess.INVALID


def test_acquire_waits_for_eager_write_notices():
    """DW: the grant can outrun the broadcast write notices; the
    acquirer must wait on the interval flags before applying."""
    machine, proto = make(GENIMA)
    region = proto.allocate("a", 4, home_policy="node:3")
    order = []

    def writer():
        yield from proto.lock(0, 7)
        yield from proto.write(0, region, [1], runs_per_page=1,
                               bytes_per_page=64)
        yield from proto.unlock(0, 7)
        order.append("released")

    def reader():
        yield machine.sim.timeout(500.0)
        yield from proto.lock(12, 7)
        order.append("acquired")
        yield from proto.unlock(12, 7)

    run_workers(machine, [writer(), reader()])
    assert order == ["released", "acquired"]
    # the reader's node received and recorded the notice
    assert proto.wn_received[3][0] >= 1


def test_fetch_retry_on_stale_home_copy():
    """RF: if the page is fetched while the diff is still in flight the
    snapshot check fails and the requester retries (Section 2)."""
    machine, proto = make(DW_RF, diff_pack_per_kb_us=4000.0)
    # enormous pack cost delays the diff's arrival at the home
    region = proto.allocate("a", 4, home_policy="node:2")

    def writer():
        yield from proto.lock(0, 0)
        yield from proto.write(0, region, [0], runs_per_page=1,
                               bytes_per_page=1024)
        yield from proto.unlock(0, 0)

    def reader():
        yield machine.sim.timeout(100.0)
        yield from proto.lock(4, 0)
        yield from proto.read(4, region, [0])
        yield from proto.unlock(4, 0)

    run_workers(machine, [writer(), reader()])
    assert proto.fetch_retries > 0


# ------------------------------------------------------------- diff modes

def diffy_workload(proto, region):
    def writer(rank):
        yield from proto.write(rank, region, [rank], runs_per_page=10,
                               bytes_per_page=400)
        yield from proto.barrier(rank)

    return [writer(r) for r in range(proto.config.total_procs)]


def test_packed_diffs_one_message_per_page():
    machine, proto = make(DW_RF)
    region = proto.allocate("a", 16, home_policy="custom",
                            home_fn=lambda i: (i // 4 + 1) % 4)
    run_workers(machine, diffy_workload(proto, region))
    assert proto.diffs_sent == 16  # every page homes remotely
    assert proto.diff_runs_sent == 0


def test_direct_diffs_one_message_per_run():
    machine, proto = make(GENIMA)
    region = proto.allocate("a", 16, home_policy="custom",
                            home_fn=lambda i: (i // 4 + 1) % 4)
    run_workers(machine, diffy_workload(proto, region))
    assert proto.diffs_sent == 0
    assert proto.diff_runs_sent == 16 * 10  # 10 runs per remote page


def test_direct_diffs_do_not_interrupt_the_home():
    machine, proto = make(GENIMA)
    region = proto.allocate("a", 4, home_policy="node:1")

    def writer():
        yield from proto.write(0, region, [0], runs_per_page=4,
                               bytes_per_page=256)
        yield from proto.lock(0, 0)
        yield from proto.unlock(0, 0)
        yield from proto.barrier(0)

    def others(rank):
        yield from proto.barrier(rank)

    run_workers(machine, [writer()] + [others(r) for r in range(1, 16)])
    assert machine.nodes[1].interrupts_taken == 0
    gid = region.gid(0)
    assert proto._homes[gid].applied.get(0, 0) >= 1


def test_hybrid_skip_for_same_node_waiter():
    """GeNIMA: when the NI shows the next waiter on the same node, the
    release skips diff computation entirely."""
    machine, proto = make(GENIMA)
    region = proto.allocate("a", 4, home_policy="node:2")
    flushed_runs = []

    def holder():
        yield from proto.lock(0, 5)
        yield from proto.write(0, region, [0], runs_per_page=3,
                               bytes_per_page=96)
        # wait long enough for the same-node waiter's forward to arrive
        yield machine.sim.timeout(300.0)
        yield from proto.unlock(0, 5)
        flushed_runs.append(proto.diff_runs_sent)

    def waiter():
        yield machine.sim.timeout(50.0)
        yield from proto.lock(1, 5)  # rank 1: same node as rank 0
        yield from proto.unlock(1, 5)

    run_workers(machine, [holder(), waiter()])
    assert flushed_runs[0] == 0  # no diffs computed at the release


# -------------------------------------------------------------- interrupts

def ladder_workload(proto):
    region = proto.allocate("w", 32, home_policy="round_robin")

    def worker(rank):
        for it in range(2):
            yield from proto.compute(rank, 50.0)
            yield from proto.read(rank, region,
                                  [(rank + k + it) % 32 for k in range(3)])
            yield from proto.write(rank, region, [(rank + it) % 32],
                                   runs_per_page=2, bytes_per_page=128)
            yield from proto.lock(rank, rank % 4)
            yield from proto.unlock(rank, rank % 4)
            yield from proto.barrier(rank)

    return [worker(r) for r in range(proto.config.total_procs)]


def test_genima_is_interrupt_free():
    machine, proto = make(GENIMA)
    run_workers(machine, ladder_workload(proto))
    assert proto.total_interrupts == 0


def test_base_takes_many_interrupts():
    machine, proto = make(BASE)
    run_workers(machine, ladder_workload(proto))
    assert proto.total_interrupts > 50


def test_interrupts_fall_monotonically_along_ladder():
    counts = []
    for feats in PROTOCOL_LADDER:
        machine, proto = make(feats)
        run_workers(machine, ladder_workload(proto))
        counts.append(proto.total_interrupts)
    assert counts[0] > counts[2] > counts[4] == 0
    assert all(a >= b for a, b in zip(counts, counts[1:]))


# ----------------------------------------------------------------- barriers

def test_barrier_blocks_until_all_arrive():
    machine, proto = make(GENIMA)
    release_times = []

    def worker(rank, delay):
        yield machine.sim.timeout(delay)
        yield from proto.barrier(rank)
        release_times.append(machine.sim.now)

    workers = [worker(r, 10.0 * r) for r in range(16)]
    run_workers(machine, workers)
    # nobody leaves before the last arrival at t=150
    assert min(release_times) >= 150.0
    # everyone leaves within a short window of each other
    assert max(release_times) - min(release_times) < 120.0


def test_barrier_reusable_across_phases():
    machine, proto = make(BASE)
    log = []

    def worker(rank):
        for phase in range(3):
            yield from proto.compute(rank, 10.0 * (rank + 1))
            yield from proto.barrier(rank)
            log.append((phase, rank))

    run_workers(machine, [worker(r) for r in range(16)])
    # all of phase k completes before any of phase k+1
    phases = [p for p, _r in log]
    assert phases == sorted(phases)
    assert proto.barriers.crossings == 3


def test_barrier_propagates_writes_between_phases():
    machine, proto = make(GENIMA)
    region = proto.allocate("a", 8, home_policy="node:0")

    def writer():
        yield from proto.write(12, region, [3], runs_per_page=1,
                               bytes_per_page=64)
        yield from proto.barrier(12)

    def reader(rank):
        yield from proto.barrier(rank)
        if rank == 0:
            yield from proto.read(0, region, [3])

    run_workers(machine,
                [writer()] + [reader(r) for r in range(12)]
                + [reader(r) for r in range(13, 16)])
    gid = region.gid(3)
    # reader's node 0 is the home: it recorded the needed version and
    # the diff arrived before the read completed.
    assert proto._homes[gid].applied.get(3, 0) == 1


def test_barrier_protocol_time_recorded():
    machine, proto = make(GENIMA)
    region = proto.allocate("a", 16, home_policy="round_robin")

    def worker(rank):
        yield from proto.write(rank, region, [rank % 16],
                               runs_per_page=1, bytes_per_page=256)
        yield from proto.barrier(rank)

    run_workers(machine, [worker(r) for r in range(16)])
    assert sum(proto.barrier_protocol_us) > 0


# ------------------------------------------------------------------ locks

@pytest.mark.parametrize("feats", [BASE, GENIMA], ids=lambda f: f.name)
def test_protocol_lock_mutual_exclusion(feats):
    machine, proto = make(feats)
    inside = [0]
    max_inside = [0]

    def worker(rank):
        yield machine.sim.timeout(float(rank))
        yield from proto.lock(rank, 9)
        inside[0] += 1
        max_inside[0] = max(max_inside[0], inside[0])
        yield from proto.compute(rank, 20.0)
        inside[0] -= 1
        yield from proto.unlock(rank, 9)

    run_workers(machine, [worker(r) for r in range(16)])
    assert max_inside[0] == 1


def test_base_local_reacquire_is_fast():
    machine, proto = make(BASE)
    t = []

    def worker():
        yield from proto.lock(0, 3)
        yield from proto.unlock(0, 3)
        t0 = machine.sim.now
        yield from proto.lock(0, 3)
        t.append(machine.sim.now - t0)
        yield from proto.unlock(0, 3)

    run_workers(machine, [worker()])
    assert t[0] < 10.0
    assert proto.svm_locks.local_fast_acquires >= 1


def test_flag_sync_charges_acqrel_bucket():
    machine, proto = make(GENIMA)

    def producer():
        yield from proto.release_flag(0, 1)

    def consumer():
        yield machine.sim.timeout(10.0)
        yield from proto.acquire_flag(4, 1)

    run_workers(machine, [producer(), consumer()])
    assert proto.buckets[4].acqrel > 0
    assert proto.buckets[4].lock == 0


# --------------------------------------------------------------- accounting

def test_buckets_account_for_all_elapsed_time():
    machine, proto = make(GENIMA)
    region = proto.allocate("a", 16, home_policy="round_robin")
    end = []

    def worker(rank):
        yield from proto.compute(rank, 100.0)
        yield from proto.read(rank, region, [(rank + 1) % 16])
        yield from proto.write(rank, region, [rank % 16],
                               runs_per_page=1, bytes_per_page=64)
        yield from proto.lock(rank, 0)
        yield from proto.unlock(rank, 0)
        yield from proto.barrier(rank)
        end.append((rank, machine.sim.now))

    run_workers(machine, [worker(r) for r in range(16)])
    for rank, t_end in end:
        total = proto.buckets[rank].total
        assert total == pytest.approx(t_end, rel=0.02), rank
