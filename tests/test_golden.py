"""Golden regression guards on headline numbers.

Loose bands around the currently-calibrated results; a change that
moves these likely recalibrates the whole reproduction and should be
made deliberately (then update these bands and EXPERIMENTS.md).

The pinned-hash tests at the bottom are exact: the default (crossbar)
configuration must produce byte-identical traces to the pre-topology
simulator.  Any intentional recalibration must update the pins.
"""

import hashlib

import pytest

from repro import BASE, GENIMA, run_sequential, run_svm, speedup
from repro.apps import BarnesSpatial, WaterNsquared, WaterSpatial
from repro.sim import Tracer


def test_water_spatial_genima_speedup_band():
    seq = run_sequential(WaterSpatial())
    result = run_svm(WaterSpatial(), GENIMA)
    assert speedup(seq, result) == pytest.approx(9.9, rel=0.15)


def test_water_nsquared_improvement_band():
    seq = run_sequential(WaterNsquared(molecules=512, steps=1))
    base = run_svm(WaterNsquared(molecules=512, steps=1), BASE)
    genima = run_svm(WaterNsquared(molecules=512, steps=1), GENIMA)
    gain = base.time_us / genima.time_us - 1.0
    # NI locks buy a substantial fraction on the lock-heavy app
    assert 0.3 < gain < 2.0, gain


def test_sequential_times_are_stable():
    seq = run_sequential(WaterSpatial())
    assert seq.time_us == pytest.approx(426_000, rel=0.05)


# ------------------------------------------------- span-trace determinism

def _spanned_run(spans=True):
    tracer = Tracer(capacity=None)
    result = run_svm(BarnesSpatial(), GENIMA, tracer=tracer, spans=spans)
    return tracer, result


def test_spanned_trace_is_byte_identical_across_runs():
    tr1, r1 = _spanned_run()
    tr2, r2 = _spanned_run()
    assert r1.time_us == r2.time_us
    assert tr1.to_jsonl() == tr2.to_jsonl()


#: (app, features, spanned-trace sha256, completion time) captured on
#: the default crossbar config before the topology layer landed.
GOLDEN_PINS = [
    (WaterSpatial, BASE,
     "1442d9ae70de2d3504aef26b2f006bedd6b2afe6f1e42784cb3e054e14afd266",
     51455.38932828744),
    (BarnesSpatial, GENIMA,
     "57cedce95fcabb5399b87905ddb5a6efc0135092f126c3fa1784dc495d3dc4e8",
     54653.601676691804),
]


@pytest.mark.parametrize("app_cls,features,sha,time_us", GOLDEN_PINS,
                         ids=["water-base", "barnes-genima"])
def test_default_crossbar_traces_byte_identical_to_pre_topology(
        app_cls, features, sha, time_us):
    tracer = Tracer(capacity=None)
    result = run_svm(app_cls(), features, tracer=tracer, spans=True)
    assert result.time_us == time_us
    digest = hashlib.sha256(tracer.to_jsonl().encode()).hexdigest()
    assert digest == sha


@pytest.mark.parametrize("app_cls,features,sha,time_us", GOLDEN_PINS,
                         ids=["water-base", "barnes-genima"])
def test_telemetry_sampling_does_not_perturb_the_schedule(
        app_cls, features, sha, time_us):
    """A TimeSeriesSampler (no tracer) rides slice hooks only: the
    sampled run's trace and completion time must still match the
    golden pins byte-for-byte."""
    from repro.obs import TimeSeriesSampler
    tracer = Tracer(capacity=None)
    sampler = TimeSeriesSampler(cadence_us=500.0)
    result = run_svm(app_cls(), features, tracer=tracer, spans=True,
                     telemetry=sampler)
    assert result.time_us == time_us
    digest = hashlib.sha256(tracer.to_jsonl().encode()).hexdigest()
    assert digest == sha
    assert result.telemetry["samples"] > 0


def test_spans_do_not_perturb_the_schedule():
    """Arming spans adds span.* records but changes nothing else:
    the non-span event stream and the run result stay identical."""
    tr_off, r_off = _spanned_run(spans=False)
    tr_on, r_on = _spanned_run(spans=True)
    assert r_on.time_us == r_off.time_us
    assert not [e for e in tr_off.events
                if e.category.startswith("span.")]
    span_count = 0
    base = [(e.t, e.category, e.fields) for e in tr_off.events]
    kept = []
    for e in tr_on.events:
        if e.category.startswith("span."):
            span_count += 1
        else:
            kept.append((e.t, e.category, e.fields))
    assert span_count > 0
    assert kept == base
