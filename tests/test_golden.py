"""Golden regression guards on headline numbers.

Loose bands around the currently-calibrated results; a change that
moves these likely recalibrates the whole reproduction and should be
made deliberately (then update these bands and EXPERIMENTS.md).
"""

import pytest

from repro import BASE, GENIMA, run_sequential, run_svm, speedup
from repro.apps import WaterNsquared, WaterSpatial


def test_water_spatial_genima_speedup_band():
    seq = run_sequential(WaterSpatial())
    result = run_svm(WaterSpatial(), GENIMA)
    assert speedup(seq, result) == pytest.approx(9.9, rel=0.15)


def test_water_nsquared_improvement_band():
    seq = run_sequential(WaterNsquared(molecules=512, steps=1))
    base = run_svm(WaterNsquared(molecules=512, steps=1), BASE)
    genima = run_svm(WaterNsquared(molecules=512, steps=1), GENIMA)
    gain = base.time_us / genima.time_us - 1.0
    # NI locks buy a substantial fraction on the lock-heavy app
    assert 0.3 < gain < 2.0, gain


def test_sequential_times_are_stable():
    seq = run_sequential(WaterSpatial())
    assert seq.time_us == pytest.approx(426_000, rel=0.05)
