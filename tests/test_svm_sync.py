"""Deeper tests of SVM synchronization: interrupt locks, NI locks under
randomized schedules (hypothesis), barriers, flags."""

from hypothesis import given, settings, strategies as st

from repro.hw import Machine, MachineConfig
from repro.svm import BASE, GENIMA, HLRCProtocol
from repro.vmmc import NILockManager, VMMC


def make(feats):
    machine = Machine(MachineConfig())
    return machine, HLRCProtocol(machine, feats)


def run_all(machine, gens):
    done = []

    def wrap(g, i):
        yield from g
        done.append(i)

    for i, g in enumerate(gens):
        machine.sim.process(wrap(g, i))
    machine.run()
    assert len(done) == len(gens)


# ------------------------------------------------- randomized lock schedules

schedules = st.lists(
    st.tuples(st.integers(0, 15),        # rank
              st.integers(0, 3),         # lock id
              st.integers(0, 500),       # start delay (us)
              st.integers(1, 80)),       # hold time (us)
    min_size=1, max_size=24)


@settings(max_examples=25, deadline=None)
@given(schedules)
def test_interrupt_locks_mutual_exclusion_random(schedule):
    machine, proto = make(BASE)
    inside = {}
    worst = {}

    def worker(rank, lock_id, start, hold):
        yield machine.sim.timeout(float(start))
        yield from proto.lock(rank, lock_id)
        inside[lock_id] = inside.get(lock_id, 0) + 1
        worst[lock_id] = max(worst.get(lock_id, 0), inside[lock_id])
        yield machine.sim.timeout(float(hold))
        inside[lock_id] -= 1
        yield from proto.unlock(rank, lock_id)

    run_all(machine, [worker(*item) for item in schedule])
    assert all(v == 1 for v in worst.values())


@settings(max_examples=25, deadline=None)
@given(schedules)
def test_ni_locks_mutual_exclusion_random(schedule):
    machine, proto = make(GENIMA)
    inside = {}
    worst = {}

    def worker(rank, lock_id, start, hold):
        yield machine.sim.timeout(float(start))
        yield from proto.lock(rank, lock_id)
        inside[lock_id] = inside.get(lock_id, 0) + 1
        worst[lock_id] = max(worst.get(lock_id, 0), inside[lock_id])
        yield machine.sim.timeout(float(hold))
        inside[lock_id] -= 1
        yield from proto.unlock(rank, lock_id)

    run_all(machine, [worker(*item) for item in schedule])
    assert all(v == 1 for v in worst.values())


@settings(max_examples=15, deadline=None)
@given(schedules)
def test_locks_never_starve_random(schedule):
    """Every acquire eventually succeeds (run_all asserts completion)."""
    machine, proto = make(GENIMA)

    def worker(rank, lock_id, start, hold):
        yield machine.sim.timeout(float(start))
        yield from proto.lock(rank, lock_id)
        yield machine.sim.timeout(float(hold))
        yield from proto.unlock(rank, lock_id)
        # and a second round through the same lock
        yield from proto.lock(rank, lock_id)
        yield from proto.unlock(rank, lock_id)

    run_all(machine, [worker(*item) for item in schedule])


# --------------------------------------------------------- NI lock details

def test_ni_lock_grant_carries_latest_release_ts():
    machine = Machine(MachineConfig())
    vmmc = VMMC(machine)
    lm = NILockManager(vmmc, num_locks=4)
    sim = machine.sim
    seen = []

    def chain():
        ts = yield from lm.acquire(0, 0)
        seen.append(ts)
        yield from lm.release(0, 0, ts="A")
        ts = yield from lm.acquire(1, 0)
        seen.append(ts)
        yield from lm.release(1, 0, ts="B")
        ts = yield from lm.acquire(2, 0)
        seen.append(ts)
        yield from lm.release(2, 0, ts="C")

    sim.process(chain())
    sim.run()
    assert seen == [None, "A", "B"]


def test_ni_lock_local_regrant_skips_network():
    machine = Machine(MachineConfig())
    vmmc = VMMC(machine)
    lm = NILockManager(vmmc, num_locks=4)
    sim = machine.sim

    def worker():
        for _ in range(5):
            yield from lm.acquire(2, 1)
            yield from lm.release(2, 1)

    sim.process(worker())
    sim.run()
    # first acquire goes through the home; the rest are local regrants
    assert lm.local_grants >= 4
    carried = machine.network.packets_carried
    assert carried <= 3


# -------------------------------------------------------------------- flags

def test_flag_versions_accumulate():
    machine, proto = make(GENIMA)
    order = []

    def producer():
        for i in range(3):
            yield machine.sim.timeout(100.0)
            yield from proto.release_flag(0, 5)

    def consumer():
        for i in range(3):
            yield from proto.acquire_flag(12, 5)
            order.append(machine.sim.now)

    run_all(machine, [producer(), consumer()])
    assert len(order) == 3
    assert order == sorted(order)
    assert order[0] >= 100.0


def test_flag_release_before_acquire_is_not_lost():
    machine, proto = make(BASE)
    got = []

    def producer():
        yield from proto.release_flag(0, 9)

    def late_consumer():
        yield machine.sim.timeout(500.0)
        yield from proto.acquire_flag(8, 9)
        got.append(machine.sim.now)

    run_all(machine, [producer(), late_consumer()])
    assert got and got[0] >= 500.0


def test_flag_carries_consistency():
    """Data written before release_flag is visible (home current)
    after acquire_flag — the release semantics of flags."""
    machine, proto = make(BASE)
    region = proto.allocate("f", 4, home_policy="node:3")

    def producer():
        yield from proto.write(0, region, [1], runs_per_page=1,
                               bytes_per_page=64)
        yield from proto.release_flag(0, 2)

    def consumer():
        yield from proto.acquire_flag(8, 2)
        yield from proto.read(8, region, [1])

    run_all(machine, [producer(), consumer()])
    gid = region.gid(1)
    assert proto._homes[gid].applied.get(0, 0) >= 1
    assert proto.tables[2].needed_versions(gid).get(0, 0) >= 1


# ------------------------------------------------------------------ barriers

def test_barrier_interleaves_with_locks_without_deadlock():
    machine, proto = make(BASE)
    region = proto.allocate("b", 8, home_policy="round_robin")

    def worker(rank):
        for it in range(3):
            yield from proto.lock(rank, it % 2)
            yield from proto.write(rank, region, [(rank + it) % 8],
                                   runs_per_page=1, bytes_per_page=64)
            yield from proto.unlock(rank, it % 2)
            yield from proto.barrier(rank)

    run_all(machine, [worker(r) for r in range(16)])
    assert proto.barriers.crossings == 3


def test_barrier_episode_cleanup():
    machine, proto = make(GENIMA)

    def worker(rank):
        for _ in range(5):
            yield from proto.barrier(rank)

    run_all(machine, [worker(r) for r in range(16)])
    assert proto.barriers._episodes == {}
    assert proto.barriers.crossings == 5


def test_barrier_global_clock_covers_all_closed_intervals():
    machine, proto = make(GENIMA)
    region = proto.allocate("c", 16, home_policy="round_robin")

    def worker(rank):
        yield from proto.write(rank, region, [rank % 16],
                               runs_per_page=1, bytes_per_page=32)
        yield from proto.barrier(rank)

    run_all(machine, [worker(r) for r in range(16)])
    # after the barrier every node's clock covers every closed interval
    for node in range(4):
        for writer in range(4):
            assert proto.node_clock[node][writer] \
                == proto.interval_log.current_index(writer)
