"""Whole-program static analyzer: golden fixture findings, baseline
round-trip, SARIF structure, CLI exit codes, and the self-check that
the shipped tree is clean modulo the committed baseline."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.static import (
    Baseline,
    analyze_paths,
    analyze_project,
    finding_key,
    rule_descriptions,
    to_sarif,
)
from repro.analysis.lint import LintViolation

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "static_fixtures"


def run_cli(*argv, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        cwd=cwd, capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})


def findings(pkg, family=None):
    report = analyze_project(FIXTURES / pkg)
    out = report.violations
    if family:
        out = [v for v in out if v.family == family]
    return out


# ------------------------------------------------------------ golden: PROTO


def test_proto_fixture_findings():
    got = {(v.rule, Path(v.path).name) for v in findings("protopkg")}
    assert got == {
        ("PROTO001", "wire.py"),     # evict_req: no fw handler
        ("PROTO002", "nic.py"),      # ghost_op: unreachable handler
        ("PROTO003", "wire.py"),     # drain_req: declared, unregistered
        ("PROTO004", "wire.py"),     # lock_op constructed host-delivered
        ("PROTO005", "wire.py"),     # stats_blob never consumed
    }


def test_proto_messages_name_the_kind():
    by_rule = {v.rule: v.message for v in findings("protopkg")}
    assert "'evict_req'" in by_rule["PROTO001"]
    assert "'ghost_op'" in by_rule["PROTO002"]
    assert "'drain_req'" in by_rule["PROTO003"]
    assert "'lock_op'" in by_rule["PROTO004"]
    assert "'stats_blob'" in by_rule["PROTO005"]


# -------------------------------------------------------------- golden: TRC


def test_trc_fixture_findings():
    got = sorted((v.rule, v.symbol) for v in findings("trcpkg"))
    assert got == [
        ("TRC001", "GuardedEmitter.unknown_category"),
        ("TRC002", "GuardedEmitter.extra_field"),
        ("TRC002", "GuardedEmitter.missing_field"),
        ("TRC003", "GuardedEmitter.unguarded"),
    ]


def test_trc_guard_and_mandatory_are_clean():
    clean = {"GuardedEmitter.ok", "GuardedEmitter.variadic_ok",
             "GuardedEmitter.guarded_direct", "GuardedEmitter._trace",
             "MandatoryEmitter.emit"}
    flagged = {v.symbol for v in findings("trcpkg")}
    assert not (clean & flagged)


# -------------------------------------------------------------- golden: FPR


def test_fpr_fixture_findings():
    got = sorted((v.rule, Path(v.path).name) for v in findings("fprpkg"))
    assert got == [("FPR001", "tables.py"), ("FPR002", "cachegrid.py")]
    msgs = {v.rule: v.message for v in findings("fprpkg")}
    assert "fprpkg.render.tables" in msgs["FPR001"]
    assert "'ghostdir'" in msgs["FPR002"]


def test_fpr_real_tree_has_no_gaps():
    """Every module evaluate_cell can reach is fingerprinted."""
    report = analyze_project(REPO / "src" / "repro", package="repro")
    assert [v for v in report.violations if v.family == "FPR"] == []


def test_fingerprint_modules_exist():
    from repro.runtime.parallel import (FINGERPRINT_DIRS,
                                        FINGERPRINT_MODULES)
    root = REPO / "src" / "repro"
    for d in FINGERPRINT_DIRS:
        assert (root / d).is_dir(), d
    for m in FINGERPRINT_MODULES:
        assert (root / m).is_file(), m


# ------------------------------------------------------------- golden: RACE


def test_race_fixture_findings():
    got = sorted((v.rule, v.symbol) for v in findings("racepkg"))
    assert got == [("RACE001", "Machine.handle"), ("RACE002", "leaky")]


def test_race_allowed_contexts_are_clean():
    flagged = {v.symbol for v in findings("racepkg")}
    assert "Machine.__init__" not in flagged      # construction wiring
    assert "Machine.rebind" not in flagged        # rebinding a reference
    assert "Network.absorb" not in flagged        # own method


# ------------------------------------------------------------- suppressions


def test_noqa_suppresses_exact_rule_and_family(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "import time\n"
        "def a():\n"
        "    return time.time()  # repro: noqa[wall-clock]\n"
        "def b():\n"
        "    return time.time()  # repro: noqa[WALL-CLOCK]\n"
        "def c():\n"
        "    return time.time()\n")
    report = analyze_project(pkg)
    assert [v.symbol for v in report.violations] == ["c"]
    assert sorted(v.symbol for v in report.suppressed) == ["a", "b"]


def test_noqa_family_prefix_matches_numbered_rules(tmp_path):
    src = FIXTURES / "racepkg" / "proto.py"
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "shared.py").write_text(
        (FIXTURES / "racepkg" / "shared.py").read_text())
    text = src.read_text().replace(
        "self.network.inflight = 0",
        "self.network.inflight = 0  # repro: noqa[RACE]")
    (pkg / "proto.py").write_text(text)
    report = analyze_project(pkg)
    assert [v.rule for v in report.violations] == ["RACE002"]
    assert [v.rule for v in report.suppressed] == ["RACE001"]


# ----------------------------------------------------------------- baseline


def _violation(rule="PROTO005", path="svm/protocol.py",
               symbol="X.migrate", line=10):
    return LintViolation(path=path, line=line, col=0, rule=rule,
                         message="m", symbol=symbol)


def test_baseline_split_is_line_tolerant(tmp_path):
    root = tmp_path
    v1 = _violation(line=10)
    baseline = Baseline().updated([v1], root)
    moved = _violation(line=99)        # same rule+path+symbol
    new, accepted = baseline.split([moved], root)
    assert new == [] and accepted == [moved]


def test_baseline_count_budget(tmp_path):
    root = tmp_path
    baseline = Baseline().updated([_violation()], root)
    dup = [_violation(line=1), _violation(line=2)]
    new, accepted = baseline.split(dup, root)
    assert len(accepted) == 1 and len(new) == 1


def test_baseline_add_expire_roundtrip(tmp_path):
    root = tmp_path
    old = Baseline().updated([_violation(), _violation(rule="TRC001",
                                                       symbol="Y.f")],
                             root)
    for entry in old.entries.values():
        entry.justification = "because"
    # TRC001 finding disappears; a RACE001 finding appears.
    current = [_violation(), _violation(rule="RACE001", symbol="Z.g")]
    assert old.stale_keys(current, root) == [
        ("TRC001", "svm/protocol.py", "Y.f")]
    updated = old.updated(current, root)
    keys = sorted(k[0] for k in updated.entries)
    assert keys == ["PROTO005", "RACE001"]
    kept = updated.entries[("PROTO005", "svm/protocol.py", "X.migrate")]
    assert kept.justification == "because"    # survives the rewrite
    fresh = updated.entries[("RACE001", "svm/protocol.py", "Z.g")]
    assert fresh.justification == "TODO"      # needs a human reason
    # dump/load round-trip preserves everything
    path = tmp_path / "bl.json"
    updated.dump(path)
    loaded = Baseline.load(path)
    assert {k: (e.count, e.justification)
            for k, e in loaded.entries.items()} == \
           {k: (e.count, e.justification)
            for k, e in updated.entries.items()}


def test_baseline_rejects_unknown_format(tmp_path):
    path = tmp_path / "bl.json"
    path.write_text(json.dumps({"format": "nope", "findings": []}))
    with pytest.raises(ValueError):
        Baseline.load(path)


# -------------------------------------------------------------------- SARIF


def test_sarif_structure():
    root = FIXTURES / "protopkg"
    report = analyze_project(root)
    new, baselined = report.violations[:3], report.violations[3:]
    sarif = to_sarif(new, baselined, root, rule_descriptions())
    assert sarif["version"] == "2.1.0"
    assert sarif["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = sarif["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {r["id"] for r in driver["rules"]}
    results = run["results"]
    assert len(results) == len(new) + len(baselined)
    for result in results:
        assert result["ruleId"] in rule_ids
        (loc,) = result["locations"]
        phys = loc["physicalLocation"]
        assert phys["artifactLocation"]["uriBaseId"] == "SRCROOT"
        assert not Path(phys["artifactLocation"]["uri"]).is_absolute()
        assert phys["region"]["startLine"] >= 1
        assert phys["region"]["startColumn"] >= 1
    suppressed = [r for r in results if "suppressions" in r]
    assert len(suppressed) == len(baselined)
    assert all(s["suppressions"] == [{"kind": "external"}]
               for s in suppressed)
    assert run["originalUriBaseIds"]["SRCROOT"]["uri"].endswith("/")
    json.dumps(sarif)      # fully serializable


# ----------------------------------------------------------------- CLI


def test_cli_clean_modulo_baseline():
    """Self-check: the shipped tree has no findings beyond the
    committed lint-baseline.json."""
    proc = run_cli()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "lint clean" in proc.stdout
    assert "baselined" in proc.stdout


def test_cli_fixture_violations_exit_1():
    for pkg in ("protopkg", "trcpkg", "fprpkg", "racepkg"):
        proc = run_cli("--package-root",
                       str(FIXTURES / pkg))
        assert proc.returncode == 1, (pkg, proc.stdout, proc.stderr)
        assert "lint violation" in proc.stdout


def test_cli_parse_error_exit_2(tmp_path):
    pkg = tmp_path / "badpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "broken.py").write_text("def f(:\n    pass\n")
    proc = run_cli("--package-root", str(pkg))
    assert proc.returncode == 2
    assert "broken.py:1" in proc.stdout
    assert "parse error" in proc.stdout


def test_cli_usage_error_exit_2():
    proc = run_cli("--rule", "no-such-rule")
    assert proc.returncode == 2
    assert "unknown rule" in proc.stdout


def test_cli_no_baseline_reports_intentional_findings():
    proc = run_cli("--no-baseline")
    assert proc.returncode == 1
    assert "PROTO005" in proc.stdout


def test_cli_update_baseline_roundtrip(tmp_path):
    bl = tmp_path / "bl.json"
    proc = run_cli("--baseline", str(bl), "--update-baseline")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    data = json.loads(bl.read_text())
    assert data["format"] == "repro-lint-baseline/1"
    rules = [f["rule"] for f in data["findings"]]
    assert "PROTO005" in rules
    # with the freshly written baseline the tree is clean
    proc = run_cli("--baseline", str(bl))
    assert proc.returncode == 0
    assert "lint clean" in proc.stdout


def test_cli_sarif_output(tmp_path):
    out = tmp_path / "lint.sarif"
    proc = run_cli("--sarif", str(out))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    sarif = json.loads(out.read_text())
    assert sarif["version"] == "2.1.0"
    results = sarif["runs"][0]["results"]
    # the baselined PROTO005 finding is carried as suppressed
    assert any(r.get("suppressions") for r in results)


def test_cli_paths_mode_is_local_only(tmp_path):
    proc = run_cli(str(FIXTURES / "racepkg"), "--rule", "race")
    assert proc.returncode == 2
    assert "package root" in proc.stdout


def test_cli_list_rules_names_families():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for token in ("wall-clock", "proto", "trc", "fpr", "race",
                  "[PROTO]", "[RACE]"):
        assert token in proc.stdout


def test_cli_lint_tests_and_scripts_clean():
    proc = run_cli("tests", "scripts", "--local-only")
    assert proc.returncode == 0, proc.stdout
    assert "lint clean" in proc.stdout


# ------------------------------------------------------- local rule symbols


def test_local_findings_carry_symbols(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "import time\n"
        "class C:\n"
        "    def m(self):\n"
        "        return time.time()\n")
    report = analyze_project(pkg)
    (v,) = report.violations
    assert v.symbol == "C.m"
    assert finding_key(v, pkg) == ("wall-clock", "mod.py", "C.m")


def test_analyze_paths_rejects_family_rules():
    with pytest.raises(ValueError):
        analyze_paths([FIXTURES / "racepkg"], rules=["race"])
