"""Shared fixtures.

Every test gets an isolated persistent run cache: CLI commands (and
any ResultStore built without an explicit root) must never read or
write the developer's real ``~/.cache/repro`` from the suite.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_run_cache(tmp_path_factory, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("run-cache")))
