"""Tests for the repro.analysis subsystem.

Three layers:
* the trace sanitizer is clean over real runs (apps x protocol ladder)
  and catches intentionally seeded violations of every check class;
* the static determinism lint is clean over ``src/repro`` and catches a
  seeded violation of every rule class;
* the runtime invariant checker accepts real runs and rejects direct
  violations of each predicate.

Plus the determinism regression: identical runs must produce
byte-identical trace streams.
"""

import pytest

from repro.analysis import (RULES, SANITIZER_CHECKS, HBGraph,
                            InvariantChecker, InvariantViolation,
                            Sanitizer, default_target, lint_paths,
                            lint_source, sanitize_run)
from repro.apps import APP_REGISTRY
from repro.cli import main as cli_main
from repro.sim.trace import TraceEvent, Tracer
from repro.svm import PROTOCOL_LADDER
from repro.svm.pages import PageAccess
from repro.svm.timestamps import Interval, VectorClock

CHECK_APPS = ("Barnes-spatial", "Water-spatial")


def ev(seq, category, **fields):
    return TraceEvent(t=float(seq), category=category,
                      fields=fields, seq=seq)


def findings_of(check_name, events):
    return Sanitizer(checks=[check_name]).run(events)


# ---------------------------------------------------- clean on real runs

@pytest.mark.parametrize("app_name", CHECK_APPS)
@pytest.mark.parametrize("features", PROTOCOL_LADDER,
                         ids=lambda f: f.name)
def test_sanitizer_clean_on_ladder(app_name, features):
    """Seed protocols produce zero findings, with invariants enabled."""
    result, findings = sanitize_run(APP_REGISTRY[app_name](), features)
    assert findings == [], "\n".join(str(f) for f in findings)
    assert result.time_us > 0


# ------------------------------------------------- seeded trace violations

def test_registry_has_all_check_classes():
    assert {"lost-write-notice", "clock-regression", "lock-queue",
            "fetch-race", "barrier-epoch"} <= set(SANITIZER_CHECKS)


def test_catches_lost_write_notice():
    events = [
        ev(1, "interval.close", node=1, index=1, written=(7,),
           clock=(0, 1)),
        # Node 0's clock has seen node 1's interval 1 (which wrote page
        # 7) yet the fault carries no needed version for it.
        ev(2, "fault.fetch", node=0, gid=7, needed=(), clock=(0, 1)),
    ]
    found = findings_of("lost-write-notice", events)
    assert len(found) == 1
    assert "write notice" in found[0].message
    assert found[0].events[-1].seq == 2


def test_write_notice_ok_when_needed_covers():
    events = [
        ev(1, "interval.close", node=1, index=1, written=(7,),
           clock=(0, 1)),
        ev(2, "fault.fetch", node=0, gid=7, needed=((1, 1),),
           clock=(0, 1)),
    ]
    assert findings_of("lost-write-notice", events) == []


def test_write_notice_ok_when_unseen():
    # Clock has not seen the write: no acquire chain, nothing lost.
    events = [
        ev(1, "interval.close", node=1, index=1, written=(7,),
           clock=(0, 1)),
        ev(2, "fault.fetch", node=0, gid=7, needed=(), clock=(0, 0)),
    ]
    assert findings_of("lost-write-notice", events) == []


def test_catches_clock_regression():
    events = [
        ev(1, "clock.advance", node=0, clock=(2, 2), want=()),
        ev(2, "clock.advance", node=0, clock=(1, 2), want=()),
    ]
    found = findings_of("clock-regression", events)
    assert len(found) == 1
    assert "regressed" in found[0].message


def test_catches_merge_not_dominating():
    events = [
        ev(1, "clock.advance", node=0, clock=(1, 0), want=(0, 2)),
    ]
    found = findings_of("clock-regression", events)
    assert len(found) == 1
    assert "dominate" in found[0].message


@pytest.mark.parametrize("prefix", ["nilock", "svmlock"])
def test_catches_double_grant(prefix):
    events = [
        ev(1, prefix + ".acquire", node=1, lock=3),
        ev(2, prefix + ".grant", node=0, lock=3, requester=1,
           queue=(1,), present=False, held=False),
        ev(3, prefix + ".granted", node=1, lock=3),
    ]
    found = findings_of("lock-queue", events)
    assert any("double grant" in f.message for f in found)


def test_catches_grant_while_held():
    events = [
        ev(1, "nilock.acquire", node=1, lock=3),
        ev(2, "nilock.grant", node=0, lock=3, requester=1,
           queue=(1,), present=True, held=True),
        ev(3, "nilock.granted", node=1, lock=3),
    ]
    found = findings_of("lock-queue", events)
    assert any("still held" in f.message for f in found)


def test_catches_queue_head_bypass():
    events = [
        ev(1, "nilock.acquire", node=2, lock=3),
        ev(2, "nilock.acquire", node=1, lock=3),
        ev(3, "nilock.grant", node=0, lock=3, requester=1,
           queue=(2, 1), present=True, held=False),
        ev(4, "nilock.granted", node=1, lock=3),
        ev(5, "nilock.grant", node=1, lock=3, requester=2,
           queue=(2,), present=True, held=False),
        ev(6, "nilock.granted", node=2, lock=3),
    ]
    found = findings_of("lock-queue", events)
    assert any("bypassed queue head" in f.message for f in found)


def test_catches_orphaned_waiter():
    events = [
        ev(1, "nilock.acquire", node=1, lock=3),
        ev(2, "nilock.acquire", node=2, lock=3),
        ev(3, "nilock.grant", node=0, lock=3, requester=1,
           queue=(1,), present=True, held=False),
        ev(4, "nilock.granted", node=1, lock=3),
        # Node 2 never gets its grant.
    ]
    found = findings_of("lock-queue", events)
    assert any("orphaned waiter" in f.message for f in found)


def test_lock_queue_clean_chain_accepted():
    events = [
        ev(1, "nilock.acquire", node=1, lock=3),
        ev(2, "nilock.grant", node=0, lock=3, requester=1,
           queue=(1,), present=True, held=False),
        ev(3, "nilock.granted", node=1, lock=3),
        ev(4, "nilock.acquire", node=2, lock=3),
        ev(5, "nilock.grant", node=1, lock=3, requester=2,
           queue=(2,), present=True, held=False),
        ev(6, "nilock.granted", node=2, lock=3),
    ]
    assert findings_of("lock-queue", events) == []


def test_catches_fetch_race():
    events = [
        ev(1, "home.apply", gid=5, writer=1, index=1),
        # Accepted a snapshot that does not satisfy the needed versions.
        ev(2, "fetch.ok", node=0, gid=5, snapshot=((1, 1),),
           needed=((1, 2),)),
    ]
    found = findings_of("fetch-race", events)
    assert len(found) == 1
    assert "raced" in found[0].message


def test_catches_phantom_version():
    events = [
        # Snapshot claims a diff no home.apply ever produced.
        ev(1, "fetch.ok", node=0, gid=5, snapshot=((1, 3),),
           needed=((1, 3),)),
    ]
    found = findings_of("fetch-race", events)
    assert any("no such diff" in f.message for f in found)


def test_fetch_ok_when_satisfied():
    events = [
        ev(1, "home.apply", gid=5, writer=1, index=2),
        ev(2, "fetch.ok", node=0, gid=5, snapshot=((1, 2),),
           needed=((1, 2),)),
    ]
    assert findings_of("fetch-race", events) == []


def test_catches_barrier_epoch_violation():
    events = [
        ev(1, "barrier.enter", rank=0, epoch=0),
        ev(2, "barrier.exit", rank=0, epoch=0),
        ev(3, "barrier.enter", rank=1, epoch=0),
        ev(4, "barrier.exit", rank=1, epoch=0),
    ]
    found = findings_of("barrier-epoch", events)
    assert len(found) == 1
    assert "exited before" in found[0].message


def test_barrier_epochs_independent():
    events = [
        ev(1, "barrier.enter", rank=0, epoch=0),
        ev(2, "barrier.enter", rank=1, epoch=0),
        ev(3, "barrier.exit", rank=0, epoch=0),
        ev(4, "barrier.exit", rank=1, epoch=0),
        ev(5, "barrier.enter", rank=0, epoch=1),
        ev(6, "barrier.enter", rank=1, epoch=1),
        ev(7, "barrier.exit", rank=1, epoch=1),
    ]
    assert findings_of("barrier-epoch", events) == []


def test_unknown_check_rejected():
    with pytest.raises(ValueError):
        Sanitizer(checks=["no-such-check"])


# ------------------------------------------------------------------ HBGraph

def test_hbgraph_happens_before():
    events = [
        ev(1, "interval.close", node=1, index=1, written=(7,),
           clock=(0, 1)),
        ev(2, "clock.advance", node=0, clock=(0, 1), want=(0, 1)),
    ]
    hb = HBGraph(events)
    assert [i.index for i in hb.writes_to(7)] == [1]
    # Before the acquire node 0 has no snapshot; after it, the interval
    # is ordered before node 0's execution.
    assert not hb.happens_before(1, 1, 0, 1)
    assert hb.happens_before(1, 1, 0, 2)
    assert hb.clock_of(0, 2) == (0, 1)
    assert hb.clock_of(0, 1) is None


# ----------------------------------------------------------------- tracer

def test_tracer_seq_monotone_and_in_text():
    tracer = Tracer()
    tracer.record(1.0, "a.b", x=1)
    tracer.record(1.0, "a.c", x=2)
    first, second = tracer.events
    assert (first.seq, second.seq) == (1, 2)
    assert "#000001" in str(first)
    tracer.clear()
    tracer.record(2.0, "a.d")
    assert tracer.events[0].seq == 1


def test_trace_jsonl_is_canonical():
    tracer = Tracer()
    tracer.record(1.0, "a.b", x=1, y=(2, 3))
    line = tracer.to_jsonl()
    assert line == ('{"category":"a.b","fields":{"x":1,"y":[2,3]},'
                    '"seq":1,"t":1.0}')


def test_determinism_byte_identical_traces():
    """Same app, same protocol, same seed => identical event streams."""
    streams = []
    for _ in range(2):
        tracer = Tracer(capacity=None)
        app = APP_REGISTRY["Barnes-spatial"]()
        from repro.runtime import run_svm
        run_svm(app, PROTOCOL_LADDER[-1], tracer=tracer)
        streams.append(tracer.to_jsonl())
    assert streams[0] == streams[1]
    assert streams[0].count("\n") > 100


# ------------------------------------------------------------------- lint

def test_lint_registry_has_rule_classes():
    assert {"wall-clock", "global-random", "unordered-iter",
            "float-time-eq", "mutable-default",
            "global-mutation"} <= set(RULES)


def test_lint_clean_over_package():
    """src/repro is lint-clean modulo inline ``# repro: noqa[...]``
    suppressions (the policy `repro lint` enforces); every suppression
    in the tree must carry a justification after the bracket."""
    from repro.analysis.static.driver import analyze_paths
    report = analyze_paths([default_target()])
    assert report.violations == [], "\n".join(
        str(v) for v in report.violations)
    assert report.syntax_errors == []
    # suppressions are rare and deliberate: wall-clock only, each on a
    # line whose comment explains itself
    for v in report.suppressed:
        assert v.rule == "wall-clock", v


@pytest.mark.parametrize("rule,bad,good", [
    ("wall-clock",
     "import time\nt0 = time.time()\n",
     "t0 = sim.now\n"),
    ("wall-clock",
     "from datetime import datetime\nd = datetime.now()\n",
     "d = compute_stamp(sim.now)\n"),
    ("global-random",
     "import random\nx = random.randint(0, 3)\n",
     "import random\nrng = random.Random(7)\nx = rng.randint(0, 3)\n"),
    ("global-random",
     "from random import shuffle\n",
     "from random import Random\n"),
    ("unordered-iter",
     "for x in {1, 2, 3}:\n    emit(x)\n",
     "for x in sorted({1, 2, 3}):\n    emit(x)\n"),
    ("unordered-iter",
     "out = [f(x) for x in set(items)]\n",
     "out = [f(x) for x in sorted(set(items))]\n"),
    ("float-time-eq",
     "if sim.now == deadline:\n    fire()\n",
     "if sim.now >= deadline:\n    fire()\n"),
    ("mutable-default",
     "def f(acc=[]):\n    return acc\n",
     "def f(acc=None):\n    return acc or []\n"),
    ("global-mutation",
     "TABLE = {}\nTABLE.update({'a': 1})\n",
     "TABLE = {'a': 1}\n"),
    ("global-mutation",
     "TABLE = {}\nTABLE['a'] = 1\n",
     "TABLE = dict(a=1)\n"),
])
def test_lint_rule_catches_and_passes(rule, bad, good):
    hits = lint_source(bad, rules=[rule])
    assert hits and all(v.rule == rule for v in hits), bad
    assert lint_source(good, rules=[rule]) == [], good


def test_lint_function_scope_mutation_allowed():
    src = "def build():\n    t = {}\n    t['a'] = 1\n    return t\n"
    assert lint_source(src, rules=["global-mutation"]) == []


def test_lint_reports_syntax_error():
    hits = lint_source("def broken(:\n")
    assert len(hits) == 1 and hits[0].rule == "syntax"


def test_lint_unknown_rule_rejected():
    with pytest.raises(ValueError):
        lint_source("x = 1\n", rules=["no-such-rule"])


def test_lint_violation_str_has_location():
    hit = lint_source("import time\nt = time.time()\n",
                      path="m.py")[0]
    assert str(hit).startswith("m.py:2:")


# -------------------------------------------------------------- invariants

class _FakeLog:
    def __init__(self, heads):
        self.heads = heads

    def current_index(self, node):
        return self.heads[node]


class _FakeProto:
    def __init__(self, heads, clocks):
        self.invariants = None
        self.tables = []
        self.interval_log = _FakeLog(heads)
        self.node_clock = clocks


def _checker(heads=(1, 0), clocks=None):
    clocks = clocks or [VectorClock(values=[1, 0]),
                        VectorClock(values=[0, 0])]
    return InvariantChecker(_FakeProto(list(heads), clocks))


def test_invariant_rejects_illegal_page_transition():
    with pytest.raises(InvariantViolation, match="illegal page"):
        _checker().on_page_transition(
            0, 7, PageAccess.READ, PageAccess.WRITE, "invalidate")


def test_invariant_accepts_legal_page_transition():
    _checker().on_page_transition(
        0, 7, PageAccess.INVALID, PageAccess.READ, "fault")


def test_invariant_rejects_interval_log_mismatch():
    with pytest.raises(InvariantViolation, match="log head"):
        _checker(heads=(2, 0)).on_interval_close(
            0, Interval(node=0, index=1, pages=(3,)))


def test_invariant_rejects_clock_interval_mismatch():
    ck = _checker(heads=(1, 0),
                  clocks=[VectorClock(values=[5, 0]),
                          VectorClock(values=[0, 0])])
    with pytest.raises(InvariantViolation, match="clock component"):
        ck.on_interval_close(0, Interval(node=0, index=1, pages=(3,)))


def test_invariant_rejects_empty_interval():
    with pytest.raises(InvariantViolation, match="empty interval"):
        _checker().on_interval_close(
            0, Interval(node=0, index=1, pages=()))


def test_invariant_rejects_clock_regression():
    ck = _checker()
    with pytest.raises(InvariantViolation, match="regressed"):
        ck.on_clock_merge(0, (2, 2), VectorClock(values=[1, 2]),
                          VectorClock(values=[0, 0]))


def test_invariant_rejects_nondominating_merge():
    ck = _checker()
    with pytest.raises(InvariantViolation, match="dominate"):
        ck.on_clock_merge(0, (1, 0), VectorClock(values=[1, 0]),
                          VectorClock(values=[0, 2]))


def test_invariant_rejects_barrier_log_disagreement():
    ck = _checker(heads=(1, 0))
    with pytest.raises(InvariantViolation, match="disagrees"):
        ck.on_barrier_epoch(0, VectorClock(values=[2, 0]))


def test_invariant_rejects_barrier_clock_regression():
    ck = _checker(heads=(1, 0))
    ck.on_barrier_epoch(0, VectorClock(values=[1, 0]))
    ck.protocol.interval_log.heads = [0, 0]
    with pytest.raises(InvariantViolation, match="regressed"):
        ck.on_barrier_epoch(1, VectorClock(values=[0, 0]))


def test_invariant_nonstrict_accumulates():
    ck = InvariantChecker(_FakeProto([1, 0],
                                     [VectorClock(values=[1, 0]),
                                      VectorClock(values=[0, 0])]),
                          strict=False)
    ck.on_page_transition(0, 7, PageAccess.READ, PageAccess.WRITE,
                          "invalidate")
    ck.on_clock_merge(0, (2, 2), VectorClock(values=[1, 2]),
                      VectorClock(values=[0, 0]))
    assert len(ck.violations) == 2


def test_invariant_install_uninstall():
    from repro.hw import MachineConfig
    from repro.runtime import SVMBackend
    from repro.svm import GENIMA
    backend = SVMBackend(MachineConfig(), GENIMA, check=True)
    assert backend.protocol.invariants is backend.invariants
    assert all(t.on_transition is not None
               for t in backend.protocol.tables)
    backend.invariants.uninstall()
    assert backend.protocol.invariants is None
    assert all(t.on_transition is None for t in backend.protocol.tables)


# -------------------------------------------------------------------- CLI

def test_cli_lint_clean(capsys):
    assert cli_main(["lint"]) == 0
    assert "lint clean" in capsys.readouterr().out


def test_cli_lint_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert cli_main(["lint", str(bad)]) == 1
    assert "wall-clock" in capsys.readouterr().out


def test_cli_lint_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    assert "unordered-iter" in capsys.readouterr().out


def test_cli_check_single_cell(capsys):
    rc = cli_main(["check", "--app", "Barnes-spatial",
                   "--protocol", "Base"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "all checks passed" in out
