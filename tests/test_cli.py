"""CLI tests (in-process via repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "FFT" in out and "GeNIMA" in out and "Barnes-spatial" in out


def test_run_command(capsys):
    assert main(["run", "--app", "Water-spatial",
                 "--protocol", "GeNIMA"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "interrupts      : 0" in out


def test_run_origin(capsys):
    assert main(["run", "--app", "Water-spatial",
                 "--protocol", "Origin"]) == 0
    out = capsys.readouterr().out
    assert "Origin" in out


def test_run_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["run", "--app", "NotAnApp"])


def test_ladder_command(capsys):
    assert main(["ladder", "--app", "Water-spatial"]) == 0
    out = capsys.readouterr().out
    for name in ("Base", "DW", "DW+RF", "DW+RF+DD", "GeNIMA"):
        assert name in out


def test_calibrate_command(capsys):
    assert main(["calibrate"]) == 0
    out = capsys.readouterr().out
    assert "one-way 1-word latency" in out


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_nodes_option_changes_processor_count(capsys):
    assert main(["run", "--app", "Water-spatial", "--protocol", "GeNIMA",
                 "--nodes", "8"]) == 0
    out = capsys.readouterr().out
    assert "32 processors" in out
