"""CLI tests (in-process via repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "FFT" in out and "GeNIMA" in out and "Barnes-spatial" in out


def test_run_command(capsys):
    assert main(["run", "--app", "Water-spatial",
                 "--protocol", "GeNIMA"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "interrupts      : 0" in out


def test_run_origin(capsys):
    assert main(["run", "--app", "Water-spatial",
                 "--protocol", "Origin"]) == 0
    out = capsys.readouterr().out
    assert "Origin" in out


def test_run_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["run", "--app", "NotAnApp"])


def test_scale_command_writes_curves(capsys, tmp_path):
    import json
    out = tmp_path / "scale.json"
    assert main(["scale", "--app", "OpenLoop", "--nodes", "2",
                 "--nodes", "4", "--topology", "crossbar",
                 "--topology", "fat-tree", "--no-cache",
                 "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "crossbar" in text and "fat-tree" in text
    data = json.loads(out.read_text())
    assert data["app"] == "OpenLoop"
    # 2 topologies x 2 default rungs x 2 node counts.
    assert len(data["rows"]) == 8
    for row in data["rows"]:
        assert row["speedup"] > 0


def test_scale_rejects_non_datacenter_app():
    with pytest.raises(SystemExit):
        main(["scale", "--app", "FFT"])


def test_metrics_command_openmetrics(capsys):
    assert main(["metrics", "--app", "Water-spatial",
                 "--cadence-us", "500", "--openmetrics"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_ts_ni_queue_depth histogram" in out
    assert out.endswith("# EOF\n")


def test_metrics_command_json(capsys, tmp_path):
    import json
    path = tmp_path / "metrics.json"
    assert main(["metrics", "--app", "Water-spatial",
                 "--out", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["telemetry"]["samples"] > 0
    assert "svm.page_fetches" in data["snapshot"]


def test_dash_command(capsys, tmp_path):
    import json
    html = tmp_path / "dash.html"
    trace = tmp_path / "dash_trace.json"
    assert main(["dash", "--app", "KVStore", "--scale", "--nodes", "4",
                 "--cadence-us", "500", "--html", str(html),
                 "--perfetto", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "hot nodes" in out and "phase" in out
    assert html.read_text().startswith("<!doctype html>")
    events = json.loads(trace.read_text())
    assert any(e.get("ph") == "C" for e in events)


def test_dash_scale_rejects_paper_app():
    with pytest.raises(SystemExit):
        main(["dash", "--app", "FFT", "--scale"])


def test_ladder_command(capsys):
    assert main(["ladder", "--app", "Water-spatial"]) == 0
    out = capsys.readouterr().out
    for name in ("Base", "DW", "DW+RF", "DW+RF+DD", "GeNIMA"):
        assert name in out


def test_ladder_warm_cache_is_byte_identical(capsys, tmp_path):
    cache_dir = str(tmp_path / "explicit")
    assert main(["ladder", "--app", "Water-spatial",
                 "--cache-dir", cache_dir]) == 0
    cold = capsys.readouterr().out
    assert main(["ladder", "--app", "Water-spatial",
                 "--cache-dir", cache_dir]) == 0
    assert capsys.readouterr().out == cold
    assert main(["cache", "--cache-dir", cache_dir]) == 0
    assert "entries    : 6" in capsys.readouterr().out


def test_no_cache_writes_nothing(capsys, tmp_path):
    cache_dir = str(tmp_path / "untouched")
    assert main(["ladder", "--app", "Water-spatial",
                 "--cache-dir", cache_dir, "--no-cache"]) == 0
    capsys.readouterr()
    assert main(["cache", "--cache-dir", cache_dir]) == 0
    assert "entries    : 0" in capsys.readouterr().out


def test_cache_wipe(capsys, tmp_path):
    cache_dir = str(tmp_path / "wiped")
    assert main(["faultsweep", "--app", "Water-spatial", "--loss", "0",
                 "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["cache", "--cache-dir", cache_dir, "--wipe"]) == 0
    assert "wiped 1 entry" in capsys.readouterr().out
    assert main(["cache", "--cache-dir", cache_dir]) == 0
    assert "entries    : 0" in capsys.readouterr().out


def test_calibrate_command(capsys):
    assert main(["calibrate"]) == 0
    out = capsys.readouterr().out
    assert "one-way 1-word latency" in out


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_nodes_option_changes_processor_count(capsys):
    assert main(["run", "--app", "Water-spatial", "--protocol", "GeNIMA",
                 "--nodes", "8"]) == 0
    out = capsys.readouterr().out
    assert "32 processors" in out
