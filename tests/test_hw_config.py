"""Unit tests for the machine configuration."""

import pytest

from repro.hw import PAPER_16P, PAPER_32P


def test_paper_testbed_topology():
    assert PAPER_16P.nodes == 4
    assert PAPER_16P.procs_per_node == 4
    assert PAPER_16P.total_procs == 16
    assert PAPER_32P.total_procs == 32


def test_node_of_rank_mapping():
    cfg = PAPER_16P
    assert cfg.node_of(0) == 0
    assert cfg.node_of(3) == 0
    assert cfg.node_of(4) == 1
    assert cfg.node_of(15) == 3


def test_node_of_out_of_range():
    with pytest.raises(ValueError):
        PAPER_16P.node_of(16)
    with pytest.raises(ValueError):
        PAPER_16P.node_of(-1)


def test_procs_of_node():
    assert PAPER_16P.procs_of(0) == (0, 1, 2, 3)
    assert PAPER_16P.procs_of(3) == (12, 13, 14, 15)


def test_packets_for_segmentation():
    cfg = PAPER_16P
    assert cfg.packets_for(0) == 1
    assert cfg.packets_for(1) == 1
    assert cfg.packets_for(4096) == 1
    assert cfg.packets_for(4097) == 2
    assert cfg.packets_for(3 * 4096) == 3


def test_uncontended_references_monotone_in_size():
    cfg = PAPER_16P
    for fn in (cfg.src_uncontended_us, cfg.lanai_uncontended_us,
               cfg.net_uncontended_us, cfg.dest_uncontended_us):
        assert fn(4096) > fn(8) > 0


def test_scaled_copy_overrides_fields():
    cfg = PAPER_16P.scaled(nodes=8, interrupt_us=50.0)
    assert cfg.nodes == 8
    assert cfg.interrupt_us == 50.0
    # original untouched (frozen dataclass)
    assert PAPER_16P.nodes == 4


def test_config_is_immutable():
    with pytest.raises(Exception):
        PAPER_16P.nodes = 10  # type: ignore[misc]


@pytest.mark.parametrize("nodes", [3, 8, 257])
def test_node_of_covers_odd_node_counts(nodes):
    cfg = PAPER_16P.scaled(nodes=nodes)
    per = cfg.procs_per_node
    assert cfg.total_procs == nodes * per
    assert cfg.node_of(0) == 0
    assert cfg.node_of(per - 1) == 0
    assert cfg.node_of(per) == 1
    assert cfg.node_of(cfg.total_procs - 1) == nodes - 1
    assert cfg.procs_of(nodes - 1)[-1] == cfg.total_procs - 1
    with pytest.raises(ValueError):
        cfg.node_of(cfg.total_procs)


def test_paper_32p_unchanged_by_topology_fields():
    # the scaled-machine fields default to the paper's fabric.
    assert PAPER_32P.nodes == 8
    assert PAPER_32P.topology == "crossbar"
    assert PAPER_32P.topology_radix == 0
    assert PAPER_32P.hop_latency_us == 0.5


def test_topology_field_validation():
    with pytest.raises(ValueError):
        PAPER_16P.scaled(topology="mesh")
    with pytest.raises(ValueError):
        PAPER_16P.scaled(hop_latency_us=-1.0)
