"""Unit tests for the datacenter workloads and arrival processes."""

import pytest

from repro.apps import (APP_REGISTRY, ArrivalProcess, OpenLoop,
                        ParameterServer, ShardedKVStore)
from repro.hw import MachineConfig
from repro.runtime import run_svm
from repro.svm import BASE, GENIMA


# ------------------------------------------------------- arrival process

def test_arrival_process_is_registered():
    for name in ("KVStore", "ParamServer", "OpenLoop"):
        assert name in APP_REGISTRY


def test_deterministic_arrivals_are_exact_periods():
    plan = ArrivalProcess("deterministic", rate_per_us=0.5, count=4)
    assert plan.times == pytest.approx([2.0, 4.0, 6.0, 8.0])


def test_poisson_arrivals_are_seed_deterministic():
    a = ArrivalProcess("poisson", rate_per_us=0.01, count=100, seed=7)
    b = ArrivalProcess("poisson", rate_per_us=0.01, count=100, seed=7)
    c = ArrivalProcess("poisson", rate_per_us=0.01, count=100, seed=8)
    assert a.times == b.times
    assert a.times != c.times
    assert all(t2 > t1 for t1, t2 in zip(a.times, a.times[1:]))
    # mean inter-arrival gap close to 1/rate over 100 draws.
    assert a.times[-1] / 100 == pytest.approx(100.0, rel=0.5)


def test_arrival_process_validates_inputs():
    with pytest.raises(ValueError, match="kind"):
        ArrivalProcess("uniform", 1.0, 1)
    with pytest.raises(ValueError, match="rate"):
        ArrivalProcess("poisson", 0.0, 1)
    with pytest.raises(ValueError, match="count"):
        ArrivalProcess("poisson", 1.0, -1)


# ----------------------------------------------------------- constructors

def test_kvstore_validates_fractions():
    with pytest.raises(ValueError):
        ShardedKVStore(put_fraction=1.5)
    with pytest.raises(ValueError):
        ShardedKVStore(shards=0)


def test_paramserver_validates_sizes():
    with pytest.raises(ValueError):
        ParameterServer(param_pages=0)
    with pytest.raises(ValueError):
        ParameterServer(steps=0)


def test_openloop_validates_pages():
    with pytest.raises(ValueError):
        OpenLoop(pages=0)


# ------------------------------------------------------------------ runs

def _small_kv(**kw):
    kw.setdefault("shards", 8)
    kw.setdefault("requests_per_rank", 8)
    return ShardedKVStore(**kw)


def test_kvstore_runs_on_both_rungs():
    base = run_svm(_small_kv(), BASE)
    genima = run_svm(_small_kv(), GENIMA)
    assert base.time_us > 0 and genima.time_us > 0
    assert base.stats["page_fetches"] > 0


def test_kvstore_is_seed_deterministic():
    r1 = run_svm(_small_kv(seed=3), GENIMA)
    r2 = run_svm(_small_kv(seed=3), GENIMA)
    r3 = run_svm(_small_kv(seed=4), GENIMA)
    assert r1.time_us == r2.time_us
    assert r1.time_us != r3.time_us


def test_kvstore_puts_take_locks_and_push_diffs():
    result = run_svm(_small_kv(put_fraction=1.0), GENIMA)
    none = run_svm(_small_kv(put_fraction=0.0), GENIMA)
    assert result.stats["lock_acquires"] > 0
    # GeNIMA scatters diffs as runs; a put-free run writes nothing.
    assert result.stats["diff_runs_sent"] > 0
    assert none.stats["diff_runs_sent"] == 0
    assert none.stats["lock_acquires"] == 0


def test_paramserver_runs_and_genima_helps():
    app = ParameterServer(param_pages=32, steps=4, compute_us=200.0)
    base = run_svm(ParameterServer(param_pages=32, steps=4,
                                   compute_us=200.0), BASE)
    genima = run_svm(app, GENIMA)
    # fetch + diff heavy: the NI-supported rung must not be slower.
    assert genima.time_us <= base.time_us
    assert genima.stats["page_fetches"] > 0


def test_openloop_records_sojourn_times():
    app = OpenLoop(pages=16, requests_per_rank=8, rate_per_us=0.01)
    result = run_svm(app, GENIMA)
    assert result.time_us > 0
    assert set(app.sojourn_us) == set(range(16))
    for done, sojourn in app.sojourn_us.values():
        assert done == 8
        assert sojourn >= 0.0


def test_openloop_arrival_schedule_bounds_completion():
    # At a very slow rate the run is arrival-bound: completion is at
    # least the last arrival of the busiest rank's schedule.
    app = OpenLoop(pages=16, requests_per_rank=4, rate_per_us=0.0005,
                   arrivals="deterministic")
    result = run_svm(app, GENIMA)
    assert result.time_us >= 4 / 0.0005


def test_datacenter_apps_scale_past_the_paper_testbed():
    cfg = MachineConfig(nodes=32, procs_per_node=1, topology="fat-tree")
    result = run_svm(ShardedKVStore(shards=32, requests_per_rank=4),
                     GENIMA, config=cfg)
    assert result.nprocs == 32
    assert result.time_us > 0
