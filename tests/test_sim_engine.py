"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(5.0)
        fired.append(sim.now)
        yield sim.timeout(2.5)
        fired.append(sim.now)

    sim.process(proc())
    sim.run()
    assert fired == [5.0, 7.5]


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1.0, value="hello")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["hello"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    for i in range(5):
        sim.schedule(10.0, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_wakes_waiter_with_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        v = yield ev
        got.append((sim.now, v))

    sim.process(waiter())
    sim.schedule(3.0, lambda: ev.succeed(42))
    sim.run()
    assert got == [(3.0, 42)]


def test_event_triggered_twice_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_yield_already_triggered_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("pre")
    got = []

    def proc():
        yield sim.timeout(1.0)
        v = yield ev
        got.append((sim.now, v))

    sim.process(proc())
    sim.run()
    assert got == [(1.0, "pre")]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as err:
            caught.append(str(err))

    sim.process(waiter())
    sim.schedule(1.0, lambda: ev.fail(RuntimeError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_process_return_value_delivered_to_parent():
    sim = Simulator()
    got = []

    def child():
        yield sim.timeout(4.0)
        return 99

    def parent():
        v = yield sim.process(child())
        got.append((sim.now, v))

    sim.process(parent())
    sim.run()
    assert got == [(4.0, 99)]


def test_uncaught_process_exception_propagates_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("crash")

    sim.process(bad())
    with pytest.raises(ValueError, match="crash"):
        sim.run()


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 123

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(100.0)
        fired.append(True)

    sim.process(proc())
    end = sim.run(until=10.0)
    assert end == 10.0
    assert not fired
    sim.run()
    assert fired == [True]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    evs = [sim.event() for _ in range(3)]
    got = []

    def waiter():
        vals = yield sim.all_of(evs)
        got.append((sim.now, vals))

    sim.process(waiter())
    sim.schedule(1.0, lambda: evs[1].succeed("b"))
    sim.schedule(2.0, lambda: evs[0].succeed("a"))
    sim.schedule(5.0, lambda: evs[2].succeed("c"))
    sim.run()
    assert got == [(5.0, ["b", "a", "c"])] or got == [(5.0, ["a", "b", "c"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    got = []

    def waiter():
        vals = yield sim.all_of([])
        got.append(vals)

    sim.process(waiter())
    sim.run()
    assert got == [[]]


def test_any_of_fires_on_first():
    sim = Simulator()
    evs = [sim.event() for _ in range(3)]
    got = []

    def waiter():
        v = yield sim.any_of(evs)
        got.append((sim.now, v))

    sim.process(waiter())
    sim.schedule(2.0, lambda: evs[2].succeed("late"))
    sim.schedule(1.0, lambda: evs[0].succeed("first"))
    sim.run()
    assert got == [(1.0, "first")]


def test_interrupt_raises_in_waiting_process():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100.0)
            log.append("finished")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    proc = sim.process(victim())
    sim.schedule(5.0, lambda: proc.interrupt("stop"))
    sim.run()
    assert log == [("interrupted", 5.0, "stop")]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_process_is_alive_tracks_lifetime():
    sim = Simulator()

    def quick():
        yield sim.timeout(3.0)

    proc = sim.process(quick())
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.schedule(7.0, lambda: None)
    assert sim.peek() == 7.0
    sim.run()
    assert sim.peek() == float("inf")


def test_nested_process_chains():
    sim = Simulator()
    trace = []

    def leaf(tag, delay):
        yield sim.timeout(delay)
        trace.append(tag)
        return tag

    def mid():
        a = yield sim.process(leaf("a", 1.0))
        b = yield sim.process(leaf("b", 2.0))
        return a + b

    def root():
        v = yield sim.process(mid())
        trace.append(v)

    sim.process(root())
    sim.run()
    assert trace == ["a", "b", "ab"]


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_callback_added_after_dispatch_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(7)
    sim.run()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    assert got == [7]


# -- horizon-bounded slice hooks (run(until=...) tail fix) ----------------


def test_slice_hooks_fire_up_to_until_after_last_event():
    """Boundaries between the final event and ``until`` must fire."""
    sim = Simulator()
    seen = []
    sim.add_slice_hook(10.0, seen.append)

    def proc():
        yield sim.timeout(15.0)

    sim.process(proc())
    end = sim.run(until=45.0)
    assert end == 45.0
    # 10 fires before the event at 15; 20/30/40 are tail boundaries.
    assert seen == [10.0, 20.0, 30.0, 40.0]


def test_slice_hook_boundary_exactly_at_until_fires_once():
    sim = Simulator()
    seen = []
    sim.add_slice_hook(10.0, seen.append)
    sim.run(until=20.0)
    assert seen == [10.0, 20.0]
    # Resuming past the horizon does not re-fire the boundary at 20.
    def proc():
        yield sim.timeout(15.0)  # fires at t=35

    sim.process(proc())
    sim.run()
    assert seen == [10.0, 20.0, 30.0]


def test_slice_hooks_fire_on_empty_bounded_run():
    """Even a drained simulation reports every window up to the horizon."""
    sim = Simulator()
    seen = []
    sim.add_slice_hook(5.0, seen.append)
    end = sim.run(until=12.0)
    assert end == 12.0
    assert seen == [5.0, 10.0]


# -- interrupt of a triggered-but-undispatched wait target ----------------


def test_interrupt_when_wait_target_triggered_but_undispatched():
    sim = Simulator()
    outcome = []

    def waiter():
        ev = sim.event()
        holder.append(ev)
        try:
            val = yield ev
            outcome.append(("value", val))
        except Interrupt as intr:
            outcome.append(("interrupt", intr.cause))

    holder = []
    p = sim.process(waiter())
    sim.run()
    ev = holder[0]
    # Trigger the target, then interrupt before the kernel dispatches it.
    ev.succeed("late")
    p.interrupt("stop")
    sim.run()
    # The interrupt wins; the event's (detached) dispatch must not
    # resume the process a second time.
    assert outcome == [("interrupt", "stop")]


# -- combination-event callback detach ------------------------------------


def test_any_of_detaches_callbacks_from_losers():
    sim = Simulator()
    long_lived = sim.event()

    def retry_loop():
        for i in range(50):
            yield sim.any_of([long_lived, sim.timeout(1.0)])

    sim.process(retry_loop())
    sim.run()
    # Without detach the loser accumulates one dead closure per lap.
    assert len(long_lived._callbacks) == 0


def test_all_of_detaches_callbacks_on_failure():
    sim = Simulator()
    pending = sim.event()

    def proc():
        failing = sim.event()
        combined = sim.all_of([pending, failing])
        failing.fail(RuntimeError("boom"))
        try:
            yield combined
        except RuntimeError:
            pass

    sim.process(proc())
    sim.run()
    assert len(pending._callbacks) == 0


def test_all_of_failure_does_not_read_failed_value():
    sim = Simulator()

    def proc():
        failing = sim.event()
        other = sim.event()
        combined = sim.all_of([failing, other])
        failing.fail(ValueError("nope"))
        with pytest.raises(ValueError):
            yield combined

    sim.process(proc())
    sim.run()


def test_any_of_still_delivers_winner_value():
    sim = Simulator()
    got = []

    def proc():
        a, b = sim.event(), sim.event()
        sim.schedule(2.0, lambda: a.succeed("A"))
        sim.schedule(1.0, lambda: b.succeed("B"))
        val = yield sim.any_of([a, b])
        got.append((sim.now, val))
        assert len(a._callbacks) == 0  # loser detached

    sim.process(proc())
    sim.run()
    assert got == [(1.0, "B")]


def test_events_dispatched_counter_accumulates():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    first = sim.events_dispatched
    assert first > 0
    sim.process(proc())
    sim.run()
    assert sim.events_dispatched > first
