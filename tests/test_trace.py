"""Tests for the tracing facility and its protocol integration."""

from repro.hw import Machine, MachineConfig
from repro.sim import SpanTracer, Simulator, TraceEvent, Tracer
from repro.svm import BASE, GENIMA, HLRCProtocol


# ----------------------------------------------------------------- Tracer

def test_record_and_query():
    tr = Tracer()
    tr.record(1.0, "fetch", gid=7)
    tr.record(2.0, "fetch.retry", gid=7)
    tr.record(3.0, "lock.acquire", rank=0)
    assert tr.count("fetch") == 1
    assert tr.count("fetch.retry") == 1
    assert len(tr.filter("fetch")) == 2
    assert len(tr.filter("lock")) == 1
    assert tr.counts() == {"fetch": 1, "fetch.retry": 1,
                           "lock.acquire": 1}


def test_count_prefix():
    tr = Tracer()
    tr.record(1.0, "fetch", gid=7)
    tr.record(2.0, "fetch.retry", gid=7)
    tr.record(3.0, "lock.acquire", rank=0)
    # count() is exact-match; count_prefix() sums whole families.
    assert tr.count("fetch") == 1
    assert tr.count_prefix("fetch") == 2
    assert tr.count_prefix("lock") == 1
    assert tr.count_prefix("barrier") == 0


def test_category_filter_by_prefix():
    tr = Tracer(categories={"lock"})
    tr.record(1.0, "lock.acquire")
    tr.record(2.0, "fetch.retry")
    assert tr.count("lock.acquire") == 1
    assert tr.count("fetch.retry") == 0
    assert len(tr.events) == 1


def test_record_fast_path_rejects_without_side_effects():
    tr = Tracer(categories=())
    for i in range(100):
        tr.record(float(i), "fetch.ok", gid=i)
    assert tr.events == []
    assert tr.counts() == {}
    assert tr._seq == 0  # rejected events never touch the sequence


def test_admission_memo_survives_clear_and_stays_correct():
    tr = Tracer(categories={"lock"})
    tr.record(1.0, "lock.acquire")
    tr.record(2.0, "fetch.retry")
    assert tr._admit == {"lock.acquire": True, "fetch.retry": False}
    tr.clear()
    tr.record(3.0, "lock.acquire")
    assert tr.count("lock.acquire") == 1
    assert tr.wants("lock.acquire") and not tr.wants("fetch.retry")


def test_emit_is_record():
    assert Tracer.emit is Tracer.record
    tr = Tracer()
    tr.emit(1.0, "x", n=1)
    assert tr.count("x") == 1


def test_capacity_bounds_events_not_counts():
    tr = Tracer(capacity=3)
    for i in range(10):
        tr.record(float(i), "x", i=i)
    assert len(tr.events) == 3
    assert tr.events[0].fields["i"] == 7  # oldest dropped
    assert tr.count("x") == 10


def test_between_and_to_text():
    tr = Tracer()
    for i in range(5):
        tr.record(float(i * 10), "tick", n=i)
    assert [e.fields["n"] for e in tr.between(15.0, 35.0)] == [2, 3]
    text = tr.to_text(limit=2)
    assert "n=4" in text and "n=0" not in text


def test_clear():
    tr = Tracer()
    tr.record(1.0, "a")
    tr.clear()
    assert tr.events == [] and tr.counts() == {}


def test_event_str():
    e = TraceEvent(t=12.5, category="lock.acquire",
                   fields={"rank": 3})
    assert "lock.acquire" in str(e) and "rank=3" in str(e)


# ------------------------------------------------------------ span tracing

def test_span_tracer_records_parent_and_link():
    tr = Tracer()
    sim = Simulator()
    sp = SpanTracer(tr, sim)
    outer = sp.begin("run", "r0", bucket="compute", rank=0)
    fid = sp.flow("r0", "page_req", "data", gid=9)
    inner = sp.begin("ni.fw", "ni1", bucket="data", link=fid)
    sp.wake(fid, "r0")
    sp.end(inner)
    sp.end(outer)
    cats = [e.category for e in tr.events]
    assert cats == ["span.begin", "span.flow", "span.begin",
                    "span.wake", "span.end", "span.end"]
    begin_outer, flow, begin_inner, wake = tr.events[:4]
    assert "parent" not in begin_outer.fields  # top-level span
    assert flow.fields["src"] == begin_outer.fields["sid"]
    assert begin_inner.fields["link"] == fid
    assert wake.fields == {"fid": fid, "track": "r0"}


def test_span_tracer_nested_parent_on_same_track():
    tr = Tracer()
    sp = SpanTracer(tr, Simulator())
    a = sp.begin("run", "r0")
    b = sp.begin("page.fault", "r0", bucket="data")
    assert tr.events[-1].fields["parent"] == a
    sp.end(b)
    sp.end(a)
    assert sp.current("r0") is None


def test_chrome_trace_converts_spans():
    tr = Tracer()
    sp = SpanTracer(tr, Simulator())
    sid = sp.begin("run", "r0", bucket="compute")
    fid = sp.flow("r0", "page_req", "data")
    hid = sp.begin("host.handler", "h1", bucket="data", link=fid)
    sp.end(hid)
    sp.end(sid)
    events = tr.to_chrome_trace()
    phases = [e["ph"] for e in events if e["ph"] not in "Mi"]
    # B(run) s(flow) B(handler)+f(link arrow) E E
    assert phases == ["B", "s", "B", "f", "E", "E"]
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert {"repro", "rank 0", "h1"} <= names
    b_run = next(e for e in events if e["ph"] == "B")
    assert b_run["tid"] == 0  # r0 shares the rank-0 row


def test_chrome_trace_unranked_events_get_own_row():
    tr = Tracer()
    tr.record(1.0, "lock.acquire", rank=0)
    tr.record(2.0, "retx.timeout", node=1)  # no rank field
    events = tr.to_chrome_trace()
    rows = {e["args"]["name"]: e["tid"]
            for e in events if e["ph"] == "M" and "tid" in e}
    instants = {e["name"]: e["tid"] for e in events if e["ph"] == "i"}
    assert instants["lock.acquire"] == rows["rank 0"]
    assert instants["retx.timeout"] == rows["(events)"]
    assert rows["(events)"] != rows["rank 0"]


# ------------------------------------------------------ protocol integration

def run_all(machine, gens):
    for g in gens:
        machine.sim.process(g)
    machine.run()


def test_protocol_emits_trace_events():
    machine = Machine(MachineConfig())
    tracer = Tracer()
    proto = HLRCProtocol(machine, GENIMA, tracer=tracer)
    region = proto.allocate("t", 8, home_policy="node:1")

    def worker(rank):
        yield from proto.read(rank, region, [rank % 8])
        yield from proto.write(rank, region, [rank % 8],
                               runs_per_page=1, bytes_per_page=64)
        yield from proto.lock(rank, 0)
        yield from proto.unlock(rank, 0)
        yield from proto.barrier(rank)

    run_all(machine, [worker(r) for r in range(16)])
    counts = tracer.counts()
    assert counts["fault.read"] > 0
    assert counts["lock.acquire"] == 16
    assert counts["lock.release"] == 16
    assert counts["barrier.enter"] == 16
    assert counts["barrier.exit"] == 16
    assert counts["interval.close"] >= 1
    assert counts["diff.flush"] >= 1


def test_untraced_protocol_pays_nothing():
    machine = Machine(MachineConfig())
    proto = HLRCProtocol(machine, BASE)
    assert proto.tracer is None

    def worker():
        yield from proto.barrier(0)

    # no exception from the _trace guard
    run_all(machine, [worker()] + [_b(proto, r) for r in range(1, 16)])


def _b(proto, rank):
    yield from proto.barrier(rank)


def test_trace_event_ordering_is_chronological():
    machine = Machine(MachineConfig())
    tracer = Tracer()
    proto = HLRCProtocol(machine, GENIMA, tracer=tracer)

    def worker(rank):
        yield from proto.lock(rank, 1)
        yield from proto.unlock(rank, 1)
        yield from proto.barrier(rank)

    run_all(machine, [worker(r) for r in range(16)])
    times = [e.t for e in tracer.events]
    assert times == sorted(times)


# -- columnar vs legacy tuple sink -----------------------------------------


def test_sink_arg_validated_and_selects_engine():
    import pytest
    with pytest.raises(ValueError):
        Tracer(sink="parquet")
    assert type(Tracer(sink="tuples")) is not type(Tracer())
    assert isinstance(Tracer(sink="tuples"), Tracer)


def _fill(tr, n=500):
    for i in range(n):
        tr.record(float(i) / 8, f"fam.{i % 7}", gid=i, rank=i % 4)
    return tr


def test_columnar_jsonl_matches_tuple_sink_bytewise():
    col = _fill(Tracer(capacity=None))
    tup = _fill(Tracer(capacity=None, sink="tuples"))
    assert col.to_jsonl() == tup.to_jsonl()
    assert col.counts() == tup.counts()
    assert col.events == tup.events


def test_columnar_matches_tuple_sink_under_eviction():
    col = _fill(Tracer(capacity=64), n=1000)
    tup = _fill(Tracer(capacity=64, sink="tuples"), n=1000)
    assert col.to_jsonl() == tup.to_jsonl()
    assert col.counts() == tup.counts()          # counts cover dropped
    assert [e.seq for e in col.events] == [e.seq for e in tup.events]
    assert col.count_prefix("fam") == 1000


def test_columnar_flush_is_transparent():
    col = Tracer(capacity=None)
    tup = Tracer(capacity=None, sink="tuples")
    for i in range(300):
        col.record(float(i), "x", i=i)
        tup.record(float(i), "x", i=i)
        if i % 37 == 0:
            col.flush()
            tup.flush()
    col.flush()
    assert col.to_jsonl() == tup.to_jsonl()
    assert col.between(10.0, 20.0) == tup.between(10.0, 20.0)
    assert col.filter("x") == tup.filter("x")


def test_columnar_flush_with_eviction_keeps_window_exact():
    col = Tracer(capacity=100)
    tup = Tracer(capacity=100, sink="tuples")
    for i in range(1000):
        col.record(float(i), "y", i=i)
        tup.record(float(i), "y", i=i)
        if i % 23 == 0:
            col.flush()
    assert col.to_jsonl() == tup.to_jsonl()
    assert col.counts() == tup.counts()


def test_columnar_clear_resets_but_keeps_admission_memo():
    col = Tracer(categories={"lock"})
    col.record(1.0, "lock.a")
    col.record(1.0, "fetch.b")
    col.clear()
    assert col.events == [] and col.counts() == {}
    col.record(2.0, "lock.a")
    assert col.count("lock.a") == 1
    assert [e.seq for e in col.events] == [1]


def test_columnar_sink_full_ladder_cell_bytewise():
    """Golden: both sinks on one full SVM ladder cell, byte-identical."""
    from repro.apps import APP_REGISTRY
    from repro.runtime.runner import run_svm
    from repro.svm import GENIMA

    outs = {}
    for sink in ("columnar", "tuples"):
        tracer = Tracer(capacity=None, sink=sink)
        run_svm(APP_REGISTRY["FFT"](), GENIMA,
                config=MachineConfig(), tracer=tracer)
        outs[sink] = tracer.to_jsonl()
    assert outs["columnar"] == outs["tuples"]
    assert outs["columnar"]  # non-trivial trace
