"""Named metric instruments and the per-machine registry.

Every simulated layer (protocol, VMMC, NIC, node, faults) historically
grew ad-hoc counter attributes that each consumer had to know about.
:class:`MetricsRegistry` is the single namespace those layers register
into instead: one hierarchical name per instrument, one ``snapshot()``
that serializes everything (the ``repro profile`` JSON and the
experiment tables both read it).

Three instrument kinds:

* :class:`Counter` — a registry-owned monotonic count (or sum); new
  metrics should be counters so the registry is their home.
* :class:`Gauge` — a named binding to a value computed on demand.
  Pre-existing layer counters (``VMMC.messages_sent``,
  ``NIC.packets_sent``, ...) are exported this way: the attribute
  stays a plain number — preserving value-capture semantics for all
  existing code — while the registry owns the *name*.
* :class:`~repro.sim.RunningStat` — streaming count/mean/min/max for
  sampled quantities (latencies, occupancies).

Names are dot-hierarchical (``svm.page_fetches``,
``nic.0.packets_sent``).  Re-registering a name rebinds it: layers
that can be instantiated more than once per machine (tests build a
bare ``VMMC`` next to a protocol-owned one) simply take over the name,
last instance wins.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..sim import RunningStat

__all__ = ["Counter", "Gauge", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """A registry-owned monotonic counter (integer or accumulated sum)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Number = 0):
        self.name = name
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r}: negative increment {amount!r}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value!r})"


class Gauge:
    """A named binding to a value read on demand."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], Number]):
        self.name = name
        self.fn = fn

    def read(self) -> Number:
        return self.fn()

    def __repr__(self) -> str:
        return f"Gauge({self.name!r})"


Instrument = Union[Counter, Gauge, RunningStat]


class MetricsRegistry:
    """One namespace of instruments per simulated machine.

    Registration can be *deferred*: a layer with many cheap instruments
    (the Machine's per-node NIC/node gauges — ~10 per node, 10k+ names
    at 1024 nodes) hands the registry a thunk via :meth:`defer` instead
    of registering eagerly.  Pending thunks run on the first namespace
    query (``get``/``names``/``snapshot``/iteration), so building a
    large machine costs O(1) registry work per node and a machine whose
    metrics are never read pays nothing at all.  Deferral changes only
    *when* names materialize, never instrument values: layers keep
    their own counters/stats live from construction and the thunk binds
    the existing objects.
    """

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}
        self._pending: List[Callable[["MetricsRegistry"], None]] = []

    # -------------------------------------------------------------- register

    def defer(self, register_fn: Callable[["MetricsRegistry"], None]) -> None:
        """Queue ``register_fn(registry)`` until the first query."""
        self._pending.append(register_fn)

    def _materialize(self) -> None:
        while self._pending:
            pending, self._pending = self._pending, []
            for fn in pending:
                fn(self)

    def counter(self, name: str, value: Number = 0) -> Counter:
        """Create (or rebind) a counter; returns the new instrument."""
        instrument = Counter(name, value)
        self._instruments[name] = instrument
        return instrument

    def gauge(self, name: str, fn: Callable[[], Number]) -> Gauge:
        """Bind ``name`` to ``fn()``, read at snapshot time."""
        instrument = Gauge(name, fn)
        self._instruments[name] = instrument
        return instrument

    def stat(self, name: str) -> RunningStat:
        """Create (or rebind) a RunningStat accumulator."""
        instrument = RunningStat()
        self._instruments[name] = instrument
        return instrument

    def register_stat(self, name: str, stat: RunningStat) -> RunningStat:
        """Bind ``name`` to an *existing* RunningStat.

        Layers that own their accumulator from construction (the NIC's
        delivery-latency stat) register it here at materialize time
        without resetting the values recorded so far.
        """
        self._instruments[name] = stat
        return stat

    def register_gauges(self, prefix: str, obj: object, *attrs: str) -> None:
        """Export plain counter attributes of ``obj`` as gauges.

        This is how layers with pre-existing ad-hoc counters join the
        registry without changing their hot-path increments.
        """
        for attr in attrs:
            getattr(obj, attr)  # fail fast on typos
            self.gauge(f"{prefix}.{attr}",
                       lambda o=obj, a=attr: getattr(o, a))

    # ----------------------------------------------------------------- query

    def get(self, name: str) -> Optional[Instrument]:
        if self._pending:
            self._materialize()
        return self._instruments.get(name)

    def names(self) -> Tuple[str, ...]:
        if self._pending:
            self._materialize()
        return tuple(sorted(self._instruments))

    def __contains__(self, name: str) -> bool:
        if self._pending:
            self._materialize()
        return name in self._instruments

    def __iter__(self) -> Iterator[Tuple[str, Instrument]]:
        if self._pending:
            self._materialize()
        return iter(sorted(self._instruments.items()))

    def __len__(self) -> int:
        if self._pending:
            self._materialize()
        return len(self._instruments)

    # -------------------------------------------------------------- snapshot

    def snapshot(self) -> Dict[str, object]:
        """All instruments as plain JSON-serializable values.

        Counters and gauges flatten to numbers; RunningStats to a
        ``{count, total, mean, min, max, variance, stdev}`` dict
        (min/max are None while empty, never ``inf``; variance/stdev
        are the streaming Welford values, 0.0 below two samples).
        """
        out: Dict[str, object] = {}
        for name, instrument in self:
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                out[name] = instrument.read()
            else:
                out[name] = {
                    "count": instrument.count,
                    "total": instrument.total,
                    "mean": instrument.mean,
                    "min": instrument.min if instrument.count else None,
                    "max": instrument.max if instrument.count else None,
                    "variance": instrument.variance,
                    "stdev": instrument.stdev,
                }
        return out
