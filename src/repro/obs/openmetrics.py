"""OpenMetrics text exposition of registry snapshots and telemetry.

``repro metrics --openmetrics`` renders a finished run's
:meth:`~repro.obs.MetricsRegistry.snapshot` — and, when the run was
sampled, its :class:`~repro.obs.TimeSeriesSampler` summary — in the
OpenMetrics text format, so the simulated cluster scrapes like a real
one (PAPERS.md: "The NIC should be part of the OS").

Determinism is part of the contract: families are emitted in sorted
name order and label sets in sorted label order, so two identical runs
produce byte-identical expositions regardless of registration order or
``--jobs`` fan-out.  Registry names like ``nic.3.packets_sent``
factor into one family per metric (``repro_nic_packets_sent``) with
the numeric path component as a ``node`` label, which is what makes a
1024-node snapshot a handful of families instead of 10k.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

__all__ = ["render_openmetrics"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    """A legal OpenMetrics metric-name fragment."""
    out = _NAME_OK.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    """Escape a label value per the OpenMetrics ABNF."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value) -> str:
    """Canonical sample value: integers bare, floats via repr (the
    shortest round-trip form, so expositions are deterministic)."""
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"'
                     for k, v in sorted(pairs))
    return "{" + inner + "}"


def _split_name(name: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Registry name -> (family fragment, labels).

    The first purely-numeric dotted component becomes the ``node``
    label (``nic.3.packets_sent`` -> ``nic_packets_sent{node="3"}``);
    everything else joins the family name.
    """
    parts = name.split(".")
    labels: List[Tuple[str, str]] = []
    kept = []
    for part in parts:
        if not labels and part.isdigit():
            labels.append(("node", part))
        else:
            kept.append(part)
    return "_".join(_sanitize(p) for p in kept), labels


class _Family:
    __slots__ = ("name", "kind", "help", "lines")

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.lines: List[str] = []


def _families_from_snapshot(snapshot: Dict[str, object],
                            prefix: str) -> Dict[str, _Family]:
    families: Dict[str, _Family] = {}

    def fam(name: str, kind: str, help_text: str) -> _Family:
        f = families.get(name)
        if f is None:
            f = families[name] = _Family(name, kind, help_text)
        return f

    for name in sorted(snapshot):
        value = snapshot[name]
        fragment, labels = _split_name(name)
        full = f"{prefix}_{fragment}"
        if isinstance(value, dict):
            # A RunningStat snapshot: expose as an OpenMetrics summary
            # (count/sum) plus min/max/stdev gauges.
            f = fam(full, "summary", f"registry stat {fragment}")
            f.lines.append(f"{full}_count{_labels(labels)} "
                           f"{_fmt(value.get('count', 0))}")
            f.lines.append(f"{full}_sum{_labels(labels)} "
                           f"{_fmt(value.get('total', 0.0))}")
            for part in ("min", "max", "stdev"):
                g = fam(f"{full}_{part}", "gauge",
                        f"registry stat {fragment} {part}")
                g.lines.append(f"{full}_{part}{_labels(labels)} "
                               f"{_fmt(value.get(part))}")
        else:
            f = fam(full, "gauge", f"registry metric {fragment}")
            f.lines.append(f"{full}{_labels(labels)} {_fmt(value)}")
    return families


def _families_from_telemetry(summary: dict,
                             prefix: str) -> Dict[str, _Family]:
    families: Dict[str, _Family] = {}
    metrics = summary.get("metrics", {})
    for metric in sorted(metrics):
        entry = metrics[metric]
        base = f"{prefix}_ts_{_sanitize(metric.replace('.', '_'))}"
        hist = entry.get("hist", {})
        f = _Family(base, "histogram",
                    f"sampled telemetry {metric} "
                    f"({entry.get('kind', 'gauge')}, log2 buckets)")
        cumulative = 0
        for le, count in hist.get("buckets", []):
            cumulative += count
            f.lines.append(f'{base}_bucket{{le="{_fmt(le)}"}} '
                           f"{cumulative}")
        f.lines.append(f'{base}_bucket{{le="+Inf"}} '
                       f"{_fmt(hist.get('count', 0))}")
        f.lines.append(f"{base}_count {_fmt(hist.get('count', 0))}")
        agg = entry.get("agg", {})
        total = agg.get("mean", 0.0) * agg.get("count", 0)
        f.lines.append(f"{base}_sum {_fmt(total)}")
        families[base] = f
        peak = _Family(f"{base}_peak", "gauge",
                       f"peak sampled {metric} (node label = argmax)")
        peak.lines.append(
            f'{base}_peak{{node="{agg.get("peak_node", -1)}"}} '
            f"{_fmt(agg.get('peak', 0.0))}")
        families[peak.name] = peak
        skew = entry.get("skew")
        if skew is not None:
            s = _Family(f"{base}_skew", "gauge",
                        f"max/median per-node skew of {metric}")
            s.lines.append(f"{base}_skew {_fmt(skew.get('ratio'))}")
            families[s.name] = s
    return families


def render_openmetrics(snapshot: Optional[Dict[str, object]] = None,
                       telemetry: Optional[dict] = None,
                       prefix: str = "repro") -> str:
    """The OpenMetrics text exposition (ends with ``# EOF``).

    ``snapshot`` is a :meth:`MetricsRegistry.snapshot` mapping;
    ``telemetry`` a :meth:`TimeSeriesSampler.summary` dict.  Either
    may be None; families render in sorted order either way.
    """
    families: Dict[str, _Family] = {}
    if snapshot:
        families.update(_families_from_snapshot(snapshot, prefix))
    if telemetry:
        families.update(_families_from_telemetry(telemetry, prefix))
    out: List[str] = []
    for name in sorted(families):
        f = families[name]
        out.append(f"# HELP {f.name} {f.help}")
        out.append(f"# TYPE {f.name} {f.kind}")
        # Lines stay in append order: builders emit them sorted by
        # source name already, and histogram buckets must keep their
        # ascending-le order (lexical sorting would put +Inf first).
        out.extend(f.lines)
    out.append("# EOF")
    return "\n".join(out) + "\n"
