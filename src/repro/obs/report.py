"""Rendering for profiles: ASCII (terminal) and self-contained HTML.

The ASCII report mirrors the paper's Figure 3: one stacked breakdown
per protocol variant, normalized to the first variant's total (pass the
Base profile first to get the paper's normalization), followed by a
per-rank phase timeline and a per-node station-utilization table.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..sim import BUCKETS
from .profiler import STATIONS, Profile

__all__ = ["render_profiles", "render_utilization", "render_timeline",
           "render_profiles_html"]

BAR_WIDTH = 50
#: one letter per Figure-3 bucket, for the timeline strips.
BUCKET_LETTERS = {"compute": "C", "data": "D", "lock": "L",
                  "acqrel": "A", "barrier": "B"}
#: bucket colors for the HTML report (colorblind-safe-ish).
BUCKET_COLORS = {"compute": "#4477aa", "data": "#ee6677",
                 "lock": "#228833", "acqrel": "#ccbb44",
                 "barrier": "#aa3377"}


def _mean_total(profile: Profile) -> float:
    return sum(profile.mean_buckets().values())


def render_profiles(profiles: Sequence[Profile]) -> str:
    """Figure-3-style stacked breakdowns, one block per variant."""
    if not profiles:
        return "(no profiles)"
    norm = _mean_total(profiles[0]) or 1.0
    first = profiles[0]
    lines = [f"{first.app}: execution-time breakdown per variant "
             f"(normalized to {first.system} total, "
             f"{first.nprocs} processors)"]
    for profile in profiles:
        mean = profile.mean_buckets()
        total = sum(mean.values())
        lines.append("")
        lines.append(f"{profile.system:10s} total {total / 1000:10.1f} ms"
                     f"  ({total / norm * 100:5.1f}% of {first.system})"
                     f"   wall {profile.time_us / 1000:.1f} ms")
        for name in BUCKETS:
            value = mean[name]
            frac = value / norm
            bar = "#" * int(round(frac * BAR_WIDTH))
            lines.append(f"  {name:8s} |{bar:<{BAR_WIDTH}s}| "
                         f"{frac * 100:5.1f}%  {value / 1000:10.1f} ms")
        resid = profile.max_residual_us
        status = "ok" if profile.accounting_ok else "VIOLATED"
        lines.append(f"  accounting: sum(buckets) == wall per rank "
                     f"{status} (max residual {resid:.2e} us)")
    return "\n".join(lines)


def render_timeline(profile: Profile, width: int = 64) -> str:
    """Per-rank phase strips: the dominant bucket letter per column.

    Each column covers one or more profiler slices (downsampled to
    ``width``); ``.`` marks columns where the rank accrued no time
    (not yet started, or finished).
    """
    slices = profile.slices
    if not slices:
        return "(no timeline: run shorter than one slice)"
    columns = min(width, len(slices))
    per_col = len(slices) / columns
    lines = [f"phase timeline (slice {profile.slice_us:g} us, "
             f"{len(slices)} slices, C=compute D=data L=lock "
             f"A=acqrel B=barrier)"]
    for rank in range(profile.nprocs):
        strip = []
        for col in range(columns):
            lo = int(col * per_col)
            hi = max(int((col + 1) * per_col), lo + 1)
            agg: Dict[str, float] = dict.fromkeys(BUCKETS, 0.0)
            for s in slices[lo:hi]:
                for name, value in s["ranks"][rank].items():
                    agg[name] += value
            top = max(agg, key=lambda n: agg[n])
            strip.append(BUCKET_LETTERS[top] if agg[top] > 0.0 else ".")
        lines.append(f"  rank {rank:3d} {''.join(strip)}")
    return "\n".join(lines)


def render_utilization(profile: Profile) -> str:
    """Per-node busy fractions of the contended stations."""
    # Local import: repro.experiments pulls the experiment cache; only
    # the tiny table formatter is needed here.
    from ..experiments.reporting import format_table
    rows: List[Sequence] = []
    for node_id, util in enumerate(profile.utilization):
        rows.append((str(node_id),)
                    + tuple(util[name] for name in STATIONS))
    return format_table(
        ["node", "host-proto", "lanai", "pci", "link"], rows,
        title=("utilization (busy fraction over the profiled window; "
               "host-proto is the floating protocol processor)"))


def render_profiles_html(profiles: Sequence[Profile]) -> str:
    """A dependency-free HTML page with stacked bars per variant."""
    if not profiles:
        return "<html><body>(no profiles)</body></html>"
    norm = _mean_total(profiles[0]) or 1.0
    first = profiles[0]
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{first.app} profile</title>",
        "<style>body{font-family:sans-serif;margin:2em}"
        ".bar{display:flex;height:26px;margin:2px 0;width:640px;"
        "background:#f2f2f2}"
        ".seg{height:100%}"
        "table{border-collapse:collapse;margin:1em 0}"
        "td,th{border:1px solid #999;padding:3px 8px;text-align:right}"
        ".legend span{display:inline-block;margin-right:1em}"
        ".swatch{display:inline-block;width:12px;height:12px;"
        "margin-right:4px}</style></head><body>",
        f"<h1>{first.app}: execution-time breakdown per variant</h1>",
        f"<p>Normalized to {first.system} total "
        f"({first.nprocs} processors). Reproduces Figure 3.</p>",
        "<div class='legend'>",
    ]
    for name in BUCKETS:
        parts.append(f"<span><span class='swatch' style='background:"
                     f"{BUCKET_COLORS[name]}'></span>{name}</span>")
    parts.append("</div>")
    for profile in profiles:
        mean = profile.mean_buckets()
        total = sum(mean.values())
        parts.append(f"<h3>{profile.system} &mdash; "
                     f"{total / 1000:.1f} ms "
                     f"({total / norm * 100:.1f}% of {first.system})</h3>")
        parts.append("<div class='bar'>")
        for name in BUCKETS:
            pct = mean[name] / norm * 100
            parts.append(
                f"<div class='seg' title='{name}: {pct:.1f}%' "
                f"style='width:{pct:.2f}%;background:"
                f"{BUCKET_COLORS[name]}'></div>")
        parts.append("</div>")
        parts.append("<table><tr><th>node</th>"
                     + "".join(f"<th>{s}</th>" for s in STATIONS)
                     + "</tr>")
        for node_id, util in enumerate(profile.utilization):
            parts.append(f"<tr><td>{node_id}</td>"
                         + "".join(f"<td>{util[s]:.3f}</td>"
                                   for s in STATIONS)
                         + "</tr>")
        parts.append("</table>")
        status = "ok" if profile.accounting_ok else "VIOLATED"
        parts.append(f"<p>time accounting {status} "
                     f"(max residual {profile.max_residual_us:.2e} us)</p>")
    parts.append("</body></html>")
    return "".join(parts)
