"""Time-sliced profiling of a simulated run.

The paper's argument is a cost-accounting one: Figure 3's per-process
execution-time breakdowns and the NI-occupancy discussion explain *why*
each NI mechanism helps.  A single end-of-run :class:`TimeBuckets` per
rank cannot show *when* the time went, so :class:`PhaseProfiler`
samples the per-rank buckets and the contended hardware stations at
fixed slice boundaries (an engine-level hook, no simulation events) and
assembles:

* a **phase timeline** — per slice, per rank, how much time landed in
  each Figure-3 bucket during that slice;
* **utilization timelines** — per slice, per node, the busy fraction of
  the host protocol processor, the NI LANai, the PCI/DMA path and the
  outgoing link;
* a **profile** — the above plus final breakdowns, per-rank wall times,
  the machine's metric snapshot, and the time-accounting residuals.

The always-on invariant behind the bugfix half of this module: every
blocked microsecond of a rank's timed section must land in exactly one
bucket, so ``sum(buckets) == wall time`` within
:data:`TIME_TOLERANCE_US`.  :func:`check_time_accounting` evaluates it
on any :class:`~repro.runtime.results.RunResult`; the runtime invariant
checker and the ``repro profile`` CLI both call it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim import BUCKETS

__all__ = ["PhaseProfiler", "Profile", "TIME_TOLERANCE_US",
           "check_time_accounting"]

#: |sum(buckets) - wall| beyond this is an accounting bug (microseconds).
TIME_TOLERANCE_US = 1e-6

#: stations sampled per node, in report order.
STATIONS = ("host_proto", "lanai", "pci", "link")

#: profile JSON schema version (bump on breaking change).
PROFILE_SCHEMA = 1


def check_time_accounting(result,
                          tol: float = TIME_TOLERANCE_US
                          ) -> List[Tuple[int, float, float]]:
    """Evaluate the sum-equals-wall invariant on a run result.

    Returns ``(rank, wall_us, residual_us)`` triples for every rank
    whose bucket sum misses its timed-section wall time by more than
    ``tol`` (empty list == invariant holds).  Results without per-rank
    wall times (sequential / hardware-DSM runs) trivially pass.
    """
    violations = []
    if not result.wall_us or not result.buckets:
        return violations
    for rank, (wall, buckets) in enumerate(zip(result.wall_us,
                                               result.buckets)):
        residual = buckets.total - wall
        if abs(residual) > tol:
            violations.append((rank, wall, residual))
    return violations


@dataclass
class Profile:
    """Everything one profiled run produces, JSON-serializable."""

    app: str
    system: str
    nodes: int
    nprocs: int
    slice_us: float
    time_us: float
    wall_us: List[float]
    buckets: List[Dict[str, float]]
    barrier_protocol_us: List[float]
    residual_us: List[float]
    slices: List[dict] = field(default_factory=list)
    utilization: List[Dict[str, float]] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def max_residual_us(self) -> float:
        return max((abs(r) for r in self.residual_us), default=0.0)

    @property
    def accounting_ok(self) -> bool:
        return self.max_residual_us <= TIME_TOLERANCE_US

    def mean_buckets(self) -> Dict[str, float]:
        out = {name: 0.0 for name in BUCKETS}
        if not self.buckets:
            return out
        for b in self.buckets:
            for name in BUCKETS:
                out[name] += b.get(name, 0.0)
        return {name: v / len(self.buckets) for name, v in out.items()}

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "app": self.app,
            "system": self.system,
            "nodes": self.nodes,
            "nprocs": self.nprocs,
            "slice_us": self.slice_us,
            "time_us": self.time_us,
            "invariant": {
                "max_residual_us": self.max_residual_us,
                "tolerance_us": TIME_TOLERANCE_US,
                "ok": self.accounting_ok,
            },
            "ranks": [
                {
                    "rank": rank,
                    "wall_us": self.wall_us[rank],
                    "residual_us": self.residual_us[rank],
                    "barrier_protocol_us": self.barrier_protocol_us[rank],
                    "buckets": self.buckets[rank],
                }
                for rank in range(len(self.buckets))
            ],
            "timeline": {"slice_us": self.slice_us, "slices": self.slices},
            "utilization": self.utilization,
            "metrics": self.metrics,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_payload(cls, data: dict) -> "Profile":
        """Inverse of :meth:`to_dict` (used by the run-cache codec).

        Lossless for everything the reports consume, so a profile that
        round-trips through the persistent store renders byte-identical
        to one built live by the profiler.
        """
        ranks = data.get("ranks", [])
        return cls(
            app=data["app"],
            system=data["system"],
            nodes=data["nodes"],
            nprocs=data["nprocs"],
            slice_us=data["slice_us"],
            time_us=data["time_us"],
            wall_us=[r["wall_us"] for r in ranks],
            buckets=[dict(r["buckets"]) for r in ranks],
            barrier_protocol_us=[r["barrier_protocol_us"]
                                 for r in ranks],
            residual_us=[r["residual_us"] for r in ranks],
            slices=list(data.get("timeline", {}).get("slices", [])),
            utilization=list(data.get("utilization", [])),
            metrics=dict(data.get("metrics", {})),
        )


class PhaseProfiler:
    """Samples bucket and station state at fixed slice boundaries.

    Attach to an SVM backend *before* running, pass the instance to the
    runner (``run_svm(..., profiler=p)``), then read
    :attr:`~PhaseProfiler.slices` or build a :class:`Profile`::

        profiler = PhaseProfiler(slice_us=1000.0)
        result = run_svm(app, GENIMA, profiler=profiler)
        profile = profiler.build_profile(result)

    Sampling uses :meth:`Simulator.add_slice_hook`: no events enter the
    heap, so an unprofiled run's schedule (and trace) is untouched, and
    the simulation still terminates when its processes do.
    """

    def __init__(self, slice_us: float = 1000.0):
        if slice_us <= 0:
            raise ValueError(f"slice_us must be positive, got {slice_us!r}")
        self.slice_us = slice_us
        self.slices: List[dict] = []
        self.protocol = None
        self.machine = None
        self.sim = None
        self._hook = None
        self._tracer = None
        self._last_t = 0.0
        self._t_attach = 0.0
        self._t_final: Optional[float] = None
        self._last_buckets: List[Dict[str, float]] = []
        self._last_busy: List[Dict[str, float]] = []
        self._base_busy: List[Dict[str, float]] = []

    # ---------------------------------------------------------------- wiring

    def attach(self, backend) -> "PhaseProfiler":
        """Hook into an SVM backend (must expose protocol + machine)."""
        if self._hook is not None:
            raise RuntimeError("profiler already attached")
        self.protocol = backend.protocol
        self.machine = backend.machine
        self.sim = self.machine.sim
        self._tracer = getattr(self.protocol, "tracer", None)
        nprocs = self.machine.config.total_procs
        self._t_attach = self._last_t = self.sim.now
        self._last_buckets = [dict.fromkeys(BUCKETS, 0.0)
                              for _ in range(nprocs)]
        self._last_busy = [self._busy_now(n)
                           for n in range(self.machine.config.nodes)]
        self._base_busy = [dict(b) for b in self._last_busy]
        self._hook = self.sim.add_slice_hook(self.slice_us, self._sample)
        return self

    def on_timed_start(self, rank: int) -> None:
        """The runner resets rank accounting at the timed-section start;
        re-baseline so the reset does not read as negative progress."""
        self._last_buckets[rank] = dict.fromkeys(BUCKETS, 0.0)

    def finalize(self) -> None:
        """Take the trailing partial slice and detach the engine hook."""
        if self._hook is None:
            return
        if self.sim.now > self._last_t:
            self._sample(self.sim.now)
        self._t_final = self.sim.now
        self.sim.remove_slice_hook(self._hook)
        self._hook = None

    # -------------------------------------------------------------- sampling

    def _stations(self, node_id: int) -> Dict[str, object]:
        node = self.machine.nodes[node_id]
        nic = self.machine.nics[node_id]
        return {"host_proto": node.protocol_proc, "lanai": nic.lanai,
                "pci": nic.pci, "link": nic.out_link}

    def _busy_now(self, node_id: int) -> Dict[str, float]:
        return {name: station.sample_busy()
                for name, station in self._stations(node_id).items()}

    def _sample(self, t: float) -> None:
        width = t - self._last_t
        if width <= 0:
            return
        ranks = []
        for rank, last in enumerate(self._last_buckets):
            current = self.protocol.buckets[rank].as_dict()
            delta = {}
            for name in BUCKETS:
                cur = current[name]
                # A smaller value means the accumulator was replaced
                # (timed-section reset): the fresh value is the delta.
                delta[name] = cur - last[name] if cur >= last[name] else cur
            self._last_buckets[rank] = current
            ranks.append(delta)
        utilization = []
        for node_id, last in enumerate(self._last_busy):
            busy = self._busy_now(node_id)
            utilization.append({
                name: (busy[name] - last[name]) / width
                for name in STATIONS
            })
            self._last_busy[node_id] = busy
        self.slices.append({"t0": self._last_t, "t1": t,
                            "ranks": ranks, "utilization": utilization})
        self._last_t = t
        # Seal the tracer's active column block once per slice: a long
        # traced run grows a list of frozen segments instead of one
        # ever-reallocating array (purely observational — no events).
        tracer = self._tracer
        if tracer is not None:
            flush = getattr(tracer, "flush", None)
            if flush is not None:
                flush()

    # --------------------------------------------------------------- profile

    def utilization_totals(self) -> List[Dict[str, float]]:
        """Per node: busy fraction of each station over the profiled
        window (attach to finalize)."""
        t_end = self._t_final if self._t_final is not None else self.sim.now
        span = t_end - self._t_attach
        if span <= 0:
            return [dict.fromkeys(STATIONS, 0.0) for _ in self._base_busy]
        out = []
        for node_id, base in enumerate(self._base_busy):
            busy = self._busy_now(node_id)
            out.append({name: (busy[name] - base[name]) / span
                        for name in STATIONS})
        return out

    def build_profile(self, result) -> Profile:
        """Assemble the JSON-ready profile for a finished run."""
        if self._hook is not None:
            self.finalize()
        wall = list(result.wall_us)
        buckets = [b.as_dict() for b in result.buckets]
        residuals = [b.total - w
                     for b, w in zip(result.buckets, wall)]
        return Profile(
            app=result.app,
            system=result.system,
            nodes=self.machine.config.nodes,
            nprocs=result.nprocs,
            slice_us=self.slice_us,
            time_us=result.time_us,
            wall_us=wall,
            buckets=buckets,
            barrier_protocol_us=list(result.barrier_protocol_us),
            residual_us=residuals,
            slices=self.slices,
            utilization=self.utilization_totals(),
            metrics=self.machine.metrics.snapshot(),
        )
