"""Observability layer: metrics registry, time-sliced profiling,
sim-time telemetry sampling, report rendering, and the
time-accounting invariant."""

from .dash import render_dash, render_dash_html, sparkline
from .metrics import Counter, Gauge, MetricsRegistry
from .openmetrics import render_openmetrics
from .profiler import (PROFILE_SCHEMA, STATIONS, TIME_TOLERANCE_US,
                       PhaseProfiler, Profile, check_time_accounting)
from .report import (render_profiles, render_profiles_html,
                     render_timeline, render_utilization)
from .timeseries import (TS_SCHEMA, LogHistogram, TimeSeriesSampler,
                         telemetry_brief)

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "Profile",
    "PROFILE_SCHEMA",
    "STATIONS",
    "TIME_TOLERANCE_US",
    "TS_SCHEMA",
    "TimeSeriesSampler",
    "check_time_accounting",
    "render_dash",
    "render_dash_html",
    "render_openmetrics",
    "render_profiles",
    "render_profiles_html",
    "render_timeline",
    "render_utilization",
    "sparkline",
    "telemetry_brief",
]
