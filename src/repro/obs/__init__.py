"""Observability layer: metrics registry, time-sliced profiling,
report rendering, and the time-accounting invariant."""

from .metrics import Counter, Gauge, MetricsRegistry
from .profiler import (PROFILE_SCHEMA, STATIONS, TIME_TOLERANCE_US,
                       PhaseProfiler, Profile, check_time_accounting)
from .report import (render_profiles, render_profiles_html,
                     render_timeline, render_utilization)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "PhaseProfiler",
    "Profile",
    "PROFILE_SCHEMA",
    "STATIONS",
    "TIME_TOLERANCE_US",
    "check_time_accounting",
    "render_profiles",
    "render_profiles_html",
    "render_timeline",
    "render_utilization",
]
