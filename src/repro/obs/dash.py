"""The ``repro dash`` dashboard: sparklines, hot nodes, phase overlay.

One screen answers the telemetry pipeline's motivating question —
*which node, when* — for a finished sampled run:

* per metric, an ASCII **sparkline** of the per-slice maximum over
  nodes (downsampled to the terminal width, the
  :func:`~repro.obs.report.render_timeline` idiom);
* a **top-k hot-node table** ranked by total (counters) or mean level
  (gauges), plus the max/median skew line that makes one hot KV shard
  among 1023 idle nodes readable at a glance;
* optionally, a **phase overlay** strip from a
  :class:`~repro.obs.PhaseProfiler` run alongside, so a queue-depth
  spike lines up with the barrier (or lock) phase that caused it.

:func:`render_dash_html` emits the same content as a dependency-free
HTML page (inline styles, no scripts) for the CI artifact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim import BUCKETS
from .report import BUCKET_LETTERS
from .timeseries import TimeSeriesSampler

__all__ = ["sparkline", "render_dash", "render_dash_html"]

#: eight levels, empty to full.
SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 64) -> str:
    """Max-pooled downsampling of ``values`` into ``width`` glyphs,
    scaled against the global maximum (all-zero input renders flat)."""
    if not values:
        return ""
    columns = min(width, len(values))
    per_col = len(values) / columns
    peak = max(values)
    out = []
    for col in range(columns):
        lo = int(col * per_col)
        hi = max(int((col + 1) * per_col), lo + 1)
        v = max(values[lo:hi])
        if peak <= 0:
            out.append(SPARK_CHARS[0])
        else:
            level = int(round(v / peak * (len(SPARK_CHARS) - 2)))
            out.append(SPARK_CHARS[1 + max(level, 0)]
                       if v > 0 else SPARK_CHARS[0])
    return "".join(out)


def _phase_strip(profile, width: int) -> Optional[str]:
    """Dominant bucket letter per column, summed over ranks."""
    slices = getattr(profile, "slices", None)
    if not slices:
        return None
    columns = min(width, len(slices))
    per_col = len(slices) / columns
    strip = []
    for col in range(columns):
        lo = int(col * per_col)
        hi = max(int((col + 1) * per_col), lo + 1)
        agg: Dict[str, float] = dict.fromkeys(BUCKETS, 0.0)
        for s in slices[lo:hi]:
            for rank_delta in s["ranks"]:
                for name, value in rank_delta.items():
                    agg[name] += value
        top = max(agg, key=lambda n: agg[n])
        strip.append(BUCKET_LETTERS[top] if agg[top] > 0.0 else ".")
    return "".join(strip)


def _fmt_value(v: float) -> str:
    if v == int(v) and abs(v) < 1e12:
        return str(int(v))
    return f"{v:.2f}"


def _skew_line(skew: dict) -> str:
    ratio = skew.get("ratio")
    label = "inf" if ratio is None else f"{ratio:.1f}x"
    return (f"skew max/median: {label} "
            f"(max {_fmt_value(skew.get('max', 0.0))}, "
            f"median {_fmt_value(skew.get('median', 0.0))})")


def _metric_blocks(sampler: TimeSeriesSampler, top_k: int,
                   width: int) -> List[dict]:
    """Per-metric render model shared by the ASCII and HTML views."""
    blocks = []
    for metric in sampler.metrics():
        times, _sums, maxima, _argmax = sampler.series(metric)
        series = sampler._series[metric]
        per_node = any(n is not None for n in series.tracks)
        block = {
            "metric": metric,
            "kind": series.kind,
            "spark": sparkline(maxima, width),
            "samples": len(times),
            "peak": max(maxima) if maxima else 0.0,
            "top": sampler.top_nodes(metric, top_k) if per_node else [],
            "skew": sampler.skew(metric) if per_node else None,
        }
        blocks.append(block)
    return blocks


def render_dash(sampler: TimeSeriesSampler, profile=None,
                title: str = "telemetry", top_k: int = 8,
                width: int = 64) -> str:
    """The ASCII dashboard for one sampled run."""
    if not sampler.metrics():
        return "(no telemetry: no probes registered)"
    t0 = sampler.times[0] if sampler.times else 0.0
    t1 = sampler.times[-1] if sampler.times else 0.0
    lines = [f"{title} — {len(sampler.times)} samples @ "
             f"{sampler.cadence_us * sampler._stride:g} us, "
             f"window {t0 / 1000:.1f}..{t1 / 1000:.1f} ms"]
    overlay = _phase_strip(profile, width) if profile is not None else None
    if overlay:
        lines.append("")
        lines.append(f"  {'phase':16s} {overlay}")
        lines.append(f"  {'':16s} (C=compute D=data L=lock A=acqrel "
                     "B=barrier)")
    for block in _metric_blocks(sampler, top_k, width):
        lines.append("")
        lines.append(f"  {block['metric']:16s} {block['spark']}")
        detail = (f"per-slice max, peak "
                  f"{_fmt_value(block['peak'])}")
        if block["skew"] is not None:
            detail += "; " + _skew_line(block["skew"])
        lines.append(f"  {'':16s} {detail}")
        if block["top"]:
            ranked = "  ".join(
                f"n{node}={_fmt_value(value)}"
                for node, value in block["top"])
            what = ("total" if block["kind"] == "counter"
                    else "mean level")
            lines.append(f"  {'':16s} hot nodes ({what}): {ranked}")
    return "\n".join(lines)


def render_dash_html(sampler: TimeSeriesSampler, profile=None,
                     title: str = "telemetry", top_k: int = 8,
                     width: int = 96) -> str:
    """Dependency-free HTML dashboard (inline styles, no scripts)."""
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{title}</title>",
        "<style>body{font-family:sans-serif;margin:2em}"
        "pre.spark{font-size:18px;line-height:1;margin:2px 0}"
        "table{border-collapse:collapse;margin:4px 0 1em}"
        "td,th{border:1px solid #999;padding:2px 8px;text-align:right}"
        "h3{margin-bottom:2px}.meta{color:#555}</style></head><body>",
        f"<h1>{title}</h1>",
    ]
    t0 = sampler.times[0] if sampler.times else 0.0
    t1 = sampler.times[-1] if sampler.times else 0.0
    parts.append(
        f"<p class='meta'>{len(sampler.times)} samples @ "
        f"{sampler.cadence_us * sampler._stride:g} us sim time, window "
        f"{t0 / 1000:.1f}&ndash;{t1 / 1000:.1f} ms</p>")
    overlay = _phase_strip(profile, width) if profile is not None else None
    if overlay:
        parts.append("<h3>phase</h3>")
        parts.append(f"<pre class='spark'>{overlay}</pre>")
        parts.append("<p class='meta'>C=compute D=data L=lock "
                     "A=acqrel B=barrier</p>")
    for block in _metric_blocks(sampler, top_k, width):
        parts.append(f"<h3>{block['metric']}</h3>")
        parts.append(f"<pre class='spark'>{block['spark']}</pre>")
        detail = (f"per-slice max, peak {_fmt_value(block['peak'])} "
                  f"({block['kind']})")
        if block["skew"] is not None:
            detail += "; " + _skew_line(block["skew"])
        parts.append(f"<p class='meta'>{detail}</p>")
        if block["top"]:
            what = ("total" if block["kind"] == "counter"
                    else "mean level")
            parts.append(f"<table><tr><th>hot node</th><th>{what}</th>"
                         "</tr>")
            for node, value in block["top"]:
                parts.append(f"<tr><td>{node}</td>"
                             f"<td>{_fmt_value(value)}</td></tr>")
            parts.append("</table>")
    parts.append("</body></html>")
    return "".join(parts)
