"""Sim-time telemetry: sampled time series over a running machine.

The paper's argument is about *when* overhead happens — asynchronous
protocol processing interrupting compute — but every instrument in
:mod:`repro.obs.metrics` is an end-of-run snapshot.  At datacenter
scale the aggregate actively hides the story: one hot KV shard can
saturate a single node's NI while 1023 idle nodes average it away.

:class:`TimeSeriesSampler` closes the gap without perturbing a single
event.  It rides :meth:`repro.sim.Simulator.add_slice_hook` (boundary
crossings fire lazily; no heap events), polls registered *probes* —
per-node NI queue depth, in-flight packets, outstanding retransmits,
lock wait depth, page-fault and invalidation counters — and folds each
reading into

* a per-``(metric, node)`` :class:`LogHistogram` plus
  :class:`~repro.sim.RunningStat` (O(buckets) memory per node, so a
  1024-node machine stays cheap), and
* one columnar per-metric series (``array``-backed, the trace-sink
  idiom): per-slice sum, max, and argmax node, bounded by decimation —
  when the series fills, every second point is dropped and the keep
  stride doubles, so memory is O(max_samples) for any run length.

On top of the series sit the scale-aware reductions:
:meth:`~TimeSeriesSampler.summary` produces per-metric rollups, top-k
hot-node tables and a max/median skew report that makes a hot shard
visible in one line.

Sampling is strictly opt-in: a run without a sampler attached has no
hook, takes no samples and stays byte-identical to pre-telemetry
builds (``tests/test_golden.py`` pins this).  With a tracer handed to
the constructor the sampler additionally emits ``ts.sample`` /
``ts.rollup`` records (declared in :mod:`repro.sim.trace_schema`) so
the offline tooling can join telemetry with the protocol event stream.
"""

from __future__ import annotations

import math
from array import array
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim import RunningStat

__all__ = ["LogHistogram", "TimeSeriesSampler", "TS_SCHEMA",
           "telemetry_brief"]

#: telemetry summary schema version (bump on breaking change).
TS_SCHEMA = 1


class LogHistogram:
    """Streaming histogram over power-of-two buckets.

    Bucket ``e`` counts values in ``[2**(e-1), 2**e)`` (half-open, via
    ``math.frexp``); non-positive values land in a dedicated zero
    bucket.  Memory is O(distinct exponents) — ~64 buckets cover the
    full double range — so one histogram per (node, metric) stays
    affordable at 1024 nodes where a reservoir of raw samples would
    not.
    """

    __slots__ = ("count", "zeros", "_buckets")

    def __init__(self):
        self.count = 0
        self.zeros = 0
        self._buckets: Dict[int, int] = {}

    def add(self, value: float) -> None:
        self.count += 1
        if value <= 0.0:
            self.zeros += 1
            return
        _, exp = math.frexp(value)
        self._buckets[exp] = self._buckets.get(exp, 0) + 1

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into self (cross-node aggregation)."""
        self.count += other.count
        self.zeros += other.zeros
        for exp, n in other._buckets.items():
            self._buckets[exp] = self._buckets.get(exp, 0) + n
        return self

    def buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` pairs, ascending, zeros first as
        ``(0.0, zeros)`` when present."""
        out: List[Tuple[float, int]] = []
        if self.zeros:
            out.append((0.0, self.zeros))
        out.extend((float(2 ** exp), self._buckets[exp])
                   for exp in sorted(self._buckets))
        return out

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile.

        An approximation by construction (within one power of two);
        0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for le, n in self.buckets():
            seen += n
            if seen >= target:
                return le
        return self.buckets()[-1][0]

    def to_dict(self) -> dict:
        return {"count": self.count,
                "buckets": [[le, n] for le, n in self.buckets()]}

    def __repr__(self) -> str:
        return (f"LogHistogram(count={self.count}, "
                f"buckets={len(self._buckets) + bool(self.zeros)})")


class _NodeTrack:
    """Per-(metric, node) accumulators: O(buckets), never O(samples)."""

    __slots__ = ("hist", "stat", "last_raw")

    def __init__(self):
        self.hist = LogHistogram()
        self.stat = RunningStat()
        self.last_raw: Optional[float] = None


class _Series:
    """One metric: its probes, per-node tracks and columnar series."""

    __slots__ = ("name", "kind", "probes", "vector", "tracks",
                 "sum_arr", "max_arr", "argmax_arr")

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind                     # "gauge" | "counter"
        #: scalar probes: (node, fn) pairs; node None == machine-wide.
        self.probes: List[Tuple[Optional[int], Callable[[], float]]] = []
        #: optional vector probe: fn() -> sequence of per-node values
        #: (one pass over shared state instead of O(nodes) closures).
        self.vector: Optional[Callable[[], Sequence[float]]] = None
        self.tracks: Dict[Optional[int], _NodeTrack] = {}
        self.sum_arr = array("d")
        self.max_arr = array("d")
        self.argmax_arr = array("l")

    def track(self, node: Optional[int]) -> _NodeTrack:
        t = self.tracks.get(node)
        if t is None:
            t = self.tracks[node] = _NodeTrack()
        return t


class TimeSeriesSampler:
    """Samples registered probes at fixed sim-time boundaries.

    Attach to an SVM backend before running, through the runner::

        sampler = TimeSeriesSampler(cadence_us=1000.0)
        result = run_svm(app, GENIMA, telemetry=sampler)
        print(result.telemetry["metrics"]["ni.queue_depth"]["skew"])

    ``cadence_us`` is the sampling slice width; ``max_samples`` bounds
    the columnar series (decimate-by-2 on overflow); ``top_k`` sizes
    the hot-node tables; ``tracer`` (optional) receives ``ts.*``
    records for kept samples.  Probes register through
    :meth:`probe_gauge` / :meth:`probe_counter` /
    :meth:`probe_vector`, normally from the layers'
    ``register_probes`` methods during :meth:`attach`.
    """

    def __init__(self, cadence_us: float = 1000.0,
                 max_samples: int = 2048, top_k: int = 8,
                 tracer=None):
        if cadence_us <= 0:
            raise ValueError(
                f"cadence_us must be positive, got {cadence_us!r}")
        if max_samples < 2:
            raise ValueError(
                f"max_samples must be >= 2, got {max_samples!r}")
        self.cadence_us = cadence_us
        self.max_samples = max_samples
        self.top_k = top_k
        self.tracer = tracer
        self.times = array("d")
        self._series: Dict[str, _Series] = {}
        self._order: List[str] = []
        self.sim = None
        self.machine = None
        self._hook = None
        self._attached = False
        self._stride = 1
        self._tick = 0
        self._t_attach = 0.0
        self._t_final: Optional[float] = None

    # ------------------------------------------------------------ probes

    def _get_series(self, metric: str, kind: str) -> _Series:
        s = self._series.get(metric)
        if s is None:
            s = self._series[metric] = _Series(metric, kind)
            self._order.append(metric)
        elif s.kind != kind:
            raise ValueError(
                f"metric {metric!r} already registered as {s.kind}")
        return s

    def probe_gauge(self, metric: str, node: Optional[int],
                    fn: Callable[[], float]) -> None:
        """Sample ``fn()`` as an instantaneous level (queue depth,
        outstanding count).  ``node=None`` is a machine-wide probe."""
        self._get_series(metric, "gauge").probes.append((node, fn))

    def probe_counter(self, metric: str, node: Optional[int],
                      fn: Callable[[], float]) -> None:
        """Sample ``fn()`` as a cumulative counter: the series records
        per-slice deltas, the summary the final totals."""
        self._get_series(metric, "counter").probes.append((node, fn))

    def probe_vector(self, metric: str, kind: str,
                     fn: Callable[[], Sequence[float]]) -> None:
        """Register one function returning per-node values (index ==
        node id) in a single pass — for probes whose state is one
        shared structure (lock wait queues) where per-node closures
        would rescan it O(nodes) times per sample."""
        if kind not in ("gauge", "counter"):
            raise ValueError(f"kind must be gauge|counter, got {kind!r}")
        series = self._get_series(metric, kind)
        if series.vector is not None:
            raise ValueError(f"metric {metric!r} already has a vector "
                             "probe")
        series.vector = fn

    def metrics(self) -> Tuple[str, ...]:
        return tuple(self._order)

    # ------------------------------------------------------------ wiring

    def attach(self, backend) -> "TimeSeriesSampler":
        """Hook into a backend exposing ``machine`` (and optionally a
        protocol); registers the machine and protocol probe sets."""
        if self._attached:
            raise RuntimeError("sampler already attached (samplers "
                               "are single-use: one per run)")
        self._attached = True
        self.machine = backend.machine
        self.sim = self.machine.sim
        self._t_attach = self.sim.now
        self.machine.register_probes(self)
        protocol = getattr(backend, "protocol", None)
        if protocol is not None:
            protocol.register_probes(self)
        self._hook = self.sim.add_slice_hook(self.cadence_us,
                                             self._sample)
        return self

    def finalize(self) -> None:
        """Take the trailing partial slice and detach the hook."""
        if self._hook is None:
            return
        last = self.times[-1] if self.times else self._t_attach
        if self.sim.now > last:
            self._sample(self.sim.now, force=True)
        self._t_final = self.sim.now
        self.sim.remove_slice_hook(self._hook)
        self._hook = None
        if self.tracer is not None:
            for metric in self._order:
                roll = self._rollup(self._series[metric])
                self.tracer.record(
                    self.sim.now, "ts.rollup", metric=metric,
                    nodes=roll["nodes"], count=roll["count"],
                    mean=roll["mean"], peak=roll["peak"],
                    peak_node=roll["peak_node"])

    # ---------------------------------------------------------- sampling

    def _sample(self, t: float, force: bool = False) -> None:
        keep = force or (self._tick % self._stride == 0)
        self._tick += 1
        if keep:
            self.times.append(t)
        for metric in self._order:
            series = self._series[metric]
            counter = series.kind == "counter"
            ssum = 0.0
            smax = -math.inf
            argmax = -1
            readings: List[Tuple[Optional[int], float]] = []
            if series.vector is not None:
                readings.extend(enumerate(series.vector()))
            for node, fn in series.probes:
                readings.append((node, fn()))
            for node, raw in readings:
                track = series.track(node)
                if counter:
                    prev = track.last_raw or 0.0
                    track.last_raw = raw
                    value = raw - prev
                else:
                    track.last_raw = raw
                    value = raw
                track.hist.add(value)
                track.stat.add(value)
                ssum += value
                if value > smax:
                    smax = value
                    argmax = node if node is not None else -1
            if not readings:
                smax = 0.0
            if keep:
                series.sum_arr.append(ssum)
                series.max_arr.append(smax)
                series.argmax_arr.append(argmax)
                if self.tracer is not None:
                    self.tracer.record(t, "ts.sample", metric=metric,
                                       node=argmax, value=smax)
        if keep and len(self.times) >= self.max_samples:
            self._decimate()

    def _decimate(self) -> None:
        """Drop every second kept sample and double the keep stride:
        the series always spans the whole run at bounded memory."""
        self.times = self.times[::2]
        for series in self._series.values():
            series.sum_arr = series.sum_arr[::2]
            series.max_arr = series.max_arr[::2]
            series.argmax_arr = series.argmax_arr[::2]
        self._stride *= 2

    # --------------------------------------------------------- reductions

    @staticmethod
    def _rank_value(series: _Series, track: _NodeTrack) -> float:
        """What a node is ranked by: counters by total accumulation,
        gauges by time-averaged level."""
        if series.kind == "counter":
            return track.stat.total
        return track.stat.mean

    def _per_node(self, series: _Series) -> List[Tuple[int, float]]:
        return sorted(
            ((node, self._rank_value(series, track))
             for node, track in series.tracks.items()
             if node is not None),
            key=lambda kv: (-kv[1], kv[0]))

    def top_nodes(self, metric: str,
                  k: Optional[int] = None) -> List[Tuple[int, float]]:
        """The k hottest nodes of ``metric`` as (node, value), ranked
        by total (counters) or mean level (gauges)."""
        series = self._series[metric]
        return self._per_node(series)[:k if k is not None else self.top_k]

    def skew(self, metric: str) -> dict:
        """Max/median skew across nodes: the one-line hot-shard
        detector.  ``ratio`` is None when the median is zero (a single
        active node among idle ones — maximal skew)."""
        values = sorted(v for _, v in self._per_node(
            self._series[metric]))
        if not values:
            return {"max": 0.0, "median": 0.0, "ratio": None}
        n = len(values)
        median = (values[n // 2] if n % 2
                  else (values[n // 2 - 1] + values[n // 2]) / 2.0)
        peak = values[-1]
        ratio = peak / median if median > 0 else None
        return {"max": peak, "median": median, "ratio": ratio}

    def merged_hist(self, metric: str) -> LogHistogram:
        """All nodes' histograms folded into one."""
        out = LogHistogram()
        for track in self._series[metric].tracks.values():
            out.merge(track.hist)
        return out

    def merged_stat(self, metric: str) -> RunningStat:
        out = RunningStat()
        for track in self._series[metric].tracks.values():
            out = out.merge(track.stat)
        return out

    def series(self, metric: str
               ) -> Tuple[List[float], List[float], List[float],
                          List[int]]:
        """The kept columnar series of ``metric``:
        ``(times, sums, maxima, argmax_nodes)``."""
        s = self._series[metric]
        return (list(self.times), list(s.sum_arr), list(s.max_arr),
                list(s.argmax_arr))

    def _rollup(self, series: _Series) -> dict:
        stat = RunningStat()
        peak = 0.0
        peak_node = -1
        for node, track in sorted(
                series.tracks.items(),
                key=lambda kv: (kv[0] is None, kv[0])):
            stat = stat.merge(track.stat)
            if track.stat.count and track.stat.max > peak:
                peak = track.stat.max
                peak_node = node if node is not None else -1
        nodes = sum(1 for n in series.tracks if n is not None)
        return {
            "nodes": nodes,
            "count": stat.count,
            "mean": stat.mean,
            "stdev": stat.stdev,
            "peak": peak,
            "peak_node": peak_node,
        }

    # ----------------------------------------------------------- summary

    def summary(self) -> dict:
        """Everything JSON-serializable: per-metric rollups, top-k hot
        nodes, skew, and the merged log-bucketed histogram.  This is
        what lands in ``RunResult.telemetry`` and the run cache, so it
        must round-trip losslessly through ``json.dumps``/``loads``."""
        t_end = self._t_final if self._t_final is not None else (
            self.sim.now if self.sim is not None else 0.0)
        metrics = {}
        for metric in self._order:
            series = self._series[metric]
            entry = {
                "kind": series.kind,
                "agg": self._rollup(series),
                "hist": self.merged_hist(metric).to_dict(),
            }
            if any(n is not None for n in series.tracks):
                entry["top"] = [[node, value] for node, value
                                in self.top_nodes(metric)]
                entry["skew"] = self.skew(metric)
            metrics[metric] = entry
        return {
            "schema": TS_SCHEMA,
            "cadence_us": self.cadence_us,
            "stride": self._stride,
            "samples": len(self.times),
            "t0_us": self._t_attach,
            "t1_us": t_end,
            "metrics": metrics,
        }

    # ---------------------------------------------------------- perfetto

    def counter_events(self, pid: int = 99) -> List[dict]:
        """The kept series as Chrome/Perfetto counter tracks.

        One ``ph: "C"`` track per metric carrying the per-slice
        ``max`` and ``sum``, under a dedicated ``telemetry`` process
        so counters render beside (not inside) the span rows from
        :meth:`repro.sim.Tracer.to_chrome_trace`.
        """
        events: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": "telemetry"},
        }]
        for metric in self._order:
            s = self._series[metric]
            for i, t in enumerate(self.times):
                events.append({
                    "name": metric, "ph": "C", "ts": t, "pid": pid,
                    "args": {"max": s.max_arr[i], "sum": s.sum_arr[i]},
                })
        return events

    def merge_chrome_trace(self, trace_events: List[dict],
                           pid: int = 99) -> List[dict]:
        """Chrome-trace events plus this sampler's counter tracks."""
        return list(trace_events) + self.counter_events(pid=pid)


def telemetry_brief(summary: Optional[dict]) -> Optional[dict]:
    """The one-line telemetry digest carried by ``repro scale`` rows:
    peak NI queue depth plus the queue-depth and page-fault skew
    ratios.  None in, None out (unsampled cells)."""
    if not summary:
        return None
    metrics = summary.get("metrics", {})
    queue = metrics.get("ni.queue_depth", {})
    faults = metrics.get("svm.page_faults", {})
    return {
        "peak_queue_depth": queue.get("agg", {}).get("peak", 0.0),
        "queue_skew": queue.get("skew", {}).get("ratio"),
        "fault_skew": faults.get("skew", {}).get("ratio"),
        "samples": summary.get("samples", 0),
    }
