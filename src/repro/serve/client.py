"""Clients for the experiment daemon: low-level and executor-shaped.

:class:`ServeClient` is the wire-level client (stdlib ``http.client``,
which transparently decodes the daemon's chunked ndjson stream); it
exposes the four endpoints plus an event iterator so callers can
render progress as cells resolve.

:class:`RemoteExecutor` wraps a client in the
:meth:`~repro.runtime.parallel.GridExecutor.map` shape, so an
:class:`~repro.experiments.ExperimentCache` (and therefore every
figure/table/sweep driver) can evaluate its grid on a daemon instead
of in-process just by swapping the executor.  Results decode through
the exact same :func:`~repro.runtime.parallel.decode_payload` round
trip as local runs — daemon-served output is byte-identical.

**Fingerprint guard.**  Digests embed a fingerprint of the simulator
sources; a daemon built from different sources would file results
under digests this process cannot reproduce.  The client checks the
daemon's fingerprint in the ``accepted`` event and refuses to proceed
on a mismatch rather than silently mixing result universes.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional
from urllib.parse import urlsplit

from ..runtime.parallel import CellSpec, code_fingerprint, decode_payload
from .protocol import PROTOCOL_VERSION, encode_submit

__all__ = ["ServeError", "ServeClient", "RemoteExecutor"]


class ServeError(RuntimeError):
    """Daemon unreachable, protocol violation, or server-side failure."""


class ServeClient:
    """Blocking HTTP client for one daemon at ``url``.

    One connection per call: submits stream over their own connection
    (the daemon closes after each response), and the control endpoints
    are tiny — connection reuse would buy nothing but state.
    """

    def __init__(self, url: str, timeout: float = 600.0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ServeError(f"unsupported scheme {parts.scheme!r} "
                             f"(the daemon speaks plain http)")
        if not parts.hostname:
            raise ServeError(f"no host in serve url {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 8737
        self.timeout = timeout

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------- plumbing

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _call(self, method: str, path: str,
              body: Optional[dict] = None) -> dict:
        conn = self._connect()
        try:
            payload = None if body is None else json.dumps(body)
            try:
                conn.request(method, path, body=payload,
                             headers={"Content-Type": "application/json"}
                             if payload else {})
                resp = conn.getresponse()
                text = resp.read().decode()
            except (OSError, http.client.HTTPException) as err:
                raise ServeError(
                    f"cannot reach daemon at {self.url}: {err}")
            try:
                doc = json.loads(text)
            except ValueError:
                raise ServeError(
                    f"{method} {path}: non-JSON response "
                    f"(status {resp.status})")
            if resp.status != 200:
                raise ServeError(
                    f"{method} {path}: {resp.status} "
                    f"{doc.get('error', text.strip())}")
            return doc
        finally:
            conn.close()

    # ------------------------------------------------------------ endpoints

    def health(self) -> dict:
        return self._call("GET", "/v1/health")

    def stats(self) -> dict:
        return self._call("GET", "/v1/stats")

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit."""
        return self._call("POST", "/v1/shutdown")

    def submit_events(self, specs: Iterable[CellSpec]
                      ) -> Iterator[dict]:
        """Submit ``specs`` and yield raw protocol events as they
        arrive (``accepted``, then ``cell``/``error`` per unique
        digest, then ``done``)."""
        specs = list(specs)
        conn = self._connect()
        try:
            try:
                conn.request(
                    "POST", "/v1/submit",
                    body=json.dumps(encode_submit(specs)),
                    headers={"Content-Type": "application/json"})
                resp = conn.getresponse()
            except (OSError, http.client.HTTPException) as err:
                raise ServeError(
                    f"cannot reach daemon at {self.url}: {err}")
            if resp.status != 200:
                text = resp.read().decode()
                try:
                    message = json.loads(text).get("error", text)
                except ValueError:
                    message = text.strip()
                raise ServeError(f"submit rejected: {resp.status} "
                                 f"{message}")
            while True:
                try:
                    line = resp.readline()
                except (OSError, http.client.HTTPException) as err:
                    raise ServeError(f"stream broken mid-submit: {err}")
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    raise ServeError(
                        f"malformed stream line: {line[:200]!r}")
        finally:
            conn.close()

    def submit(self, specs: Iterable[CellSpec],
               on_event: Optional[Callable[[dict], None]] = None,
               check_fingerprint: bool = True) -> Dict[str, dict]:
        """Submit ``specs``; return ``{digest: store payload}``.

        Streams internally (``on_event`` sees every protocol event as
        it arrives); raises :class:`ServeError` if any cell errored,
        the stream ended early, or — with ``check_fingerprint`` — the
        daemon's code fingerprint differs from this process's.
        """
        specs = list(specs)
        expected: Optional[int] = None
        payloads: Dict[str, dict] = {}
        errors: List[str] = []
        done = False
        for event in self.submit_events(specs):
            if on_event is not None:
                on_event(event)
            kind = event.get("event")
            if kind == "accepted":
                expected = event.get("unique")
                if (check_fingerprint
                        and event.get("fingerprint") != code_fingerprint()):
                    raise ServeError(
                        "daemon is running different simulator sources "
                        f"(fingerprint {event.get('fingerprint')!r} vs "
                        f"local {code_fingerprint()!r}); results would "
                        "not correspond to this checkout")
            elif kind == "cell":
                payloads[event["digest"]] = event["payload"]
            elif kind == "error":
                errors.append(f"{event.get('digest', '?')[:16]}: "
                              f"{event.get('message')}")
            elif kind == "done":
                done = True
        if errors:
            raise ServeError(
                f"{len(errors)} cell(s) failed on the daemon:\n  "
                + "\n  ".join(errors))
        if not done:
            raise ServeError("stream ended without a done event "
                             "(daemon died mid-submit?)")
        if expected is not None and len(payloads) != expected:
            raise ServeError(
                f"stream delivered {len(payloads)} of {expected} cells")
        return payloads


class RemoteExecutor:
    """A :class:`GridExecutor`-shaped facade over a daemon.

    Drop-in for :class:`~repro.experiments.ExperimentCache`'s executor:
    ``map(specs) -> {digest: live object}`` with the same digest keys
    and the same JSON decode path as local evaluation.  ``jobs`` and
    ``store`` exist for interface parity; concurrency and persistence
    are the daemon's business.
    """

    jobs = 1
    store = None

    def __init__(self, url: str, timeout: float = 600.0,
                 on_event: Optional[Callable[[dict], None]] = None):
        self.client = url if isinstance(url, ServeClient) \
            else ServeClient(url, timeout=timeout)
        self.on_event = on_event

    def map(self, specs: Iterable[CellSpec]) -> Dict[str, Any]:
        specs = list(specs)
        if not specs:
            return {}
        payloads = self.client.submit(specs, on_event=self.on_event)
        return {digest: decode_payload(payload)
                for digest, payload in payloads.items()}
