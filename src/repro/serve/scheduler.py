"""Single-flight scheduler: the daemon's one warm cache + worker pool.

This is the serving analogue of the paper's NI firmware: a long-lived
agent that owns the shared protocol state so the request path never
pays asynchronous handling.  Concretely, the scheduler owns

* the **in-memory payload memo** (bounded LRU of store payloads — the
  daemon's warm cache, answering repeats in microseconds),
* the **persistent ResultStore** (shared, lockfile-claimed, so ad-hoc
  CLI runs and the daemon can safely use one ``--cache-dir``), and
* the **worker pool** (spawn processes by default; threads for tests
  and 1-CPU boxes), plus the **in-flight table** that single-flights
  every computation by content digest.

Single-flight contract: at any instant there is at most one live
computation per digest, daemon-wide.  A request that wants a digest
already being computed *attaches* to that computation instead of
starting its own; client disconnects never cancel a computation other
clients may be waiting on (the compute task is independent of any
request, and requests await it through ``asyncio.shield``).
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from ..runtime.parallel import (CellSpec, ResultStore, decode_payload,
                                evaluate_cell, make_envelope)

__all__ = ["SingleFlightScheduler", "WORKER_MODES"]

WORKER_MODES = ("spawn", "thread")

#: (status, payload-or-message): status is "ok" or "error".  Futures
#: resolve to this pair instead of raising so that a computation with
#: zero surviving waiters never logs an unretrieved-exception warning.
Outcome = Tuple[str, object]


class SingleFlightScheduler:
    """Digest-keyed single-flight evaluation over one warm cache.

    ``jobs`` sizes the worker pool; ``workers`` selects the pool kind
    (``"spawn"`` processes — the default, workers share nothing with
    the daemon — or ``"thread"`` for cheap startup where process
    isolation is not needed).  ``memo_cap`` bounds the in-memory
    payload LRU; the persistent store remains the source of truth for
    anything evicted.
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 jobs: int = 1, workers: str = "spawn",
                 memo_cap: int = 1024):
        if workers not in WORKER_MODES:
            raise ValueError(f"workers must be one of {WORKER_MODES}, "
                             f"got {workers!r}")
        self.store = store
        self.jobs = max(1, int(jobs))
        self.workers = workers
        self.memo_cap = max(1, int(memo_cap))
        self._memo: "OrderedDict[str, dict]" = OrderedDict()
        self._inflight: Dict[str, "asyncio.Task[Outcome]"] = {}
        self._pool: Optional[Executor] = None
        self.counters: Dict[str, int] = {
            "submits": 0,        # submit requests accepted
            "cells": 0,          # cells requested (after per-request dedup)
            "memo_hits": 0,      # served from the in-memory payload LRU
            "store_hits": 0,     # served from the persistent store
            "attached": 0,       # joined an already-running computation
            "computed": 0,       # computations actually started
            "errors": 0,         # computations that raised
        }

    # ------------------------------------------------------------- pool

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.workers == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.jobs,
                    thread_name_prefix="repro-serve")
            else:
                import multiprocessing
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=multiprocessing.get_context("spawn"))
        return self._pool

    # ------------------------------------------------------------ lookup

    def _load_store(self, digest: str) -> Optional[dict]:
        """Payload from the persistent store, validated, or None.

        Corrupt or undecodable entries read as misses, exactly like
        :meth:`GridExecutor.submit`; a valid hit is memoized.
        """
        if self.store is None:
            return None
        envelope = self.store.load(digest)
        if envelope is None:
            return None
        payload = envelope.get("payload")
        try:
            decode_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None  # corrupt entry: recompute
        self._remember(digest, payload)
        return payload

    def _remember(self, digest: str, payload: dict) -> None:
        self._memo[digest] = payload
        self._memo.move_to_end(digest)
        while len(self._memo) > self.memo_cap:
            self._memo.popitem(last=False)

    # -------------------------------------------------------------- cell

    async def cell(self, spec: CellSpec, digest: str) -> Tuple[str, Outcome]:
        """Resolve one cell: ``(source, (status, payload_or_msg))``.

        ``source`` is ``memo``/``warm``/``attached``/``computed`` (see
        the protocol doc).  Cancelling the caller never cancels a
        computation: compute tasks live in the in-flight table,
        independent of any request, and are awaited through a shield.
        """
        self.counters["cells"] += 1
        payload = self._memo.get(digest)
        if payload is not None:
            self._memo.move_to_end(digest)
            self.counters["memo_hits"] += 1
            return ("memo", ("ok", payload))
        # In-flight before store: while a digest is computing the
        # store cannot have it yet, and after it resolves the memo
        # will.  (A concurrent external writer racing us just means
        # one redundant attach-then-resolve, never a wrong answer.)
        task = self._inflight.get(digest)
        if task is not None:
            self.counters["attached"] += 1
            return ("attached", await asyncio.shield(task))
        payload = self._load_store(digest)
        if payload is not None:
            self.counters["store_hits"] += 1
            return ("warm", ("ok", payload))
        task = asyncio.get_running_loop().create_task(
            self._compute(digest, spec))
        self._inflight[digest] = task
        self.counters["computed"] += 1
        return ("computed", await asyncio.shield(task))

    async def _compute(self, digest: str, spec: CellSpec) -> Outcome:
        """The one computation for ``digest``; never raises."""
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                self._ensure_pool(), evaluate_cell, spec)
        except Exception as err:  # noqa: BLE001 — reported to clients
            self.counters["errors"] += 1
            return ("error", f"{type(err).__name__}: {err}")
        finally:
            self._inflight.pop(digest, None)
        if self.store is not None:
            self.store.store(digest, make_envelope(spec, payload))
        self._remember(digest, payload)
        return ("ok", payload)

    # ------------------------------------------------------------- drain

    async def drain(self) -> None:
        """Wait for every in-flight computation, then stop the pool.

        Store writes are individually atomic, so after drain the store
        holds a consistent snapshot of everything that completed.
        """
        while self._inflight:
            await asyncio.gather(*list(self._inflight.values()),
                                 return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def memo_size(self) -> int:
        return len(self._memo)
