"""The `repro serve` daemon: asyncio HTTP front end over the scheduler.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` —
no frameworks, no threads on the request path.  Requests parse into
``(method, path, headers, body)``; responses are either a single JSON
document or, for ``/v1/submit``, a chunked ``application/x-ndjson``
event stream that emits each cell the moment it resolves (clients see
progress, not a final blob).

Lifecycle: :meth:`ReproDaemon.start` binds (port 0 = ephemeral, the
bound port is then on :attr:`port`), :meth:`ReproDaemon.serve` runs
until :meth:`ReproDaemon.request_shutdown` (also reachable over HTTP
via ``POST /v1/shutdown``), then **drains**: the listener closes, all
in-flight computations finish and persist, the pool shuts down.  The
store's per-write atomicity plus the drain barrier means a daemon
stop never leaves a half-written cache.

:class:`DaemonThread` runs the whole thing on a private event loop in
a helper thread — that is what the tests and benchmarks use, and what
keeps this module importable without ever touching a socket.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Tuple

from ..runtime.parallel import (STORE_SCHEMA, ResultStore, code_fingerprint)
from .protocol import (PROTOCOL_VERSION, SERVER_NAME, ProtocolError,
                       decode_submit, dumps_line)
from .scheduler import SingleFlightScheduler

__all__ = ["ReproDaemon", "DaemonThread", "run_daemon"]

#: request bodies above this are rejected (64 MiB: a grid of tens of
#: thousands of cells fits with room to spare).
MAX_BODY = 64 << 20
#: header-section cap, per line and total.
MAX_HEADER_LINE = 64 << 10
MAX_HEADERS = 100


class _BadRequest(Exception):
    """Maps to a 400 before any streaming has started."""


async def _read_request(reader: asyncio.StreamReader
                        ) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request: (method, path, headers, body)."""
    line = await reader.readline()
    if not line:
        raise ConnectionResetError("client closed before request line")
    try:
        method, path, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise _BadRequest("malformed request line")
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS):
        line = await reader.readline()
        if len(line) > MAX_HEADER_LINE:
            raise _BadRequest("header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _BadRequest("too many headers")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise _BadRequest("bad Content-Length")
        if length < 0 or length > MAX_BODY:
            raise _BadRequest("Content-Length out of range")
        body = await reader.readexactly(length)
    return method, path.split("?", 1)[0], headers, body


def _response(status: int, payload: Dict[str, Any]) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              405: "Method Not Allowed"}.get(status, "Error")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Server: {SERVER_NAME}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")
    return head + body


_STREAM_HEAD = (f"HTTP/1.1 200 OK\r\n"
                f"Server: {SERVER_NAME}\r\n"
                f"Content-Type: application/x-ndjson\r\n"
                f"Transfer-Encoding: chunked\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")


def _chunk(data: bytes) -> bytes:
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


class ReproDaemon:
    """The persistent experiment service (one per cache, many clients).

    ``store=None`` runs memo-only (useful for tests); otherwise the
    daemon owns the given :class:`ResultStore` for warm hits and
    persistence.  ``jobs``/``workers``/``memo_cap`` configure the
    scheduler (see :class:`SingleFlightScheduler`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 store: Optional[ResultStore] = None, jobs: int = 1,
                 workers: str = "spawn", memo_cap: int = 1024):
        self.host = host
        self.port = port
        self.scheduler = SingleFlightScheduler(
            store=store, jobs=jobs, workers=workers, memo_cap=memo_cap)
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None
        self.requests = 0

    # --------------------------------------------------------- lifecycle

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve(self) -> None:
        """Serve until shutdown is requested, then drain and close."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._shutdown.wait()
            self._server.close()
            await self._server.wait_closed()
            await self.scheduler.drain()

    def request_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    # ---------------------------------------------------------- handlers

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, _headers, body = await _read_request(reader)
            except _BadRequest as err:
                writer.write(_response(400, {"error": str(err)}))
                return
            except (ConnectionResetError, asyncio.IncompleteReadError):
                return
            self.requests += 1
            route = (method, path)
            if route == ("GET", "/v1/health"):
                writer.write(_response(200, self._health()))
            elif route == ("GET", "/v1/stats"):
                writer.write(_response(200, self._stats()))
            elif route == ("POST", "/v1/shutdown"):
                writer.write(_response(200, {"ok": True,
                                             "draining":
                                             self.scheduler.inflight}))
                await writer.drain()
                self.request_shutdown()
            elif route == ("POST", "/v1/submit"):
                await self._submit(writer, body)
            elif path.startswith("/v1/"):
                writer.write(_response(405 if path in (
                    "/v1/health", "/v1/stats", "/v1/submit",
                    "/v1/shutdown") else 404,
                    {"error": f"no route for {method} {path}"}))
            else:
                writer.write(_response(404, {"error": "not found"}))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; computations keep running
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _health(self) -> Dict[str, Any]:
        return {"ok": True, "server": SERVER_NAME,
                "version": PROTOCOL_VERSION,
                "schema": STORE_SCHEMA,
                "fingerprint": code_fingerprint(),
                "workers": self.scheduler.workers,
                "jobs": self.scheduler.jobs}

    def _stats(self) -> Dict[str, Any]:
        sched = self.scheduler
        return {"counters": dict(sched.counters),
                "inflight": sched.inflight,
                "memo": sched.memo_size,
                "memo_cap": sched.memo_cap,
                "requests": self.requests,
                "store": (str(sched.store.root)
                          if sched.store is not None else None),
                "fingerprint": code_fingerprint()}

    async def _submit(self, writer: asyncio.StreamWriter,
                      body: bytes) -> None:
        try:
            specs = decode_submit(json.loads(body.decode() or "null"))
        except (ProtocolError, ValueError, UnicodeDecodeError) as err:
            writer.write(_response(400, {"error": str(err)}))
            return
        sched = self.scheduler
        sched.counters["submits"] += 1
        fingerprint = code_fingerprint()
        digests = [spec.digest(fingerprint) for spec in specs]
        unique: Dict[str, Any] = {}
        for spec, digest in zip(specs, digests):
            unique.setdefault(digest, spec)

        writer.write(_STREAM_HEAD)
        writer.write(_chunk(dumps_line({
            "event": "accepted", "cells": len(specs),
            "unique": len(unique), "digests": digests,
            "fingerprint": fingerprint})))
        await writer.drain()

        async def one(digest: str, spec) -> Tuple[str, str, str, object]:
            # Wall time spent serving a request is operational
            # telemetry, not simulated time.
            t0 = time.monotonic()  # repro: noqa[wall-clock] — request service latency, not sim time
            source, (status, value) = await sched.cell(spec, digest)
            elapsed_ms = 1e3 * (time.monotonic() - t0)  # repro: noqa[wall-clock] — request service latency, not sim time
            return digest, source, status, (value, elapsed_ms)

        tasks = [asyncio.ensure_future(one(d, s))
                 for d, s in unique.items()]
        try:
            for fut in asyncio.as_completed(tasks):
                digest, source, status, (value, elapsed_ms) = await fut
                if status == "ok":
                    event = {"event": "cell", "digest": digest,
                             "source": source,
                             "elapsed_ms": round(elapsed_ms, 3),
                             "payload": value}
                else:
                    event = {"event": "error", "digest": digest,
                             "source": source, "message": value}
                writer.write(_chunk(dumps_line(event)))
                await writer.drain()
            writer.write(_chunk(dumps_line(
                {"event": "done", "counters": dict(sched.counters)})))
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            # Cancel *request* tasks only; shields keep the underlying
            # computations alive for other clients.
            for task in tasks:
                task.cancel()


# ------------------------------------------------------------ embedding


class DaemonThread:
    """A daemon on a private event loop in a helper thread.

    For tests, benchmarks and notebook embedding::

        with DaemonThread(store=store, workers="thread") as handle:
            ServeClient(handle.url).submit(specs)

    ``stop()`` (or context exit) requests shutdown and joins the
    thread, which drains in-flight work first.
    """

    def __init__(self, **kwargs: Any):
        self._kwargs = kwargs
        self.daemon: Optional[ReproDaemon] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)

    def start(self) -> "DaemonThread":
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError("daemon failed to start") from self._error
        if self.daemon is None:
            raise RuntimeError("daemon did not start within 30 s")
        return self

    @property
    def url(self) -> str:
        assert self.daemon is not None
        return self.daemon.url

    def stop(self) -> None:
        if self._loop is not None and self.daemon is not None:
            self._loop.call_soon_threadsafe(self.daemon.request_shutdown)
        self._thread.join(timeout=60.0)

    def __enter__(self) -> "DaemonThread":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as err:  # noqa: BLE001 — surfaced in start()
            self._error = err
            self._ready.set()

    async def _main(self) -> None:
        daemon = ReproDaemon(**self._kwargs)
        await daemon.start()
        self._loop = asyncio.get_running_loop()
        self.daemon = daemon
        self._ready.set()
        await daemon.serve()


def run_daemon(host: str = "127.0.0.1", port: int = 8737,
               store: Optional[ResultStore] = None, jobs: int = 1,
               workers: str = "spawn", memo_cap: int = 1024,
               announce=print) -> None:
    """Run a daemon in the foreground until SIGINT/shutdown (the CLI
    entry point).  ``announce`` receives human-readable status lines."""

    async def main() -> None:
        daemon = ReproDaemon(host=host, port=port, store=store, jobs=jobs,
                             workers=workers, memo_cap=memo_cap)
        await daemon.start()
        loop = asyncio.get_running_loop()
        try:
            import signal
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, daemon.request_shutdown)
        except (NotImplementedError, ImportError):
            pass  # platforms without signal handlers: Ctrl-C still works
        root = store.root if store is not None else None
        announce(f"repro serve: listening on {daemon.url} "
                 f"(jobs={daemon.scheduler.jobs}, workers={workers}, "
                 f"store={root if root is not None else 'memo-only'})")
        try:
            await daemon.serve()
        finally:
            announce("repro serve: drained, bye")

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        announce("repro serve: interrupted")
