"""Wire protocol for the experiment daemon.

The daemon and its clients speak JSON over HTTP/1.1 (stdlib only on
both sides).  The one non-trivial piece is shipping a
:class:`~repro.runtime.parallel.CellSpec` across the wire without a
second serialization scheme: the request body carries the spec's
*canonical form* — exactly what :func:`repro.runtime.parallel.canonical`
produces and the content digest is computed over — and this module
decodes that form back into live dataclasses.  Encoding and keying
therefore cannot diverge: if a spec survives the wire, it digests to
the same address on both ends.

Endpoints (all under ``/v1``)::

    GET  /v1/health    -> {"ok": true, "fingerprint": ..., ...}
    GET  /v1/stats     -> {"counters": {...}, "inflight": N, ...}
    POST /v1/submit    -> chunked application/x-ndjson event stream
    POST /v1/shutdown  -> {"ok": true}; daemon drains and exits

Submit request body::

    {"version": 1, "cells": [<canonical CellSpec>, ...]}

Submit response stream, one JSON object per line:

* ``{"event": "accepted", "cells": N, "unique": M,
   "digests": [...], "fingerprint": ...}`` — ``digests`` is aligned
  with the submitted cells (duplicates resolve to the same digest);
* ``{"event": "cell", "digest": ..., "source":
  "memo"|"warm"|"attached"|"computed", "elapsed_ms": ...,
  "payload": {...}}`` — one per *unique* digest, in completion order;
  ``payload`` is the store payload, so clients decode it with the
  same :func:`~repro.runtime.parallel.decode_payload` round trip as
  in-process runs (byte-identity for free);
* ``{"event": "error", "digest": ..., "message": ...}`` — evaluation
  failed for that cell (the rest of the grid still streams);
* ``{"event": "done", "counters": {...}}`` — terminal.

``source`` semantics: ``memo`` = served from the daemon's in-memory
payload cache; ``warm`` = loaded from the persistent ResultStore;
``attached`` = this request joined a computation another request had
already started (single-flight dedup); ``computed`` = this request
started the computation.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable, List

from ..hw import FaultConfig, MachineConfig
from ..runtime.parallel import CellSpec, canonical
from ..svm import ProtocolFeatures

__all__ = ["PROTOCOL_VERSION", "SERVER_NAME", "ProtocolError",
           "encode_spec", "decode_spec", "encode_submit",
           "decode_submit", "dumps_line"]

PROTOCOL_VERSION = 1
SERVER_NAME = "repro-serve/1"

#: cell kinds evaluate_cell knows how to run (validated at decode so a
#: bad request fails before it reaches the scheduler).
CELL_KINDS = frozenset({"svm", "seq", "origin", "profile", "critpath"})

#: dataclasses allowed to cross the wire, by canonical tag.  Closed
#: registry: an unknown tag is a protocol error, never an import.
_DATACLASSES = {cls.__name__: cls
                for cls in (CellSpec, ProtocolFeatures, MachineConfig,
                            FaultConfig)}

#: fields whose constructors require tuples (canonical JSON flattens
#: every sequence to a list): class name -> field -> rebuild depth.
_TUPLE_FIELDS = {"FaultConfig": {"links": 2}}


class ProtocolError(ValueError):
    """A malformed or unsupported wire payload."""


def encode_spec(spec: CellSpec) -> Dict[str, Any]:
    """JSON-safe wire form of ``spec`` (its canonical form)."""
    return canonical(spec)


def _retuple(value: Any, depth: int) -> Any:
    if value is None or depth <= 0 or not isinstance(value, list):
        return value
    return tuple(_retuple(v, depth - 1) for v in value)


def _decode_value(data: Any) -> Any:
    if isinstance(data, dict):
        if "__dataclass__" in data:
            return _decode_dataclass(data)
        return {k: _decode_value(v) for k, v in data.items()}
    if isinstance(data, list):
        return [_decode_value(v) for v in data]
    return data


def _decode_dataclass(data: Dict[str, Any]) -> Any:
    tag = data["__dataclass__"]
    cls = _DATACLASSES.get(tag)
    if cls is None:
        raise ProtocolError(f"unknown dataclass tag {tag!r}")
    kwargs = {k: _decode_value(v) for k, v in data.items()
              if k != "__dataclass__"}
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(kwargs) - known)
    if unknown:
        raise ProtocolError(
            f"{tag} does not accept field(s) {', '.join(unknown)} "
            f"(version skew between client and daemon?)")
    for name, depth in _TUPLE_FIELDS.get(tag, {}).items():
        if name in kwargs:
            kwargs[name] = _retuple(kwargs[name], depth)
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as err:
        raise ProtocolError(f"invalid {tag}: {err}")


def decode_spec(data: Any) -> CellSpec:
    """Wire form -> :class:`CellSpec`; raises :class:`ProtocolError`
    on anything that is not a well-formed, runnable cell."""
    if not isinstance(data, dict):
        raise ProtocolError(
            f"cell must be an object, got {type(data).__name__}")
    spec = _decode_value(data)
    if not isinstance(spec, CellSpec):
        raise ProtocolError("cell object is not a tagged CellSpec")
    if spec.kind not in CELL_KINDS:
        raise ProtocolError(
            f"unknown cell kind {spec.kind!r} (expected one of "
            f"{', '.join(sorted(CELL_KINDS))})")
    if not isinstance(spec.app, str) or not spec.app:
        raise ProtocolError("cell app must be a non-empty string")
    return spec


def encode_submit(specs: Iterable[CellSpec]) -> Dict[str, Any]:
    """The ``POST /v1/submit`` request body for ``specs``."""
    return {"version": PROTOCOL_VERSION,
            "cells": [encode_spec(spec) for spec in specs]}


def decode_submit(body: Any) -> List[CellSpec]:
    """Request body -> list of specs (daemon side)."""
    if not isinstance(body, dict):
        raise ProtocolError("submit body must be a JSON object")
    version = body.get("version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(daemon speaks {PROTOCOL_VERSION})")
    cells = body.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ProtocolError("submit body needs a non-empty 'cells' list")
    return [decode_spec(cell) for cell in cells]


def dumps_line(event: Dict[str, Any]) -> bytes:
    """One ndjson stream line (sorted keys: byte-stable for tests)."""
    return (json.dumps(event, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()
