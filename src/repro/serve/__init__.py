"""repro.serve: persistent experiment daemon over one warm cache.

The serving analogue of the paper's thesis: move the repeated work
(interpreter cold starts, code fingerprinting, store opens, duplicate
simulations) off every client's critical path and into one always-on
agent.  A long-lived asyncio daemon owns the content-addressed
ResultStore and a worker pool; clients submit
:class:`~repro.runtime.parallel.CellSpec` grids over a thin HTTP/JSON
API, overlapping work single-flights by content digest, warm cells
answer from memory in sub-millisecond, and results are byte-identical
to in-process runs.

See docs/serving.md for the architecture and wire protocol.
"""

from .client import RemoteExecutor, ServeClient, ServeError
from .daemon import DaemonThread, ReproDaemon, run_daemon
from .protocol import (PROTOCOL_VERSION, SERVER_NAME, ProtocolError,
                       decode_spec, decode_submit, encode_spec,
                       encode_submit)
from .scheduler import WORKER_MODES, SingleFlightScheduler

__all__ = [
    "PROTOCOL_VERSION",
    "SERVER_NAME",
    "ProtocolError",
    "encode_spec",
    "decode_spec",
    "encode_submit",
    "decode_submit",
    "SingleFlightScheduler",
    "WORKER_MODES",
    "ReproDaemon",
    "DaemonThread",
    "run_daemon",
    "ServeClient",
    "ServeError",
    "RemoteExecutor",
]
