"""Run driver: applications x backends -> RunResults.

Handles the paper's measurement methodology: an untimed initialization
phase (cold page faults, region touch) followed by a barrier, after
which accounting is reset and the timed section begins.
"""

from __future__ import annotations

from typing import Optional

from ..hw import MachineConfig
from ..sim import TimeBuckets
from ..svm import ProtocolFeatures
from .backends import LocalBackend, SVMBackend
from .results import RunResult

__all__ = ["run_svm", "run_sequential", "run_hwdsm", "run_on_backend"]


def run_on_backend(app, backend, system: str,
                   nprocs: Optional[int] = None,
                   profiler=None, telemetry=None) -> RunResult:
    """Execute ``app`` on ``backend`` and collect a RunResult.

    ``profiler`` (a :class:`repro.obs.PhaseProfiler`) samples per-rank
    buckets and station utilization at slice boundaries; only SVM
    backends (those with a protocol) can be profiled.  ``telemetry``
    (a :class:`repro.obs.TimeSeriesSampler`) samples the registered
    machine/protocol probes the same way; its summary lands in
    ``RunResult.telemetry``.  Both are engine-hook observers: an
    instrumented run's event schedule is byte-identical to a bare one.
    """
    nprocs = nprocs or backend.nprocs
    sim = backend.sim
    regions = app.setup(backend)
    start_times = [0.0] * nprocs
    end_times = [0.0] * nprocs
    finished = [0]

    protocol = getattr(backend, "protocol", None)
    monitor = getattr(backend, "monitor", None)
    spans = getattr(backend, "spans", None)
    if profiler is not None:
        if protocol is None:
            raise ValueError(
                f"{system}: profiling requires an SVM backend")
        profiler.attach(backend)
    if telemetry is not None:
        if protocol is None:
            raise ValueError(
                f"{system}: telemetry sampling requires an SVM backend")
        telemetry.attach(backend)

    def driver(rank):
        ctx = app.context(backend, rank, nprocs)
        yield from app.init_process(ctx, regions)
        yield from backend.op_barrier(rank)
        start_times[rank] = sim.now
        if protocol is not None:
            # Timed section starts: clear this rank's accounting.
            protocol.buckets[rank] = TimeBuckets()
            protocol.barrier_protocol_us[rank] = 0.0
            if profiler is not None:
                profiler.on_timed_start(rank)
        # The rank's timed section is one root span; the critical-path
        # extractor walks backwards from the last rank's "run" end.
        sid = spans.begin("run", f"r{rank}", bucket="compute",
                          rank=rank) if spans is not None else None
        yield from app.process(ctx, regions)
        if spans is not None:
            spans.end(sid)
        end_times[rank] = sim.now
        finished[0] += 1

    baseline = _stats_snapshot(backend)
    for rank in range(nprocs):
        sim.process(driver(rank), name=f"{app.name}.{rank}")
    sim.run()
    if finished[0] != nprocs:
        raise RuntimeError(
            f"{app.name}/{system}: only {finished[0]}/{nprocs} "
            f"processes finished (deadlock?)")
    if profiler is not None:
        profiler.finalize()
    if telemetry is not None:
        telemetry.finalize()

    result = RunResult(
        app=app.name,
        system=system,
        nprocs=nprocs,
        time_us=max(end_times) - min(start_times),
        wall_us=[end_times[r] - start_times[r] for r in range(nprocs)],
    )
    if protocol is not None:
        result.buckets = list(protocol.buckets)
        result.barrier_protocol_us = list(protocol.barrier_protocol_us)
        result.mprotect_us = protocol.mprotect.grand_total_us
        result.stats = _stats_delta(baseline, _stats_snapshot(backend))
        _report_time_accounting(backend, protocol, result, profiler)
    if monitor is not None:
        result.monitor_small = monitor.ratios("small").as_dict()
        result.monitor_large = monitor.ratios("large").as_dict()
    if telemetry is not None:
        result.telemetry = telemetry.summary()
    return result


def _report_time_accounting(backend, protocol, result, profiler) -> None:
    """End-of-run invariant: ``sum(buckets) == wall``, per rank.

    Reports through the runtime invariant checker when one is installed
    (``--check``), and leaves ``prof.rank`` records in the trace when
    the run is both traced *and* profiled, so the offline sanitizer can
    re-check.  Untraced or unprofiled runs' traces stay byte-identical.
    """
    checker = getattr(backend, "invariants", None)
    tracer = getattr(protocol, "tracer", None)
    for rank, wall in enumerate(result.wall_us):
        buckets = result.buckets[rank]
        if checker is not None:
            checker.on_run_complete(rank, wall, buckets)
        if tracer is not None and profiler is not None:
            tracer.record(protocol.sim.now, "prof.rank", rank=rank,
                          wall_us=wall, bucket_us=buckets.total,
                          residual_us=buckets.total - wall)


def _stats_snapshot(backend) -> dict:
    protocol = getattr(backend, "protocol", None)
    if protocol is None:
        return {}
    snap = {
        "interrupts": protocol.total_interrupts,
        "page_fetches": protocol.page_fetches,
        "fetch_retries": protocol.fetch_retries,
        "diffs_sent": protocol.diffs_sent,
        "diff_runs_sent": protocol.diff_runs_sent,
        "wn_messages": protocol.wn_messages,
        "messages": protocol.vmmc.messages_sent,
        "bytes": protocol.vmmc.bytes_sent,
    }
    if protocol.ni_locks is not None:
        snap["lock_acquires"] = protocol.ni_locks.acquires
    elif protocol.svm_locks is not None:
        snap["lock_acquires"] = protocol.svm_locks.acquires
    machine = protocol.machine
    if machine.fault_injector is not None:
        snap.update(machine.fault_injector.counters())
        snap.update(machine.reliability.counters())
    return snap


def _stats_delta(before: dict, after: dict) -> dict:
    return {k: after[k] - before.get(k, 0) for k in after}


def run_svm(app, features: ProtocolFeatures,
            config: Optional[MachineConfig] = None,
            with_monitor: bool = True, tracer=None,
            check: bool = False, profiler=None,
            spans: bool = False, telemetry=None) -> RunResult:
    """Run ``app`` on the SVM cluster under one protocol variant.

    ``tracer`` records the protocol event stream (for the offline
    sanitizer); ``check`` installs the runtime invariant checker;
    ``profiler`` attaches a :class:`repro.obs.PhaseProfiler`;
    ``spans`` arms causal span recording into the tracer (required for
    :mod:`repro.analysis.critpath`); ``telemetry`` attaches a
    :class:`repro.obs.TimeSeriesSampler` — all without perturbing the
    schedule.
    """
    backend = SVMBackend(config or MachineConfig(), features,
                         with_monitor=with_monitor, tracer=tracer,
                         check=check, spans=spans)
    return run_on_backend(app, backend, system=features.name,
                          profiler=profiler, telemetry=telemetry)


def run_sequential(app, config: Optional[MachineConfig] = None) -> RunResult:
    """Uniprocessor baseline (no SVM library)."""
    backend = LocalBackend(config)
    return run_on_backend(app, backend, system="seq", nprocs=1)


def run_hwdsm(app, config=None) -> RunResult:
    """The hardware-coherent yardstick (Origin 2000 stand-in)."""
    # Imported here: repro.hwdsm depends on repro.runtime.context, so a
    # top-level import would be circular.
    from ..hwdsm import HWDSMBackend
    backend = HWDSMBackend(config)
    return run_on_backend(app, backend, system="Origin", nprocs=backend.nprocs)
