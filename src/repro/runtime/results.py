"""Run results: timings, breakdowns and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim import BUCKETS, SimulationError, TimeBuckets

__all__ = ["RunResult", "speedup"]


@dataclass
class RunResult:
    """Everything one simulated run produces."""

    app: str
    system: str              # "Base", "DW", ..., "GeNIMA", "Origin", "seq"
    nprocs: int
    time_us: float           # parallel (or sequential) execution time
    #: per-rank timed-section wall time; the sum-equals-wall invariant
    #: compares each entry with the rank's bucket total.
    wall_us: List[float] = field(default_factory=list)
    buckets: List[TimeBuckets] = field(default_factory=list)
    barrier_protocol_us: List[float] = field(default_factory=list)
    mprotect_us: float = 0.0
    stats: Dict[str, float] = field(default_factory=dict)
    monitor_small: Optional[dict] = None
    monitor_large: Optional[dict] = None
    #: sampled telemetry summary (repro.obs.TimeSeriesSampler.summary)
    #: when the run was sampled; None otherwise.  JSON-safe by
    #: construction so it rides the run cache unchanged.
    telemetry: Optional[dict] = None

    @property
    def mean_breakdown(self) -> TimeBuckets:
        return TimeBuckets.average(self.buckets)

    @property
    def breakdown_fractions(self) -> Dict[str, float]:
        return self.mean_breakdown.fractions()

    # -- Table 2 metrics ------------------------------------------------------

    @property
    def barrier_fraction(self) -> float:
        """BT: portion of execution time spent in barriers."""
        mean = self.mean_breakdown
        return mean.barrier / mean.total if mean.total else 0.0

    @property
    def barrier_protocol_fraction(self) -> float:
        """BPT: portion of barrier time that is protocol processing."""
        mean = self.mean_breakdown
        if mean.barrier <= 0:
            return 0.0
        proto = (sum(self.barrier_protocol_us)
                 / max(len(self.barrier_protocol_us), 1))
        return min(proto / mean.barrier, 1.0)

    @property
    def mprotect_fraction(self) -> float:
        """MT: mprotect share of total SVM overhead (data+lock+acqrel+
        barrier time)."""
        mean = self.mean_breakdown
        overhead = mean.data + mean.lock + mean.acqrel + mean.barrier
        if overhead <= 0:
            return 0.0
        per_proc_mprotect = self.mprotect_us / max(self.nprocs, 1)
        return min(per_proc_mprotect / overhead, 1.0)

    def summary(self) -> Dict[str, float]:
        out = {
            "app": self.app,
            "system": self.system,
            "nprocs": self.nprocs,
            "time_us": self.time_us,
        }
        mean = self.mean_breakdown
        for name in BUCKETS:
            out[name] = getattr(mean, name)
        out.update(self.stats)
        return out


def speedup(sequential: RunResult, parallel: RunResult) -> float:
    """T_seq / T_par, the paper's speedup definition.

    Raises :class:`~repro.sim.SimulationError` (not a bare ValueError)
    naming the offending run when the parallel time is non-positive, so
    experiment sweeps fail with an attributable error.
    """
    if parallel.time_us <= 0:
        raise SimulationError(
            f"speedup({parallel.app}/{parallel.system}, "
            f"nprocs={parallel.nprocs}): parallel time must be positive, "
            f"got {parallel.time_us!r} us")
    return sequential.time_us / parallel.time_us
