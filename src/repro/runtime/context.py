"""The parallel programming interface applications run against.

An application defines one generator per process (rank); the generator
receives a :class:`ParallelContext` and drives shared-memory work
through it.  The same application code runs unchanged on three
backends:

* the SVM cluster (``repro.svm.HLRCProtocol`` on the simulated testbed),
* the hardware-DSM yardstick (``repro.hwdsm``, the Origin-2000 stand-in),
* the uniprocessor baseline (sequential time for speedups — "without
  linking to the SVM library", per the paper's methodology).
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional

__all__ = ["ParallelContext", "Backend"]


class Backend(abc.ABC):
    """What a runtime must provide to host an application."""

    @abc.abstractmethod
    def allocate(self, name: str, n_pages: int, home_policy: str = "blocked",
                 home_fn=None):
        """Create a shared region of ``n_pages``."""

    @abc.abstractmethod
    def op_compute(self, rank: int, us: float, bus_intensity: float):
        ...

    @abc.abstractmethod
    def op_read(self, rank: int, region, pages: Iterable[int]):
        ...

    @abc.abstractmethod
    def op_write(self, rank: int, region, pages: Iterable[int],
                 runs_per_page: int, bytes_per_page: Optional[int]):
        ...

    @abc.abstractmethod
    def op_lock(self, rank: int, lock_id: int):
        ...

    @abc.abstractmethod
    def op_unlock(self, rank: int, lock_id: int):
        ...

    @abc.abstractmethod
    def op_acquire_flag(self, rank: int, flag_id: int):
        ...

    @abc.abstractmethod
    def op_release_flag(self, rank: int, flag_id: int):
        ...

    @abc.abstractmethod
    def op_barrier(self, rank: int):
        ...


class ParallelContext:
    """Per-rank handle an application generator uses for all its work.

    All methods are generators: application code writes
    ``yield from ctx.read(region, pages)`` etc.
    """

    __slots__ = ("backend", "rank", "nprocs", "bus_intensity")

    def __init__(self, backend: Backend, rank: int, nprocs: int,
                 bus_intensity: float = 0.0):
        self.backend = backend
        self.rank = rank
        self.nprocs = nprocs
        #: default memory-bus intensity for this app's compute phases.
        self.bus_intensity = bus_intensity

    # -- work ---------------------------------------------------------------

    def compute(self, us: float, bus_intensity: Optional[float] = None):
        """Local computation of ``us`` microseconds (pre-contention)."""
        intensity = self.bus_intensity if bus_intensity is None \
            else bus_intensity
        return self.backend.op_compute(self.rank, us, intensity)

    def read(self, region, pages: Iterable[int]):
        """Touch shared pages for reading."""
        return self.backend.op_read(self.rank, region, pages)

    def write(self, region, pages: Iterable[int], runs_per_page: int = 1,
              bytes_per_page: Optional[int] = None):
        """Modify shared pages.  ``runs_per_page`` expresses how
        scattered the writes are (contiguous update = 1); it governs
        direct-diff message counts."""
        return self.backend.op_write(self.rank, region, pages,
                                     runs_per_page, bytes_per_page)

    # -- synchronization -------------------------------------------------------

    def lock(self, lock_id: int):
        return self.backend.op_lock(self.rank, lock_id)

    def unlock(self, lock_id: int):
        return self.backend.op_unlock(self.rank, lock_id)

    def acquire_flag(self, flag_id: int):
        return self.backend.op_acquire_flag(self.rank, flag_id)

    def release_flag(self, flag_id: int):
        return self.backend.op_release_flag(self.rank, flag_id)

    def barrier(self):
        return self.backend.op_barrier(self.rank)

    # -- partitioning helpers ---------------------------------------------------

    def my_slice(self, n: int):
        """This rank's contiguous share of ``n`` items: (start, stop)."""
        per = n // self.nprocs
        extra = n % self.nprocs
        start = self.rank * per + min(self.rank, extra)
        stop = start + per + (1 if self.rank < extra else 0)
        return start, stop

    def my_items(self, n: int) -> range:
        start, stop = self.my_slice(n)
        return range(start, stop)
