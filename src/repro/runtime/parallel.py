"""Parallel grid execution over a persistent content-addressed run cache.

The paper's evaluation is a grid — applications x the ``Base -> DW ->
DW+RF -> DW+RF+DD -> GeNIMA`` ladder (x node counts x fault configs) —
and every cell is an independent, deterministic simulation.  This
module moves the repeated work off the critical path twice over:

* :class:`GridExecutor` fans cells out across a ``multiprocessing``
  worker pool (spawn context, so workers share nothing with the parent
  but the pickled :class:`CellSpec`), and
* :class:`ResultStore` persists every evaluated cell under a
  content-addressed key, so a cell whose inputs have not changed is
  never recomputed — not in this process, not in the next one.

**Keying.**  A cell's digest is the SHA-256 of the canonical JSON of
its full description: kind, application name, canonicalized
constructor params (dicts sorted, tuples/lists normalized),
:class:`~repro.svm.features.ProtocolFeatures`,
:class:`~repro.hw.config.MachineConfig` (which embeds the
:class:`~repro.hw.config.FaultConfig`, seeds included), plus a *code
fingerprint* — the package version hashed together with every source
file the simulation's outcome can depend on.  Editing the simulator
invalidates the whole store automatically; editing only docs or the
experiment renderers does not.

**Determinism.**  The simulator guarantees byte-identical results per
cell; the executor adds two rules so the *grid* inherits that
guarantee: results are merged by digest, never by completion order,
and every evaluation path (in-process, worker pool, cache hit) yields
the result through the same JSON encode/decode round trip, so
``--jobs 1``, ``--jobs N`` and warm-cache reruns are bit-identical.

Store layout (see docs/performance.md)::

    <root>/v<schema>/<digest[:2]>/<digest>.json

with ``<root>`` from the constructor, ``$REPRO_CACHE_DIR``, or
``~/.cache/repro``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..hw import MachineConfig
from ..svm import ProtocolFeatures
from .results import RunResult

__all__ = [
    "STORE_SCHEMA",
    "canonical",
    "canonical_json",
    "code_fingerprint",
    "CellSpec",
    "evaluate_cell",
    "encode_result",
    "decode_result",
    "decode_payload",
    "make_envelope",
    "ResultStore",
    "GridPlan",
    "GridExecutor",
]

#: store schema version: bump on any breaking change to the payload
#: encoding (participates in every digest, so old entries become
#: unreachable rather than misread).
STORE_SCHEMA = 1

#: package subdirectories whose sources determine simulation outcomes;
#: all of them feed the code fingerprint.  ``experiments``/``cli`` are
#: deliberately absent as *directories*: renderers and drivers consume
#: results, they do not produce them.
FINGERPRINT_DIRS = ("sim", "hw", "svm", "vmmc", "faults", "apps",
                    "runtime", "hwdsm", "obs", "analysis")

#: individual modules outside FINGERPRINT_DIRS that evaluate_cell can
#: still execute (lazy imports): they shape cached payloads, so they
#: must invalidate the cache too.  The FPR whole-program lint pass
#: verifies this list covers everything reachable from this module.
FINGERPRINT_MODULES = ("__init__.py", "experiments/cache.py",
                       "experiments/critpath.py",
                       "experiments/profile.py",
                       "experiments/reporting.py")


# --------------------------------------------------------------- canonical


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serializable structure.

    Dataclasses become tagged dicts, dict keys are stringified and
    sorted, tuples/lists become lists, sets become sorted lists —
    so two values that compare equal canonicalize identically,
    regardless of dict insertion order or tuple-vs-list spelling.
    This is the one true keying path: every cache key in the project
    must go through here (plain ``tuple(sorted(params.items()))``
    keying breaks on dict/list-valued params).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__name__,
                **{f.name: canonical(getattr(obj, f.name))
                   for f in dataclasses.fields(obj)}}
    if isinstance(obj, dict):
        items = sorted(((str(k), canonical(v)) for k, v in obj.items()),
                       key=lambda kv: kv[0])
        return dict(items)
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((canonical(x) for x in obj),
                      key=lambda x: json.dumps(x, sort_keys=True))
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} value {obj!r} "
        f"for cache keying")


def canonical_json(obj: Any) -> str:
    """Canonical JSON text for ``obj`` (stable across processes)."""
    return json.dumps(canonical(obj), sort_keys=True,
                      separators=(",", ":"))


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of the package version plus every outcome-relevant source.

    Cached per process: the sources cannot change under a running
    simulation, and hashing ~80 files on every digest would dominate
    cache lookups.
    """
    import repro
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    digest.update(repro.__version__.encode())
    paths = [path
             for sub in FINGERPRINT_DIRS
             for path in sorted((root / sub).rglob("*.py"))]
    paths.extend(root / mod for mod in FINGERPRINT_MODULES)
    for path in sorted(paths):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------- cells


@dataclass(frozen=True)
class CellSpec:
    """One grid cell: everything needed to (re)produce one result.

    ``kind`` selects the evaluation recipe:

    * ``"svm"``      — :func:`repro.runtime.run_svm` under ``features``
    * ``"seq"``      — the uniprocessor baseline
    * ``"origin"``   — the hardware-DSM yardstick (``nprocs``)
    * ``"profile"``  — a profiled run (``slice_us``), yields a
      :class:`~repro.obs.Profile`
    * ``"critpath"`` — a spanned run, yields a
      :class:`~repro.experiments.CritpathRun` (without its tracer:
      Perfetto export needs a live run)

    Instances must stay picklable (spawn workers receive them) and
    fully canonicalizable (digests are derived from them).
    """

    kind: str
    app: str
    params: Dict[str, Any] = field(default_factory=dict)
    features: Optional[ProtocolFeatures] = None
    config: Optional[MachineConfig] = None
    nprocs: Optional[int] = None      # origin cells
    slice_us: Optional[float] = None  # profile cells
    check: bool = False               # profile/critpath cells
    #: svm cells: attach a TimeSeriesSampler at this cadence and store
    #: its summary in the result (None == unsampled, the default).
    telemetry_us: Optional[float] = None

    def digest(self, fingerprint: Optional[str] = None) -> str:
        """Content address of this cell under the current sources."""
        payload = {
            "schema": STORE_SCHEMA,
            "fingerprint": fingerprint or code_fingerprint(),
            "cell": canonical(self),
        }
        return hashlib.sha256(
            canonical_json(payload).encode()).hexdigest()


def _make_app(spec: CellSpec):
    from ..apps import APP_REGISTRY
    cls = APP_REGISTRY[spec.app]
    return cls(**spec.params) if spec.params else cls()


def evaluate_cell(spec: CellSpec) -> dict:
    """Evaluate one cell and return its JSON-safe store payload.

    Runs in worker processes (spawn) as well as in-process; everything
    it returns must survive ``json.dumps``/``loads`` losslessly, and it
    must not touch the persistent store (the parent is the only
    writer).
    """
    # Imported lazily: this module is part of repro.runtime, and the
    # app/experiment layers import the runtime at module load.
    from .runner import run_hwdsm, run_sequential, run_svm
    app = _make_app(spec)
    if spec.kind == "svm":
        telemetry = None
        if spec.telemetry_us is not None:
            from ..obs import TimeSeriesSampler
            telemetry = TimeSeriesSampler(cadence_us=spec.telemetry_us)
        result = run_svm(app, spec.features, config=spec.config,
                         telemetry=telemetry)
        return {"kind": "svm", "result": encode_result(result)}
    if spec.kind == "seq":
        result = run_sequential(app, config=spec.config)
        return {"kind": "seq", "result": encode_result(result)}
    if spec.kind == "origin":
        from ..hwdsm import HWDSMConfig
        result = run_hwdsm(app, config=HWDSMConfig(nprocs=spec.nprocs))
        return {"kind": "origin", "result": encode_result(result)}
    if spec.kind == "profile":
        from ..experiments.profile import collect_profile
        profile = collect_profile(app, spec.features, config=spec.config,
                                  slice_us=spec.slice_us, check=spec.check)
        return {"kind": "profile", "profile": profile.to_dict()}
    if spec.kind == "critpath":
        from ..experiments.critpath import collect_critpath
        run = collect_critpath(app, spec.features, config=spec.config,
                               check=spec.check)
        return {"kind": "critpath", "variant": run.variant,
                "path": run.path.to_dict(),
                "result": encode_result(run.result)}
    raise ValueError(f"unknown cell kind {spec.kind!r}")


# ----------------------------------------------------------- (de)coding


def encode_result(result: RunResult) -> dict:
    """JSON-safe encoding of a :class:`RunResult` (lossless: floats
    round-trip exactly through JSON's shortest-repr encoding)."""
    return {
        "app": result.app,
        "system": result.system,
        "nprocs": result.nprocs,
        "time_us": result.time_us,
        "wall_us": list(result.wall_us),
        "buckets": [b.as_dict() for b in result.buckets],
        "barrier_protocol_us": list(result.barrier_protocol_us),
        "mprotect_us": result.mprotect_us,
        "stats": dict(result.stats),
        "monitor_small": result.monitor_small,
        "monitor_large": result.monitor_large,
        "telemetry": result.telemetry,
    }


def decode_result(data: dict) -> RunResult:
    """Inverse of :func:`encode_result`."""
    from ..sim import TimeBuckets
    return RunResult(
        app=data["app"],
        system=data["system"],
        nprocs=data["nprocs"],
        time_us=data["time_us"],
        wall_us=list(data["wall_us"]),
        buckets=[TimeBuckets.from_dict(b) for b in data["buckets"]],
        barrier_protocol_us=list(data["barrier_protocol_us"]),
        mprotect_us=data["mprotect_us"],
        stats=dict(data["stats"]),
        monitor_small=data["monitor_small"],
        monitor_large=data["monitor_large"],
        telemetry=data.get("telemetry"),
    )


def decode_payload(payload: dict):
    """Store payload -> live object (RunResult / Profile / CritpathRun).

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
    payloads; :meth:`GridExecutor.map` treats any of those as a cache
    miss and recomputes.
    """
    kind = payload["kind"]
    if kind in ("svm", "seq", "origin"):
        return decode_result(payload["result"])
    if kind == "profile":
        from ..obs import Profile
        return Profile.from_payload(payload["profile"])
    if kind == "critpath":
        from ..analysis.critpath import CriticalPath
        from ..experiments.critpath import CritpathRun
        return CritpathRun(variant=payload["variant"],
                           result=decode_result(payload["result"]),
                           path=CriticalPath.from_dict(payload["path"]),
                           tracer=None)
    raise ValueError(f"unknown payload kind {kind!r}")


def make_envelope(spec: CellSpec, payload: dict,
                  fingerprint: Optional[str] = None) -> dict:
    """The store envelope for one evaluated cell.

    One shape for every writer — the in-process executor, pool
    workers' parents, and the serve daemon all persist exactly this,
    so any of them can read any other's entries.
    """
    return {
        "schema": STORE_SCHEMA,
        "fingerprint": fingerprint or code_fingerprint(),
        "cell": canonical(spec),
        "payload": payload,
    }


# ------------------------------------------------------------------ store


class ResultStore:
    """Persistent content-addressed store of evaluated cells.

    One JSON file per cell under ``<root>/v<schema>/``; writes are
    atomic (temp file + ``os.replace``), reads tolerate arbitrary
    corruption by reporting a miss.  The root resolves, in order:
    explicit ``root`` argument, ``$REPRO_CACHE_DIR``, then
    ``~/.cache/repro``.

    **Concurrent writers.**  The store is content-addressed over a
    deterministic simulator, so two writers racing on one digest are
    by construction writing identical bytes — the atomic replace
    already makes the race harmless.  :meth:`store` still takes a
    per-digest ``O_CREAT|O_EXCL`` lockfile claim first, so that when a
    serve daemon and ad-hoc CLI runs share one ``--cache-dir`` only
    one of them spends the serialization work; the loser just skips
    the write (the winner's bytes would have been its own).  A claim
    older than ``lock_stale_s`` is presumed orphaned (killed writer)
    and broken.
    """

    #: a lockfile older than this is an orphan and may be broken.
    lock_stale_s: float = 300.0

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro")
        self.root = Path(root)

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{STORE_SCHEMA}"

    def path_for(self, digest: str) -> Path:
        return self.version_dir / digest[:2] / f"{digest}.json"

    def load(self, digest: str) -> Optional[dict]:
        """The stored payload envelope for ``digest``, or None.

        Any way an entry can be bad — unreadable, truncated, not JSON,
        wrong schema, not written by this store — reads as a miss,
        never an exception: a corrupted cache must only ever cost a
        recompute.
        """
        try:
            text = self.path_for(digest).read_text()
        except OSError:
            return None
        try:
            envelope = json.loads(text)
        except ValueError:
            return None
        if (not isinstance(envelope, dict)
                or envelope.get("schema") != STORE_SCHEMA
                or not isinstance(envelope.get("payload"), dict)):
            return None
        return envelope

    def lock_path(self, digest: str) -> Path:
        return self.version_dir / digest[:2] / f"{digest}.lock"

    def _claim(self, lock: Path) -> Optional[int]:
        """Take the per-digest write claim, or return None if another
        live writer holds it.  A stale claim (older than
        ``lock_stale_s``) is broken once and re-tried."""
        for attempt in (0, 1):
            try:
                return os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt:
                    return None
                try:
                    # Wall time here ages an OS lockfile, not simulated
                    # state; mtimes are wall-clock by nature.
                    age = time.time() - os.stat(lock).st_mtime  # repro: noqa[wall-clock] — lockfile staleness is wall-clock by nature
                except OSError:
                    continue  # holder just released it: retry the claim
                if age < self.lock_stale_s:
                    return None
                try:
                    os.unlink(lock)  # break the orphaned claim
                except OSError:
                    pass
        return None

    def store(self, digest: str, envelope: dict) -> bool:
        """Atomically persist ``envelope`` under ``digest``.

        Returns True when this call wrote the entry, False when a
        concurrent writer held the per-digest claim (in which case the
        entry is theirs to finish — deterministic content addressing
        makes their bytes identical to ours, so skipping is safe and
        cheaper than queueing).
        """
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock = self.lock_path(digest)
        fd = self._claim(lock)
        if fd is None:
            return False
        try:
            tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
            tmp.write_text(json.dumps(envelope, sort_keys=True) + "\n")
            os.replace(tmp, path)
            return True
        finally:
            os.close(fd)
            try:
                os.unlink(lock)
            except OSError:
                pass

    def entries(self) -> Iterator[Tuple[str, dict]]:
        """Iterate ``(digest, envelope)`` over all readable entries,
        in sorted digest order (for ``wipe``-safe inspection)."""
        if not self.version_dir.is_dir():
            return
        for path in sorted(self.version_dir.glob("*/*.json")):
            envelope = self.load(path.stem)
            if envelope is not None:
                yield path.stem, envelope

    def __len__(self) -> int:
        if not self.version_dir.is_dir():
            return 0
        return sum(1 for _ in self.version_dir.glob("*/*.json"))

    def wipe(self) -> None:
        """Delete every entry of this schema version."""
        shutil.rmtree(self.version_dir, ignore_errors=True)


# --------------------------------------------------------------- executor


@dataclass
class GridPlan:
    """The submit half of a grid evaluation: deduplicated digests with
    warm hits already decoded and the misses still to compute.

    Produced by :meth:`GridExecutor.submit`; consumed (exactly once)
    by :meth:`GridExecutor.collect`.  Splitting the two lets a caller
    that owns its own evaluation loop — the serve daemon's
    single-flight scheduler — reuse the planning/lookup/persist logic
    while scheduling the misses itself.
    """

    fingerprint: str
    #: unique digests in first-seen submission order.
    order: List[str]
    #: digest -> the (first) spec that produced it.
    specs: Dict[str, CellSpec]
    #: digest -> decoded live object, for cells the store already had.
    hits: Dict[str, object]
    #: digests still to evaluate, in submission order.
    misses: List[str]


class GridExecutor:
    """Evaluate grid cells concurrently, through the store when given.

    ``map`` is the main API: specs in, ``{digest: live object}`` out.
    It is the composition of two halves — :meth:`submit` (dedup by
    digest + store lookup, no evaluation) and :meth:`collect`
    (evaluate the misses, persist, decode) — exposed separately so
    long-lived callers can interleave their own scheduling between
    them.  All of it is order-independent: the result dict is keyed
    by content digest, and every value passes through the same JSON
    round trip regardless of where it was computed.

    ``jobs`` is clamped to the host's CPU count unless ``jobs_force``
    is set: on an oversubscribed box the extra spawn workers only add
    scheduling overhead (BENCH_grid's ``cold_jobs4`` on a 1-CPU host
    regressed to 0.83x), so asking for more workers than cores is
    almost always a mistake.  ``requested_jobs`` keeps the caller's
    original ask so benchmarks can report oversubscription honestly.
    """

    def __init__(self, jobs: int = 1,
                 store: Optional[ResultStore] = None,
                 jobs_force: bool = False):
        self.requested_jobs = max(1, int(jobs))
        cap = os.cpu_count() or 1
        self.jobs = (self.requested_jobs if jobs_force
                     else min(self.requested_jobs, cap))
        self.store = store

    def map(self, specs: Iterable[CellSpec]) -> Dict[str, object]:
        return self.collect(self.submit(specs))

    def submit(self, specs: Iterable[CellSpec]) -> GridPlan:
        """Dedup ``specs`` by digest and resolve warm store hits.

        Evaluates nothing; a corrupted store entry reads as a miss
        (and will be healed by :meth:`collect`).
        """
        fingerprint = code_fingerprint()
        order: List[str] = []
        by_digest: Dict[str, CellSpec] = {}
        for spec in specs:
            digest = spec.digest(fingerprint)
            if digest not in by_digest:
                by_digest[digest] = spec
                order.append(digest)

        hits: Dict[str, object] = {}
        misses: List[str] = []
        for digest in order:
            envelope = (self.store.load(digest)
                        if self.store is not None else None)
            if envelope is not None:
                try:
                    hits[digest] = decode_payload(envelope["payload"])
                    continue
                except (KeyError, TypeError, ValueError):
                    pass  # corrupted entry: fall through to recompute
            misses.append(digest)
        return GridPlan(fingerprint=fingerprint, order=order,
                        specs=by_digest, hits=hits, misses=misses)

    def collect(self, plan: GridPlan) -> Dict[str, object]:
        """Evaluate ``plan``'s misses, persist them, return the full
        ``{digest: live object}`` map (hits included)."""
        out = dict(plan.hits)
        if plan.misses:
            payloads = self._evaluate([plan.specs[d] for d in plan.misses])
            for digest, payload in zip(plan.misses, payloads):
                if self.store is not None:
                    self.store.store(digest, make_envelope(
                        plan.specs[digest], payload, plan.fingerprint))
                out[digest] = decode_payload(payload)
        return out

    def _evaluate(self, specs: List[CellSpec]) -> List[dict]:
        """Payloads for ``specs``, in input order."""
        if self.jobs <= 1 or len(specs) <= 1:
            return [evaluate_cell(spec) for spec in specs]
        import multiprocessing
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=min(self.jobs, len(specs))) as pool:
            # pool.map preserves input order, so the zip in collect()
            # pairs digests with their own payloads no matter which
            # worker finished first.
            return pool.map(evaluate_cell, specs, chunksize=1)
