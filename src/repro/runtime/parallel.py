"""Parallel grid execution over a persistent content-addressed run cache.

The paper's evaluation is a grid — applications x the ``Base -> DW ->
DW+RF -> DW+RF+DD -> GeNIMA`` ladder (x node counts x fault configs) —
and every cell is an independent, deterministic simulation.  This
module moves the repeated work off the critical path twice over:

* :class:`GridExecutor` fans cells out across a ``multiprocessing``
  worker pool (spawn context, so workers share nothing with the parent
  but the pickled :class:`CellSpec`), and
* :class:`ResultStore` persists every evaluated cell under a
  content-addressed key, so a cell whose inputs have not changed is
  never recomputed — not in this process, not in the next one.

**Keying.**  A cell's digest is the SHA-256 of the canonical JSON of
its full description: kind, application name, canonicalized
constructor params (dicts sorted, tuples/lists normalized),
:class:`~repro.svm.features.ProtocolFeatures`,
:class:`~repro.hw.config.MachineConfig` (which embeds the
:class:`~repro.hw.config.FaultConfig`, seeds included), plus a *code
fingerprint* — the package version hashed together with every source
file the simulation's outcome can depend on.  Editing the simulator
invalidates the whole store automatically; editing only docs or the
experiment renderers does not.

**Determinism.**  The simulator guarantees byte-identical results per
cell; the executor adds two rules so the *grid* inherits that
guarantee: results are merged by digest, never by completion order,
and every evaluation path (in-process, worker pool, cache hit) yields
the result through the same JSON encode/decode round trip, so
``--jobs 1``, ``--jobs N`` and warm-cache reruns are bit-identical.

Store layout (see docs/performance.md)::

    <root>/v<schema>/<digest[:2]>/<digest>.json

with ``<root>`` from the constructor, ``$REPRO_CACHE_DIR``, or
``~/.cache/repro``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..hw import MachineConfig
from ..svm import ProtocolFeatures
from .results import RunResult

__all__ = [
    "STORE_SCHEMA",
    "canonical",
    "canonical_json",
    "code_fingerprint",
    "CellSpec",
    "evaluate_cell",
    "encode_result",
    "decode_result",
    "decode_payload",
    "ResultStore",
    "GridExecutor",
]

#: store schema version: bump on any breaking change to the payload
#: encoding (participates in every digest, so old entries become
#: unreachable rather than misread).
STORE_SCHEMA = 1

#: package subdirectories whose sources determine simulation outcomes;
#: all of them feed the code fingerprint.  ``experiments``/``cli`` are
#: deliberately absent as *directories*: renderers and drivers consume
#: results, they do not produce them.
FINGERPRINT_DIRS = ("sim", "hw", "svm", "vmmc", "faults", "apps",
                    "runtime", "hwdsm", "obs", "analysis")

#: individual modules outside FINGERPRINT_DIRS that evaluate_cell can
#: still execute (lazy imports): they shape cached payloads, so they
#: must invalidate the cache too.  The FPR whole-program lint pass
#: verifies this list covers everything reachable from this module.
FINGERPRINT_MODULES = ("__init__.py", "experiments/cache.py",
                       "experiments/critpath.py",
                       "experiments/profile.py",
                       "experiments/reporting.py")


# --------------------------------------------------------------- canonical


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serializable structure.

    Dataclasses become tagged dicts, dict keys are stringified and
    sorted, tuples/lists become lists, sets become sorted lists —
    so two values that compare equal canonicalize identically,
    regardless of dict insertion order or tuple-vs-list spelling.
    This is the one true keying path: every cache key in the project
    must go through here (plain ``tuple(sorted(params.items()))``
    keying breaks on dict/list-valued params).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__name__,
                **{f.name: canonical(getattr(obj, f.name))
                   for f in dataclasses.fields(obj)}}
    if isinstance(obj, dict):
        items = sorted(((str(k), canonical(v)) for k, v in obj.items()),
                       key=lambda kv: kv[0])
        return dict(items)
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((canonical(x) for x in obj),
                      key=lambda x: json.dumps(x, sort_keys=True))
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} value {obj!r} "
        f"for cache keying")


def canonical_json(obj: Any) -> str:
    """Canonical JSON text for ``obj`` (stable across processes)."""
    return json.dumps(canonical(obj), sort_keys=True,
                      separators=(",", ":"))


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of the package version plus every outcome-relevant source.

    Cached per process: the sources cannot change under a running
    simulation, and hashing ~80 files on every digest would dominate
    cache lookups.
    """
    import repro
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    digest.update(repro.__version__.encode())
    paths = [path
             for sub in FINGERPRINT_DIRS
             for path in sorted((root / sub).rglob("*.py"))]
    paths.extend(root / mod for mod in FINGERPRINT_MODULES)
    for path in sorted(paths):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------- cells


@dataclass(frozen=True)
class CellSpec:
    """One grid cell: everything needed to (re)produce one result.

    ``kind`` selects the evaluation recipe:

    * ``"svm"``      — :func:`repro.runtime.run_svm` under ``features``
    * ``"seq"``      — the uniprocessor baseline
    * ``"origin"``   — the hardware-DSM yardstick (``nprocs``)
    * ``"profile"``  — a profiled run (``slice_us``), yields a
      :class:`~repro.obs.Profile`
    * ``"critpath"`` — a spanned run, yields a
      :class:`~repro.experiments.CritpathRun` (without its tracer:
      Perfetto export needs a live run)

    Instances must stay picklable (spawn workers receive them) and
    fully canonicalizable (digests are derived from them).
    """

    kind: str
    app: str
    params: Dict[str, Any] = field(default_factory=dict)
    features: Optional[ProtocolFeatures] = None
    config: Optional[MachineConfig] = None
    nprocs: Optional[int] = None      # origin cells
    slice_us: Optional[float] = None  # profile cells
    check: bool = False               # profile/critpath cells
    #: svm cells: attach a TimeSeriesSampler at this cadence and store
    #: its summary in the result (None == unsampled, the default).
    telemetry_us: Optional[float] = None

    def digest(self, fingerprint: Optional[str] = None) -> str:
        """Content address of this cell under the current sources."""
        payload = {
            "schema": STORE_SCHEMA,
            "fingerprint": fingerprint or code_fingerprint(),
            "cell": canonical(self),
        }
        return hashlib.sha256(
            canonical_json(payload).encode()).hexdigest()


def _make_app(spec: CellSpec):
    from ..apps import APP_REGISTRY
    cls = APP_REGISTRY[spec.app]
    return cls(**spec.params) if spec.params else cls()


def evaluate_cell(spec: CellSpec) -> dict:
    """Evaluate one cell and return its JSON-safe store payload.

    Runs in worker processes (spawn) as well as in-process; everything
    it returns must survive ``json.dumps``/``loads`` losslessly, and it
    must not touch the persistent store (the parent is the only
    writer).
    """
    # Imported lazily: this module is part of repro.runtime, and the
    # app/experiment layers import the runtime at module load.
    from .runner import run_hwdsm, run_sequential, run_svm
    app = _make_app(spec)
    if spec.kind == "svm":
        telemetry = None
        if spec.telemetry_us is not None:
            from ..obs import TimeSeriesSampler
            telemetry = TimeSeriesSampler(cadence_us=spec.telemetry_us)
        result = run_svm(app, spec.features, config=spec.config,
                         telemetry=telemetry)
        return {"kind": "svm", "result": encode_result(result)}
    if spec.kind == "seq":
        result = run_sequential(app, config=spec.config)
        return {"kind": "seq", "result": encode_result(result)}
    if spec.kind == "origin":
        from ..hwdsm import HWDSMConfig
        result = run_hwdsm(app, config=HWDSMConfig(nprocs=spec.nprocs))
        return {"kind": "origin", "result": encode_result(result)}
    if spec.kind == "profile":
        from ..experiments.profile import collect_profile
        profile = collect_profile(app, spec.features, config=spec.config,
                                  slice_us=spec.slice_us, check=spec.check)
        return {"kind": "profile", "profile": profile.to_dict()}
    if spec.kind == "critpath":
        from ..experiments.critpath import collect_critpath
        run = collect_critpath(app, spec.features, config=spec.config,
                               check=spec.check)
        return {"kind": "critpath", "variant": run.variant,
                "path": run.path.to_dict(),
                "result": encode_result(run.result)}
    raise ValueError(f"unknown cell kind {spec.kind!r}")


# ----------------------------------------------------------- (de)coding


def encode_result(result: RunResult) -> dict:
    """JSON-safe encoding of a :class:`RunResult` (lossless: floats
    round-trip exactly through JSON's shortest-repr encoding)."""
    return {
        "app": result.app,
        "system": result.system,
        "nprocs": result.nprocs,
        "time_us": result.time_us,
        "wall_us": list(result.wall_us),
        "buckets": [b.as_dict() for b in result.buckets],
        "barrier_protocol_us": list(result.barrier_protocol_us),
        "mprotect_us": result.mprotect_us,
        "stats": dict(result.stats),
        "monitor_small": result.monitor_small,
        "monitor_large": result.monitor_large,
        "telemetry": result.telemetry,
    }


def decode_result(data: dict) -> RunResult:
    """Inverse of :func:`encode_result`."""
    from ..sim import TimeBuckets
    return RunResult(
        app=data["app"],
        system=data["system"],
        nprocs=data["nprocs"],
        time_us=data["time_us"],
        wall_us=list(data["wall_us"]),
        buckets=[TimeBuckets.from_dict(b) for b in data["buckets"]],
        barrier_protocol_us=list(data["barrier_protocol_us"]),
        mprotect_us=data["mprotect_us"],
        stats=dict(data["stats"]),
        monitor_small=data["monitor_small"],
        monitor_large=data["monitor_large"],
        telemetry=data.get("telemetry"),
    )


def decode_payload(payload: dict):
    """Store payload -> live object (RunResult / Profile / CritpathRun).

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
    payloads; :meth:`GridExecutor.map` treats any of those as a cache
    miss and recomputes.
    """
    kind = payload["kind"]
    if kind in ("svm", "seq", "origin"):
        return decode_result(payload["result"])
    if kind == "profile":
        from ..obs import Profile
        return Profile.from_payload(payload["profile"])
    if kind == "critpath":
        from ..analysis.critpath import CriticalPath
        from ..experiments.critpath import CritpathRun
        return CritpathRun(variant=payload["variant"],
                           result=decode_result(payload["result"]),
                           path=CriticalPath.from_dict(payload["path"]),
                           tracer=None)
    raise ValueError(f"unknown payload kind {kind!r}")


# ------------------------------------------------------------------ store


class ResultStore:
    """Persistent content-addressed store of evaluated cells.

    One JSON file per cell under ``<root>/v<schema>/``; writes are
    atomic (temp file + ``os.replace``), reads tolerate arbitrary
    corruption by reporting a miss.  The root resolves, in order:
    explicit ``root`` argument, ``$REPRO_CACHE_DIR``, then
    ``~/.cache/repro``.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro")
        self.root = Path(root)

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{STORE_SCHEMA}"

    def path_for(self, digest: str) -> Path:
        return self.version_dir / digest[:2] / f"{digest}.json"

    def load(self, digest: str) -> Optional[dict]:
        """The stored payload envelope for ``digest``, or None.

        Any way an entry can be bad — unreadable, truncated, not JSON,
        wrong schema, not written by this store — reads as a miss,
        never an exception: a corrupted cache must only ever cost a
        recompute.
        """
        try:
            text = self.path_for(digest).read_text()
        except OSError:
            return None
        try:
            envelope = json.loads(text)
        except ValueError:
            return None
        if (not isinstance(envelope, dict)
                or envelope.get("schema") != STORE_SCHEMA
                or not isinstance(envelope.get("payload"), dict)):
            return None
        return envelope

    def store(self, digest: str, envelope: dict) -> None:
        """Atomically persist ``envelope`` under ``digest``."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(envelope, sort_keys=True) + "\n")
        os.replace(tmp, path)

    def entries(self) -> Iterator[Tuple[str, dict]]:
        """Iterate ``(digest, envelope)`` over all readable entries,
        in sorted digest order (for ``wipe``-safe inspection)."""
        if not self.version_dir.is_dir():
            return
        for path in sorted(self.version_dir.glob("*/*.json")):
            envelope = self.load(path.stem)
            if envelope is not None:
                yield path.stem, envelope

    def __len__(self) -> int:
        if not self.version_dir.is_dir():
            return 0
        return sum(1 for _ in self.version_dir.glob("*/*.json"))

    def wipe(self) -> None:
        """Delete every entry of this schema version."""
        shutil.rmtree(self.version_dir, ignore_errors=True)


# --------------------------------------------------------------- executor


class GridExecutor:
    """Evaluate grid cells concurrently, through the store when given.

    ``map`` is the whole API: specs in, ``{digest: live object}`` out.
    Deduplication, cache lookup, pool fan-out, persistence and
    decoding all happen here, and all of it is order-independent:
    the result dict is keyed by content digest, and every value
    passes through the same JSON round trip regardless of where it
    was computed.
    """

    def __init__(self, jobs: int = 1,
                 store: Optional[ResultStore] = None):
        self.jobs = max(1, int(jobs))
        self.store = store

    def map(self, specs: Iterable[CellSpec]) -> Dict[str, object]:
        fingerprint = code_fingerprint()
        order: List[str] = []
        by_digest: Dict[str, CellSpec] = {}
        for spec in specs:
            digest = spec.digest(fingerprint)
            if digest not in by_digest:
                by_digest[digest] = spec
                order.append(digest)

        out: Dict[str, object] = {}
        misses: List[str] = []
        for digest in order:
            envelope = (self.store.load(digest)
                        if self.store is not None else None)
            if envelope is not None:
                try:
                    out[digest] = decode_payload(envelope["payload"])
                    continue
                except (KeyError, TypeError, ValueError):
                    pass  # corrupted entry: fall through to recompute
            misses.append(digest)

        if misses:
            payloads = self._evaluate([by_digest[d] for d in misses])
            for digest, payload in zip(misses, payloads):
                if self.store is not None:
                    self.store.store(digest, {
                        "schema": STORE_SCHEMA,
                        "fingerprint": fingerprint,
                        "cell": canonical(by_digest[digest]),
                        "payload": payload,
                    })
                out[digest] = decode_payload(payload)
        return out

    def _evaluate(self, specs: List[CellSpec]) -> List[dict]:
        """Payloads for ``specs``, in input order."""
        if self.jobs <= 1 or len(specs) <= 1:
            return [evaluate_cell(spec) for spec in specs]
        import multiprocessing
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=min(self.jobs, len(specs))) as pool:
            # pool.map preserves input order, so the zip in map() pairs
            # digests with their own payloads no matter which worker
            # finished first.
            return pool.map(evaluate_cell, specs, chunksize=1)
