"""Runtime: app-facing parallel API, backends, run driver, results,
and the parallel grid executor + persistent run cache."""

from .backends import LocalBackend, SVMBackend
from .context import Backend, ParallelContext
from .parallel import (CellSpec, GridExecutor, GridPlan, ResultStore,
                       canonical, canonical_json, code_fingerprint)
from .results import RunResult, speedup
from .runner import run_hwdsm, run_on_backend, run_sequential, run_svm

__all__ = [
    "Backend",
    "ParallelContext",
    "LocalBackend",
    "SVMBackend",
    "RunResult",
    "speedup",
    "run_hwdsm",
    "run_on_backend",
    "run_sequential",
    "run_svm",
    "CellSpec",
    "GridExecutor",
    "GridPlan",
    "ResultStore",
    "canonical",
    "canonical_json",
    "code_fingerprint",
]
