"""Backend adapters: SVM cluster and uniprocessor baseline."""

from __future__ import annotations

from typing import Optional

from ..hw import Machine, MachineConfig
from ..sim import SpanTracer
from ..svm import HLRCProtocol, ProtocolFeatures
from ..vmmc import PerfMonitor, VMMC
from .context import Backend

__all__ = ["SVMBackend", "LocalBackend"]


class SVMBackend(Backend):
    """The shared-virtual-memory cluster (the paper's system)."""

    def __init__(self, config: MachineConfig, features: ProtocolFeatures,
                 with_monitor: bool = True, tracer=None,
                 check: bool = False, spans: bool = False):
        self.machine = Machine(config)
        self.spans = None
        if spans:
            if tracer is None:
                raise ValueError("spans=True requires a tracer")
            self.spans = SpanTracer(tracer, self.machine.sim)
        self.vmmc = VMMC(self.machine, spans=self.spans)
        self.monitor = PerfMonitor(self.machine) if with_monitor else None
        self.protocol = HLRCProtocol(self.machine, features,
                                     vmmc=self.vmmc, tracer=tracer,
                                     spans=self.spans)
        if tracer is not None:
            self.machine.attach_tracer(tracer)
        if self.spans is not None:
            self.machine.attach_spans(self.spans)
        self.config = config
        self.features = features
        self.invariants = None
        if check:
            # Imported here: repro.analysis imports the runtime for
            # sanitize_run, so a top-level import would be circular.
            from ..analysis.invariants import InvariantChecker
            self.invariants = InvariantChecker(self.protocol).install()

    @property
    def sim(self):
        return self.machine.sim

    @property
    def nprocs(self) -> int:
        return self.config.total_procs

    def allocate(self, name, n_pages, home_policy="blocked", home_fn=None):
        return self.protocol.allocate(name, n_pages,
                                      home_policy=home_policy,
                                      home_fn=home_fn)

    def op_compute(self, rank, us, bus_intensity):
        return self.protocol.compute(rank, us, bus_intensity)

    def op_read(self, rank, region, pages):
        return self.protocol.read(rank, region, pages)

    def op_write(self, rank, region, pages, runs_per_page, bytes_per_page):
        return self.protocol.write(rank, region, pages,
                                   runs_per_page=runs_per_page,
                                   bytes_per_page=bytes_per_page)

    def op_lock(self, rank, lock_id):
        return self.protocol.lock(rank, lock_id)

    def op_unlock(self, rank, lock_id):
        return self.protocol.unlock(rank, lock_id)

    def op_acquire_flag(self, rank, flag_id):
        return self.protocol.acquire_flag(rank, flag_id)

    def op_release_flag(self, rank, flag_id):
        return self.protocol.release_flag(rank, flag_id)

    def op_barrier(self, rank):
        return self.protocol.barrier(rank)


class LocalBackend(Backend):
    """Uniprocessor run: the plain sequential program.

    Per the paper's methodology, speedups compare against the
    sequential version *without* the SVM library: shared-memory
    operations cost nothing here, only compute advances time (with no
    bus contention — a single processor owns the node).
    """

    def __init__(self, config: Optional[MachineConfig] = None):
        cfg = (config or MachineConfig()).scaled(nodes=1, procs_per_node=1)
        self.machine = Machine(cfg)
        self.config = cfg

    @property
    def sim(self):
        return self.machine.sim

    @property
    def nprocs(self) -> int:
        return 1

    def allocate(self, name, n_pages, home_policy="blocked", home_fn=None):
        # Regions are inert locally; return a lightweight stand-in that
        # still bounds page indices.
        return _LocalRegion(name, n_pages)

    def op_compute(self, rank, us, bus_intensity):
        def gen():
            yield self.sim.timeout(us)
        return gen()

    def _noop(self):
        return
        yield  # pragma: no cover - makes this a generator function

    def op_read(self, rank, region, pages):
        for p in pages:
            region.check(p)
        return self._noop()

    def op_write(self, rank, region, pages, runs_per_page, bytes_per_page):
        for p in pages:
            region.check(p)
        return self._noop()

    def op_lock(self, rank, lock_id):
        return self._noop()

    def op_unlock(self, rank, lock_id):
        return self._noop()

    def op_acquire_flag(self, rank, flag_id):
        return self._noop()

    def op_release_flag(self, rank, flag_id):
        return self._noop()

    def op_barrier(self, rank):
        return self._noop()


class _LocalRegion:
    """Bounds-checked stand-in for a shared region on one processor."""

    __slots__ = ("name", "n_pages")

    def __init__(self, name: str, n_pages: int):
        self.name = name
        self.n_pages = n_pages

    def check(self, index: int) -> None:
        if not 0 <= index < self.n_pages:
            raise IndexError(
                f"page {index} outside region {self.name!r} "
                f"(size {self.n_pages})")
