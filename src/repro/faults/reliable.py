"""Drop-tolerant transport under VMMC: seq/ack/timeout/retransmit.

Stock VMMC assumes a reliable, per-source-ordered fabric; once the
fault injector is armed that assumption is gone, so this layer adds the
classic reliability triad at the NI boundary, covering *every* tracked
message — remote deposits, multicasts, remote-fetch requests and
replies, and the NI lock chain (acquire/forward/grant re-issue happens
here, as retransmission of the lock-op control messages):

* **per-channel sequence numbers** — each (src, dst) channel numbers
  its messages; a packet's wire-unique name is ``(src, msg_id,
  index)`` and the channel ordinal is carried in the ``retx.*`` trace
  events for ordering diagnostics.
* **receiver dedup + ack** — the receiving NI examines each packet on
  the LANai, discards copies it has already processed (injected
  duplicates or spurious retransmissions), and acks a message back to
  the sending NI once all of its packets have been processed for this
  destination.  A duplicate of a completed message is re-acked: that
  is how a lost ack is recovered.
* **sender timeout/retransmit** — a watchdog per (message,
  destination) retransmits all of the message's packets if no ack
  arrives within the timeout, doubling the timeout each attempt up to
  ``retx_timeout_max_us``.  After ``retx_max`` attempts it raises
  :class:`~repro.sim.SimulationError` — a total-loss link fails fast
  with a diagnostic instead of hanging the simulation.

Retransmitted packets are re-injected from NI memory (the send buffer
is retained until the ack, so no host DMA is repeated) and pay the
normal LANai + link costs.  Ack packets (kind ``"retx_ack"``) are
firmware-consumed, never tracked and never acked; a dropped ack is
recovered by the sender's retransmit and the receiver's re-ack.

This module maps onto the paper's own robustness argument: the
remote-fetch timestamp-check retry loop (Section 2) already re-issues
fetches until the home copy is current; the transport below it re-issues
the *packets* until the fabric delivers them.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..hw.config import FaultConfig
from ..hw.packet import Message, Packet
from ..sim import SimulationError

__all__ = ["ReliabilityLayer", "ACK_KIND", "ACK_BYTES"]

ACK_KIND = "retx_ack"
ACK_BYTES = 16


class _SendState:
    """Sender-side book-keeping for one (message, destination)."""

    __slots__ = ("msg", "dst", "channel_seq", "expected",
                 "pkts", "acked", "acked_event", "attempts", "retx_fid")

    def __init__(self, msg: Message, dst: int, channel_seq: int,
                 expected: int, acked_event):
        self.msg = msg
        self.dst = dst
        self.channel_seq = channel_seq
        self.expected = expected
        #: index -> (size, is_last), filled as packets are injected.
        self.pkts: Dict[int, Tuple[int, bool]] = {}
        self.acked = False
        self.acked_event = acked_event
        self.attempts = 0
        #: span flow id of the previous retransmission attempt: each
        #: attempt's span links to it, chaining the retries causally.
        self.retx_fid = None


class _RecvState:
    """Receiver-side book-keeping for one (source, message)."""

    __slots__ = ("expected", "seen", "processed")

    def __init__(self, expected: int):
        self.expected = expected
        self.seen: Set[int] = set()
        self.processed = 0

    @property
    def complete(self) -> bool:
        return self.processed >= self.expected


class ReliabilityLayer:
    """Machine-wide reliable transport, armed together with faults."""

    def __init__(self, machine, msg_ids=None):
        from .injector import MsgIds
        self.machine = machine
        self.sim = machine.sim
        self.config = machine.config
        self.fcfg: FaultConfig = machine.config.faults
        #: optional repro.sim.Tracer receiving ``retx.*`` events.
        self.tracer = None
        #: optional repro.sim.SpanTracer (Machine.attach_spans): each
        #: retransmission attempt becomes a span on the sender's NI
        #: track, chained to the previous attempt by a retx_chain flow.
        self.spans = None
        #: dense trace names for messages, shared with the injector so
        #: the sanitizer can join fault.* and retx.* streams.
        self.msg_ids = msg_ids if msg_ids is not None else MsgIds()
        #: sender side: (src_node, msg_id, dst) -> _SendState.
        self._sends: Dict[Tuple[int, int, int], _SendState] = {}
        #: per-channel message ordinals: (src, dst) -> next seq.
        self._channel_seq: Dict[Tuple[int, int], int] = {}
        #: receiver side: (recv_node, src, msg_id) -> _RecvState.
        self._recvs: Dict[Tuple[int, int, int], _RecvState] = {}
        for nic in machine.nics:
            nic.reliability = self
            nic.fw_handlers[ACK_KIND] = self._fw_ack
        # Counters.
        self.retransmits = 0
        self.retx_timeouts = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.dup_discards = 0

    def _trace(self, category: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.record(self.sim.now, category, **fields)

    # ------------------------------------------------------------- sender

    def on_inject(self, nic, pkt: Packet) -> None:
        """Called by the NIC as each packet leaves for the network."""
        if pkt.kind == ACK_KIND:
            return
        msg = pkt.message
        key = (nic.node_id, msg.msg_id, pkt.dst)
        state = self._sends.get(key)
        if state is None:
            channel = (nic.node_id, pkt.dst)
            seq = self._channel_seq.get(channel, 0)
            self._channel_seq[channel] = seq + 1
            state = _SendState(msg, pkt.dst, seq,
                               self.config.packets_for(msg.size),
                               self.sim.event())
            self._sends[key] = state
            self.sim.process(self._watchdog(nic, state),
                             name=f"retx.{nic.node_id}.{msg.msg_id}")
        state.pkts[pkt.index] = (pkt.size, pkt.is_last)

    def _watchdog(self, nic, state: _SendState):
        f = self.fcfg
        rto = f.retx_timeout_us
        while True:
            timer = self.sim.timeout(rto)
            yield self.sim.any_of([state.acked_event, timer])
            if state.acked:
                return
            state.attempts += 1
            if state.attempts > f.retx_max:
                msg = state.msg
                self._trace("retx.exhausted", node=nic.node_id,
                            msg=self.msg_ids.map(msg.msg_id),
                            dst=state.dst, kind=msg.kind,
                            seq=state.channel_seq, attempts=f.retx_max)
                raise SimulationError(
                    f"message {msg.msg_id} ({msg.kind!r}, "
                    f"{nic.node_id}->{state.dst}) still unacked after "
                    f"{f.retx_max} retransmissions: link lossy beyond "
                    f"recovery or fabric partitioned")
            self.retx_timeouts += 1
            self._trace("retx.timeout", node=nic.node_id,
                        msg=self.msg_ids.map(state.msg.msg_id),
                        dst=state.dst, seq=state.channel_seq,
                        attempt=state.attempts, rto=rto)
            sp = self.spans
            rsid = sp.begin(
                "retx.resend", f"ni{nic.node_id}", bucket="data",
                link=state.retx_fid,
                msg=self.msg_ids.map(state.msg.msg_id),
                dst=state.dst, attempt=state.attempts) \
                if sp is not None else None
            # Go-back-all: re-inject every packet of the message from
            # NI memory; the receiver discards what it already has.
            for index in sorted(state.pkts):
                size, is_last = state.pkts[index]
                copy = Packet(message=state.msg, size=size, index=index,
                              is_last=is_last, fw_origin=True,
                              dst_node=state.dst)
                copy.t_enqueue = self.sim.now
                copy.t_src_done = self.sim.now
                self.retransmits += 1
                self._trace("retx.resend", node=nic.node_id,
                            msg=self.msg_ids.map(state.msg.msg_id),
                            dst=state.dst, idx=index,
                            seq=state.channel_seq,
                            attempt=state.attempts)
                yield nic.out_queue.put(copy)
            if sp is not None:
                state.retx_fid = sp.flow_from(rsid, "retx_chain", "data")
                sp.end(rsid)
            rto = min(rto * 2.0, f.retx_timeout_max_us)

    def _fw_ack(self, pkt: Packet) -> None:
        """Sender-NI firmware: an ack arrived, stop the watchdog."""
        acked_msg, acker = pkt.message.payload
        self.acks_received += 1
        self._trace("retx.ack", node=pkt.dst,
                    msg=self.msg_ids.map(acked_msg), dst=acker)
        state = self._sends.get((pkt.dst, acked_msg, acker))
        if state is not None and not state.acked:
            state.acked = True
            state.acked_event.succeed()

    # ----------------------------------------------------------- receiver

    def accept(self, nic, pkt: Packet) -> bool:
        """Examine an arriving packet on the receiving LANai.

        Returns False for a copy that was already processed here (the
        recv loop discards it without touching the host); re-acks the
        message if the sender evidently missed the first ack.
        """
        key = (nic.node_id, pkt.src, pkt.message.msg_id)
        state = self._recvs.get(key)
        if state is None:
            state = _RecvState(self.config.packets_for(pkt.message.size))
            self._recvs[key] = state
        if pkt.index in state.seen:
            self.dup_discards += 1
            self._trace("retx.dup_discard", node=nic.node_id, src=pkt.src,
                        msg=self.msg_ids.map(pkt.message.msg_id),
                        idx=pkt.index, kind=pkt.kind)
            if pkt.kind != ACK_KIND and state.complete:
                self._send_ack(nic, pkt)
            return False
        state.seen.add(pkt.index)
        return True

    def packet_done(self, nic, pkt: Packet) -> None:
        """Called by the NIC once a packet is fully processed here."""
        if pkt.kind == ACK_KIND:
            return
        state = self._recvs[(nic.node_id, pkt.src, pkt.message.msg_id)]
        state.processed += 1
        if state.complete:
            self._send_ack(nic, pkt)

    def _send_ack(self, nic, pkt: Packet) -> None:
        self.acks_sent += 1
        ack = Message(src=nic.node_id, dst=pkt.src, size=ACK_BYTES,
                      kind=ACK_KIND, deliver_to_host=False,
                      payload=(pkt.message.msg_id, nic.node_id))
        nic.fw_send(ack)

    # ------------------------------------------------------------ results

    #: counter name -> backing attribute; per-key consumers (the
    #: Machine's ``retx.*`` gauges) read one attribute instead of
    #: rebuilding the whole dict per key per metrics snapshot.
    def outstanding_by_node(self) -> list:
        """Unacked send states per source node, in one pass over the
        sender table (the telemetry vector probe: O(sends) per sample
        instead of O(nodes x sends) with per-node closures)."""
        out = [0] * self.config.nodes
        for (src, _msg, _dst), state in self._sends.items():
            if not state.acked:
                out[src] += 1
        return out

    def register_probes(self, sampler) -> None:
        """Join a TimeSeriesSampler (repro.obs.timeseries)."""
        sampler.probe_vector("retx.outstanding", "gauge",
                             self.outstanding_by_node)

    COUNTER_ATTRS = {"retransmits": "retransmits",
                     "retx_timeouts": "retx_timeouts",
                     "acks_sent": "acks_sent",
                     "acks_received": "acks_received",
                     "dup_discards": "dup_discards"}

    def counters(self) -> Dict[str, int]:
        return {name: getattr(self, attr)
                for name, attr in self.COUNTER_ATTRS.items()}
