"""Fault injection and drop tolerance for the simulated fabric.

``FaultConfig`` (re-exported from :mod:`repro.hw.config`) describes the
fault model; attaching one to ``MachineConfig.faults`` makes
:class:`repro.hw.machine.Machine` install both halves of this package:
:class:`FaultInjector` (deterministic per-link loss / duplication /
reordering / jitter) and :class:`ReliabilityLayer` (per-channel
sequence numbers, receiver dedup + acks, sender timeout/retransmit
with capped exponential backoff).  With ``faults=None`` neither exists
and the fabric is byte-for-byte the paper's perfect crossbar.
"""

from ..hw.config import FaultConfig
from .injector import FaultInjector, MsgIds
from .reliable import ACK_BYTES, ACK_KIND, ReliabilityLayer

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "MsgIds",
    "ReliabilityLayer",
    "ACK_KIND",
    "ACK_BYTES",
]
