"""Deterministic fault injection at the Network/NIC boundary.

The seed state models the fabric of the paper's testbed as a perfect
crossbar: constant latency, no loss, no duplication, per-source order
preserved.  Real user-level NIs enjoy none of those guarantees, and the
GeNIMA mechanisms (the stale-fetch retry loop, the NI lock chain) were
designed to survive an imperfect fabric.  :class:`FaultInjector` wraps
:meth:`repro.hw.network.Network.deliver` and, per packet, may

* **drop** it (probability ``loss``),
* **duplicate** it (probability ``dup`` — a second copy follows one
  wire latency behind),
* **delay** it by a bounded extra amount (probability ``reorder``,
  uniform in ``[0, reorder_window_us)`` — enough to overtake later
  packets from the same source), or
* **jitter** its latency (uniform in ``[0, jitter_us)`` on every
  packet).

Every decision is drawn from a named per-link
``random.Random(f"{seed}:{src}->{dst}")`` stream.  Because the
simulation itself is deterministic, the per-link packet order is
deterministic, so identical seeds give byte-identical traces — the
property the determinism regression tests assert.

Injected faults are announced on the attached tracer as ``fault.*``
events; the sanitizer's fault-recovery check replays them against the
``retx.*`` stream of :mod:`repro.faults.reliable` to prove that no
dropped packet's message was silently lost.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Tuple

from ..hw.config import FaultConfig, MachineConfig
from ..hw.packet import Packet

__all__ = ["FaultInjector", "MsgIds"]


class MsgIds:
    """Dense per-run message ids for trace events.

    ``Message.msg_id`` is drawn from a process-global counter, so its
    raw value depends on how many messages *earlier runs in the same
    process* created.  Trace streams must be byte-identical across
    same-seed runs, so ``fault.*``/``retx.*`` events name messages by a
    dense id assigned in first-trace order (which is deterministic).
    The injector and the reliability layer share one table so both
    streams agree on every message's name.
    """

    __slots__ = ("_map",)

    def __init__(self):
        self._map: Dict[int, int] = {}

    def map(self, raw: int) -> int:
        return self._map.setdefault(raw, len(self._map))


class FaultInjector:
    """Per-link packet fault decisions between injection and receive."""

    def __init__(self, sim, config: MachineConfig, msg_ids=None,
                 topology=None):
        if config.faults is None:
            raise ValueError("FaultInjector needs config.faults")
        self.sim = sim
        self.config = config
        self.fcfg: FaultConfig = config.faults
        # Per-(src, dst) base latency; the Machine shares its network's
        # topology, a bare injector builds its own.  The crossbar
        # returns ``wire_latency_us`` exactly, so armed-fault runs on
        # the default fabric keep their pre-topology schedules.
        if topology is None:
            from ..hw.topology import build_topology
            topology = build_topology(config)
        self.topology = topology
        #: optional repro.sim.Tracer receiving ``fault.*`` events.
        self.tracer = None
        self.msg_ids = msg_ids if msg_ids is not None else MsgIds()
        self._rngs: Dict[Tuple[int, int], random.Random] = {}
        # Counters.
        self.drops = 0
        self.dups = 0
        self.reorders = 0
        self.jittered = 0

    def _trace(self, category: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.record(self.sim.now, category, **fields)

    def _rng(self, src: int, dst: int) -> random.Random:
        rng = self._rngs.get((src, dst))
        if rng is None:
            # A string seed hashes through SHA-512 inside Random, so it
            # is stable across processes (unlike hash()-based seeding).
            rng = random.Random(f"{self.fcfg.seed}:{src}->{dst}")
            self._rngs[(src, dst)] = rng
        return rng

    def deliver(self, pkt: Packet, receive) -> None:
        """Carry ``pkt``, applying link faults; ``receive(pkt)`` is the
        destination NI's arrival entry point."""
        f = self.fcfg
        src, dst = pkt.src, pkt.dst
        wire = self.topology.latency_us(src, dst)
        if not f.affects(src, dst):
            self.sim.schedule(wire, lambda: receive(pkt))
            return
        rng = self._rng(src, dst)
        if f.loss and rng.random() < f.loss:
            self.drops += 1
            fields = dict(src=src, dst=dst, kind=pkt.kind,
                          msg=self.msg_ids.map(pkt.message.msg_id),
                          idx=pkt.index, size=pkt.size)
            if pkt.kind == "retx_ack":
                # Recovery of a lost ack is the *original* message's
                # retransmit + re-ack; name it for the sanitizer.
                acks_msg, acker = pkt.message.payload
                fields["acks_msg"] = self.msg_ids.map(acks_msg)
                fields["acker"] = acker
            self._trace("fault.drop", **fields)
            return
        latency = wire
        if f.jitter_us:
            self.jittered += 1
            latency += rng.uniform(0.0, f.jitter_us)
        if f.reorder and rng.random() < f.reorder:
            self.reorders += 1
            latency += rng.uniform(0.0, f.reorder_window_us)
            self._trace("fault.reorder", src=src, dst=dst, kind=pkt.kind,
                        msg=self.msg_ids.map(pkt.message.msg_id),
                        idx=pkt.index)
        self.sim.schedule(latency, lambda: receive(pkt))
        if f.dup and rng.random() < f.dup:
            self.dups += 1
            self._trace("fault.dup", src=src, dst=dst, kind=pkt.kind,
                        msg=self.msg_ids.map(pkt.message.msg_id),
                        idx=pkt.index)
            # The copy keeps the packet's identity (message, index) so
            # the receiver's dedup discards it, but carries its own
            # stage timestamps.
            copy = dataclasses.replace(pkt)
            self.sim.schedule(latency + wire, lambda: receive(copy))

    #: counter name -> backing attribute; per-key consumers (the
    #: Machine's ``faults.*`` gauges) read one attribute instead of
    #: rebuilding the whole dict per key per metrics snapshot.
    COUNTER_ATTRS = {"packets_dropped": "drops",
                     "packets_duplicated": "dups",
                     "packets_reordered": "reorders",
                     "packets_jittered": "jittered"}

    def counters(self) -> Dict[str, int]:
        return {name: getattr(self, attr)
                for name, attr in self.COUNTER_ATTRS.items()}
