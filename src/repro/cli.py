"""Command-line interface: run applications, protocols and experiments.

Examples::

    python -m repro list
    python -m repro run --app FFT --protocol GeNIMA
    python -m repro run --app Water-nsquared --protocol Base --nodes 8
    python -m repro run --app Water-spatial --faults loss=0.01,jitter=5
    python -m repro faultsweep --app Water-spatial
    python -m repro ladder --app Ocean-rowwise
    python -m repro figure 2
    python -m repro table 1
    python -m repro profile --app fft --variant base --variant genima
    python -m repro critpath --app fft --variant base --variant genima
    python -m repro scale --app KVStore --nodes 16 --nodes 256
    python -m repro serve --port 8737 &
    python -m repro submit --app FFT --serve http://127.0.0.1:8737
    python -m repro figure 3 --serve http://127.0.0.1:8737
    python -m repro calibrate
    python -m repro check --app Barnes-spatial
    python -m repro lint
"""

from __future__ import annotations

import argparse
import json
import sys

from . import PROTOCOL_LADDER, FaultConfig, MachineConfig
from .apps import APP_REGISTRY, PAPER_APPS
from .runtime import run_hwdsm, run_sequential, run_svm, speedup
from .svm import GENIMA_MC, GENIMA_PLUS, GENIMA_SG

PROTOCOLS = {f.name: f
             for f in (*PROTOCOL_LADDER, GENIMA_SG, GENIMA_MC, GENIMA_PLUS)}

#: default matrix for ``repro check``: the two fastest lock-using apps.
CHECK_APPS = ("Barnes-spatial", "Water-spatial")


def _make_cache(args, config=None):
    """Experiment cache from the shared grid options (see
    ``_grid_parent``): ``--jobs`` sizes the worker pool, ``--cache-dir``
    overrides the store root, ``--no-cache`` disables persistence, and
    ``--serve URL`` routes the whole grid through a running
    `repro serve` daemon instead of evaluating in-process."""
    from .experiments import ExperimentCache
    from .runtime import ResultStore
    if getattr(args, "serve", None):
        from .serve import RemoteExecutor
        return ExperimentCache(config=config,
                               executor=RemoteExecutor(args.serve))
    store = None if args.no_cache else ResultStore(args.cache_dir)
    return ExperimentCache(config=config, jobs=args.jobs, store=store,
                           jobs_force=args.jobs_force)


def _cmd_list(_args) -> int:
    from .apps import DATACENTER_APPS
    print("applications:")
    for name in PAPER_APPS:
        cls = APP_REGISTRY[name]
        print(f"  {name:18s} paper size: {cls.paper_params}")
    print("\ndatacenter workloads (repro scale):")
    for name in DATACENTER_APPS:
        print(f"  {name}")
    print("\nprotocols:")
    for name in PROTOCOLS:
        print(f"  {name}")
    return 0


def _make_app(args):
    cls = APP_REGISTRY[args.app]
    return cls(**cls.paper_params) if args.paper_size else cls()


def _parse_faults(args):
    """--faults SPEC -> FaultConfig (None when the flag is absent)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    try:
        return FaultConfig.parse(spec)
    except ValueError as err:
        raise SystemExit(f"error: --faults: {err}")


def _cmd_run(args) -> int:
    config = MachineConfig(nodes=args.nodes, faults=_parse_faults(args))
    seq = run_sequential(_make_app(args), config=config)
    if args.protocol == "Origin":
        from .hwdsm import HWDSMConfig
        result = run_hwdsm(_make_app(args),
                           config=HWDSMConfig(nprocs=config.total_procs))
    else:
        result = run_svm(_make_app(args), PROTOCOLS[args.protocol],
                         config=config, check=args.check)
    mean = result.mean_breakdown
    print(f"{args.app} on {result.system}, {result.nprocs} processors")
    print(f"  sequential time : {seq.time_us / 1000:.1f} ms")
    print(f"  parallel time   : {result.time_us / 1000:.1f} ms")
    print(f"  speedup         : {speedup(seq, result):.2f}")
    print(f"  breakdown (ms)  : compute={mean.compute / 1000:.1f} "
          f"data={mean.data / 1000:.1f} lock={mean.lock / 1000:.1f} "
          f"acqrel={mean.acqrel / 1000:.1f} "
          f"barrier={mean.barrier / 1000:.1f}")
    for key in ("interrupts", "messages", "page_fetches", "fetch_retries",
                "diffs_sent", "diff_runs_sent", "wn_messages",
                "packets_dropped", "packets_duplicated",
                "packets_reordered", "retransmits", "retx_timeouts",
                "dup_discards"):
        if key in result.stats:
            print(f"  {key:15s} : {result.stats[key]}")
    return 0


def _cmd_ladder(args) -> int:
    from .experiments import format_table
    cache = _make_cache(args)
    cache.warm([cache.spec_seq(args.app)]
               + [cache.spec_svm(args.app, feats)
                  for feats in PROTOCOL_LADDER])
    seq = cache.seq(args.app)
    rows = []
    for feats in PROTOCOL_LADDER:
        result = cache.svm(args.app, feats)
        rows.append((feats.name, speedup(seq, result),
                     result.stats["interrupts"],
                     result.stats["messages"]))
    print(format_table(["Protocol", "Speedup", "Interrupts", "Messages"],
                       rows, title=f"{args.app}: protocol ladder"))
    return 0


def _cmd_figure(args) -> int:
    from . import experiments as ex
    fns = {
        "1": (ex.compute_figure1, ex.render_figure1),
        "2": (ex.compute_figure2, ex.render_figure2),
        "3": (ex.compute_figure3, ex.render_figure3),
        "4": (ex.compute_figure4, ex.render_figure4),
    }
    compute, render = fns[args.number]
    print(render(compute(_make_cache(args))))
    return 0


def _cmd_table(args) -> int:
    from . import experiments as ex
    cache = _make_cache(args)
    if args.number == "1":
        print(ex.render_table1(ex.compute_table1(cache)))
    elif args.number == "2":
        print(ex.render_table2(ex.compute_table2(cache)))
    elif args.number in ("3", "4"):
        data = ex.compute_table34(cache)
        print(ex.render_table34(
            data, "small" if args.number == "3" else "large"))
    elif args.number == "5":
        print(ex.render_table5(ex.compute_table5(cache)))
    return 0


def _cmd_traffic(args) -> int:
    from .experiments import render_traffic, traffic_profile
    from .svm import BASE, GENIMA
    profiles = {}
    for feats in (BASE, GENIMA):
        profiles[feats.name] = traffic_profile(args.app, feats)
    print(render_traffic(profiles, args.app))
    return 0


def _cmd_faultsweep(args) -> int:
    """Completion time vs. injected loss rate for one app/protocol."""
    from .experiments import (DEFAULT_LOSS_RATES, compute_faultsweep,
                              render_faultsweep)
    feats = PROTOCOLS[args.protocol]
    rows = compute_faultsweep(args.app, feats,
                              loss_rates=args.loss or DEFAULT_LOSS_RATES,
                              seed=args.seed, jitter_us=args.jitter,
                              cache=_make_cache(args))
    print(render_faultsweep(rows, args.app, feats.name))
    return 0


def _resolve_name(value: str, names, what: str) -> str:
    """Case-insensitive lookup of ``value`` among ``names``."""
    matches = [n for n in names if n.lower() == value.lower()]
    if not matches:
        raise SystemExit(
            f"error: unknown {what} {value!r} (choose from "
            f"{', '.join(sorted(names))})")
    return matches[0]


def _cmd_profile(args) -> int:
    from .experiments import collect_profiles_grid
    from .obs import (PROFILE_SCHEMA, render_profiles, render_profiles_html,
                      render_timeline, render_utilization)
    app_name = _resolve_name(args.app, APP_REGISTRY, "application")
    variant_names = [_resolve_name(v, PROTOCOLS, "protocol variant")
                     for v in (args.variant or ["GeNIMA"])]
    cls = APP_REGISTRY[app_name]
    config = MachineConfig(nodes=args.nodes)
    profiles = collect_profiles_grid(
        app_name, [PROTOCOLS[n] for n in variant_names],
        cache=_make_cache(args, config=config), config=config,
        slice_us=args.slice_us,
        params=cls.paper_params if args.paper_size else None)
    payload = {"schema": PROFILE_SCHEMA,
               "profiles": [p.to_dict() for p in profiles]}
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if args.html:
        with open(args.html, "w") as fh:
            fh.write(render_profiles_html(profiles))
        print(f"wrote {args.html}")
    print()
    print(render_profiles(profiles))
    print()
    print(render_timeline(profiles[-1]))
    print()
    print(render_utilization(profiles[-1]))
    bad = [p for p in profiles if not p.accounting_ok]
    for p in bad:
        print(f"TIME ACCOUNTING VIOLATED: {p.app}/{p.system} max "
              f"residual {p.max_residual_us:.3e} us", file=sys.stderr)
    return 1 if bad else 0


def _cmd_critpath(args) -> int:
    """Spanned runs -> critical paths, ladder diff and Perfetto export.

    Exits non-zero whenever any extracted path fails to reconcile with
    the timed-section wall time (the extractor's telescoping
    invariant), independent of ``--check``.
    """
    from .analysis import (CRITPATH_SCHEMA, Sanitizer, render_ladder_diff,
                           render_path)
    from .obs import TIME_TOLERANCE_US
    from .experiments import collect_critpath, collect_critpaths_grid
    app_name = _resolve_name(args.app, APP_REGISTRY, "application")
    variant_names = [_resolve_name(v, PROTOCOLS, "protocol variant")
                     for v in (args.variant
                               or [f.name for f in PROTOCOL_LADDER])]
    cls = APP_REGISTRY[app_name]
    config = MachineConfig(nodes=args.nodes)
    if args.perfetto or args.check:
        # Perfetto export and the sanitizer consume the live span
        # stream, which the store does not keep: run serial and fresh.
        runs = []
        for name in variant_names:
            app = cls(**cls.paper_params) if args.paper_size else cls()
            runs.append(collect_critpath(app, PROTOCOLS[name],
                                         config=config, check=args.check))
    else:
        runs = collect_critpaths_grid(
            app_name, [PROTOCOLS[n] for n in variant_names],
            cache=_make_cache(args, config=config), config=config,
            params=cls.paper_params if args.paper_size else None)
    for run in runs:
        print(render_path(run.path, name=f"{app_name}/{run.variant}",
                          max_steps=args.max_steps))
        print()
    if len(runs) > 1:
        print(render_ladder_diff({r.variant: r.path for r in runs}))
        print()
    if args.out:
        payload = {"schema": CRITPATH_SCHEMA, "app": app_name,
                   "nodes": args.nodes,
                   "paths": {r.variant: r.path.to_dict() for r in runs}}
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.perfetto:
        for run in runs:
            path = _variant_path(args.perfetto, run.variant,
                                 many=len(runs) > 1)
            with open(path, "w") as fh:
                json.dump(run.tracer.to_chrome_trace(), fh)
                fh.write("\n")
            print(f"wrote {path}")
    status = 0
    if args.check:
        for run in runs:
            findings = Sanitizer().run(run.tracer.events)
            for finding in findings:
                print(finding, file=sys.stderr)
            if findings:
                status = 1
    bad = [r for r in runs if not r.path.ok(TIME_TOLERANCE_US)]
    for r in bad:
        print(f"CRITICAL PATH DOES NOT RECONCILE: {app_name}/{r.variant} "
              f"total {r.path.total_us} us vs wall {r.path.wall_us} us "
              f"(residual {r.path.residual_us:+.3e} us)", file=sys.stderr)
    return 1 if bad else status


def _variant_path(base: str, variant: str, many: bool) -> str:
    """Per-variant output filename: insert the variant before the
    extension when several variants share one ``--perfetto`` base."""
    if not many:
        return base
    slug = variant.replace("+", "-")
    stem, dot, ext = base.rpartition(".")
    return f"{stem}-{slug}.{ext}" if dot else f"{base}-{slug}"


def _cmd_scale(args) -> int:
    """Datacenter scaling curves: speedup vs nodes x topology x rung."""
    from .experiments import (SCALE_NODES, SCALE_TOPOLOGIES,
                              compute_scale, render_scale)
    feature_sets = [PROTOCOLS[p] for p in (args.protocol
                                           or ["Base", "GeNIMA"])]
    rows = compute_scale(
        app_name=args.app,
        node_counts=tuple(args.nodes or SCALE_NODES),
        topologies=tuple(args.topology or SCALE_TOPOLOGIES),
        feature_sets=feature_sets,
        procs_per_node=args.procs_per_node,
        cache=_make_cache(args), seed=args.seed)
    print(render_scale(rows, args.app))
    if args.out:
        payload = {"app": args.app, "rows": rows}
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


def _make_telemetry_config(args) -> MachineConfig:
    """Machine config for the telemetry subcommands: ``--nodes`` plus
    optional topology / SMP-width overrides."""
    config = MachineConfig(nodes=args.nodes)
    overrides = {}
    if args.topology:
        overrides["topology"] = args.topology
    if args.procs_per_node:
        overrides["procs_per_node"] = args.procs_per_node
    return config.scaled(**overrides) if overrides else config


def _make_telemetry_app(args, config: MachineConfig):
    """The app instance for a telemetry run; ``--scale`` applies the
    fixed-total-work sizing of ``repro scale``."""
    cls = APP_REGISTRY[args.app]
    if getattr(args, "scale", False):
        from .experiments import scale_params
        try:
            params = scale_params(args.app, config.total_procs,
                                  seed=args.seed)
        except ValueError as err:
            raise SystemExit(f"error: --scale: {err}")
        return cls(**params)
    if getattr(args, "paper_size", False):
        return cls(**cls.paper_params)
    return cls()


def _run_sampled(args, with_profile: bool, with_tracer: bool):
    """One sampled run shared by ``repro metrics`` / ``repro dash``:
    returns ``(sampler, profiler, tracer, result)``."""
    from .obs import PhaseProfiler, TimeSeriesSampler
    from .sim import Tracer
    config = _make_telemetry_config(args)
    app = _make_telemetry_app(args, config)
    tracer = Tracer() if with_tracer else None
    sampler = TimeSeriesSampler(cadence_us=args.cadence_us,
                                top_k=args.top_k, tracer=tracer)
    profiler = (PhaseProfiler(slice_us=args.slice_us)
                if with_profile else None)
    result = run_svm(app, PROTOCOLS[args.protocol], config=config,
                     tracer=tracer, profiler=profiler,
                     telemetry=sampler)
    return sampler, profiler, tracer, result


def _cmd_metrics(args) -> int:
    """Sampled run -> registry snapshot + telemetry summary, as an
    OpenMetrics exposition or a JSON document."""
    from .obs import render_openmetrics
    sampler, _, _, result = _run_sampled(args, with_profile=False,
                                         with_tracer=False)
    snapshot = sampler.machine.metrics.snapshot()
    if args.openmetrics:
        text = render_openmetrics(snapshot=snapshot,
                                  telemetry=result.telemetry)
    else:
        text = json.dumps({"app": args.app, "protocol": args.protocol,
                           "nodes": args.nodes,
                           "time_us": result.time_us,
                           "snapshot": snapshot,
                           "telemetry": result.telemetry},
                          indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_dash(args) -> int:
    """Sampled + profiled run -> ASCII/HTML dashboard (and optionally
    a Perfetto trace with telemetry counter tracks merged in)."""
    from .obs import render_dash, render_dash_html
    sampler, profiler, tracer, result = _run_sampled(
        args, with_profile=True, with_tracer=bool(args.perfetto))
    profile = profiler.build_profile(result)
    title = (f"{args.app}/{args.protocol} {args.nodes} nodes "
             f"({result.time_us / 1000:.1f} ms)")
    print(render_dash(sampler, profile=profile, title=title,
                      top_k=args.top_k, width=args.width))
    if args.html:
        with open(args.html, "w") as fh:
            fh.write(render_dash_html(sampler, profile=profile,
                                      title=title, top_k=args.top_k))
        print(f"\nwrote {args.html}")
    if args.perfetto:
        events = sampler.merge_chrome_trace(tracer.to_chrome_trace())
        with open(args.perfetto, "w") as fh:
            json.dump(events, fh)
            fh.write("\n")
        print(f"wrote {args.perfetto}")
    return 0


def _cmd_calibrate(_args) -> int:
    from .experiments import (measure_comm_layer, measure_page_fetch,
                              render_calibration)
    print(render_calibration(measure_comm_layer(), measure_page_fetch()))
    return 0


def _cmd_check(args) -> int:
    """Trace-sanitize (and invariant-check) an app x protocol matrix."""
    from .analysis import sanitize_run
    apps = args.app or list(CHECK_APPS)
    protocols = ([PROTOCOLS[p] for p in args.protocol]
                 if args.protocol else list(PROTOCOL_LADDER))
    faults = _parse_faults(args)
    config = MachineConfig(faults=faults) if faults is not None else None
    total = 0
    for app_name in apps:
        for feats in protocols:
            result, findings = sanitize_run(
                APP_REGISTRY[app_name](), feats, config=config,
                check_invariants=not args.no_invariants)
            status = "ok" if not findings else f"{len(findings)} finding(s)"
            print(f"{app_name:18s} {feats.name:10s} "
                  f"{result.time_us / 1000:8.1f} ms  {status}")
            for finding in findings:
                print(finding)
            total += len(findings)
    if total:
        print(f"\n{total} sanitizer finding(s)")
        return 1
    print("\nall checks passed")
    return 0


def _cmd_lint(args) -> int:
    """Static lint: local determinism rules plus whole-program passes.

    Exit codes: 0 clean (modulo baseline), 1 new findings, 2 usage or
    parse error.
    """
    import json
    from pathlib import Path

    from .analysis import RULES, default_target
    from .analysis.static import (PROJECT_RULES, Baseline, analyze_paths,
                                  analyze_project, describe_rule, to_sarif)

    if args.list_rules:
        print("local rules (single-file):")
        for name in sorted(RULES):
            print(f"  {name:18s} {RULES[name].description}")
        print("cross-module families (whole-program):")
        for name in sorted(PROJECT_RULES):
            cls = PROJECT_RULES[name]
            print(f"  {name:18s} [{cls.family}] {cls.description}")
        return 0

    rules = args.rule or None
    try:
        if args.path and args.package_root:
            print("error: paths and --package-root are mutually "
                  "exclusive")
            return 2
        if args.path:
            # loose paths (tests/, scripts/): local rules only — the
            # cross-module families need a package root.
            root = Path.cwd()
            report = analyze_paths([Path(p) for p in args.path],
                                   rules=rules)
            baseline_applies = False
        else:
            root = (Path(args.package_root) if args.package_root
                    else default_target())
            if not root.is_dir():
                print(f"error: package root {root} is not a directory")
                return 2
            report = analyze_project(root, package=root.name,
                                     rules=rules,
                                     local_only=args.local_only)
            # the default baseline file only describes the default
            # target; for an explicit root it must be named explicitly.
            baseline_applies = (args.package_root is None
                                or args.baseline is not None)
    except ValueError as err:
        print(f"error: {err} (see --list-rules)")
        return 2
    except OSError as err:
        print(f"error: {err}")
        return 2

    if report.syntax_errors:
        for v in report.syntax_errors:
            print(f"{v.path}:{v.line}:{v.col}: parse error: {v.message}")
        print(f"\n{len(report.syntax_errors)} file(s) failed to parse")
        return 2

    baseline = Baseline()
    baseline_path = Path(args.baseline) if args.baseline \
        else Path("lint-baseline.json")
    if baseline_applies and not args.no_baseline:
        if baseline_path.is_file():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError, json.JSONDecodeError) as err:
                print(f"error: bad baseline: {err}")
                return 2
        elif args.baseline and not args.update_baseline:
            print(f"error: baseline {baseline_path} not found")
            return 2

    if args.update_baseline:
        if not baseline_applies:
            print("error: --update-baseline applies to the default "
                  "whole-program run, not to explicit paths")
            return 2
        stale = baseline.stale_keys(report.violations, root)
        updated = baseline.updated(report.violations, root)
        updated.dump(baseline_path)
        print(f"baseline {baseline_path}: {len(updated.entries)} "
              f"entr{'y' if len(updated.entries) == 1 else 'ies'}, "
              f"{len(stale)} expired")
        for key in stale:
            print(f"  expired: [{key[0]}] {key[1]} {key[2]}".rstrip())
        return 0

    new, accepted = baseline.split(report.violations, root)

    if args.sarif:
        descriptions = {v.rule: describe_rule(v.rule)
                        for v in [*new, *accepted]}
        sarif = to_sarif(new, accepted, root, descriptions)
        Path(args.sarif).write_text(json.dumps(sarif, indent=2) + "\n",
                                    encoding="utf-8")
        print(f"sarif report written to {args.sarif}")

    for violation in new:
        print(violation)
    if new:
        suffix = (f" ({len(accepted)} baselined)" if accepted else "")
        print(f"\n{len(new)} lint violation(s){suffix}")
        return 1
    nrules = len(RULES)
    if not args.path and not args.local_only:
        nrules += len(PROJECT_RULES)
    suffix = (f", {len(accepted)} baselined finding(s)"
              if accepted else "")
    print(f"lint clean ({nrules} rules{suffix})")
    return 0


def _cmd_serve(args) -> int:
    """Run the persistent experiment daemon in the foreground."""
    import os
    from .runtime import ResultStore
    from .serve import run_daemon
    store = None if args.no_cache else ResultStore(args.cache_dir)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    run_daemon(host=args.host, port=args.port, store=store, jobs=jobs,
               workers=args.workers, memo_cap=args.memo_cap)
    return 0


def _cmd_submit(args) -> int:
    """Submit a cell grid to a daemon and stream per-cell progress.

    Also the daemon's ops tool: ``--stats`` prints the counter
    snapshot, ``--shutdown`` drains and stops it.
    """
    from .serve import ServeClient, ServeError
    client = ServeClient(args.serve)
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.shutdown:
            print(json.dumps(client.shutdown(), indent=2,
                             sort_keys=True))
            return 0
        specs, labels = _submit_grid(args)
        label_by_digest = {}
        counts = {}

        def on_event(event):
            kind = event.get("event")
            if kind == "accepted":
                for digest, label in zip(event["digests"], labels):
                    label_by_digest.setdefault(digest, label)
                print(f"accepted: {event['cells']} cell(s), "
                      f"{event['unique']} unique")
            elif kind in ("cell", "error"):
                digest = event.get("digest", "?")
                label = label_by_digest.get(digest, "?")
                if kind == "cell":
                    source = event["source"]
                    counts[source] = counts.get(source, 0) + 1
                    print(f"  {digest[:12]}  {label:28s} {source:9s}"
                          f"{event['elapsed_ms']:10.1f} ms")
                else:
                    counts["error"] = counts.get("error", 0) + 1
                    print(f"  {digest[:12]}  {label:28s} ERROR     "
                          f"{event.get('message')}")

        try:
            client.submit(specs, on_event=on_event)
        finally:
            if counts:
                print("sources: " + ", ".join(
                    f"{k}={v}" for k, v in sorted(counts.items())))
    except ServeError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    return 0


def _submit_grid(args):
    """(specs, labels) for ``repro submit``: apps x protocol rungs,
    plus each app's sequential baseline unless ``--no-seq``."""
    from .runtime import CellSpec
    config = MachineConfig(nodes=args.nodes)
    protocols = ([PROTOCOLS[p] for p in args.protocol]
                 if args.protocol else list(PROTOCOL_LADDER))
    apps = args.app or ["FFT"]
    specs, labels = [], []
    for app in apps:
        if not args.no_seq:
            specs.append(CellSpec(kind="seq", app=app, config=config))
            labels.append(f"{app}/seq")
        for feats in protocols:
            specs.append(CellSpec(kind="svm", app=app, features=feats,
                                  config=config))
            labels.append(f"{app}/{feats.name}")
    return specs, labels


def _cmd_cache(args) -> int:
    """Inspect or wipe the persistent run store."""
    from .runtime import ResultStore
    from .runtime.parallel import STORE_SCHEMA
    store = ResultStore(args.cache_dir)
    if args.wipe:
        n = len(store)
        store.wipe()
        print(f"wiped {n} entr{'y' if n == 1 else 'ies'} from "
              f"{store.version_dir}")
        return 0
    print(f"cache root : {store.root}")
    print(f"schema     : v{STORE_SCHEMA}")
    print(f"entries    : {len(store)}")
    if args.verbose:
        for digest, envelope in store.entries():
            cell = envelope.get("cell", {})
            print(f"  {digest[:16]}  {cell.get('kind', '?'):8s} "
                  f"{cell.get('app', '?')}")
    return 0


def _grid_parent() -> argparse.ArgumentParser:
    """Shared options for every grid-driven subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    grid = parent.add_argument_group("grid execution and caching")
    grid.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="evaluate missing grid cells on N worker "
                           "processes (default: 1, in-process; results "
                           "are byte-identical for any N)")
    grid.add_argument("--cache-dir", metavar="DIR", default=None,
                      help="persistent run-cache root (default: "
                           "$REPRO_CACHE_DIR or ~/.cache/repro)")
    grid.add_argument("--jobs-force", action="store_true",
                      help="allow --jobs above the CPU count (by "
                           "default jobs is clamped: oversubscribed "
                           "spawn pools only add overhead)")
    grid.add_argument("--no-cache", action="store_true",
                      help="do not read or write the persistent cache")
    grid.add_argument("--serve", metavar="URL", default=None,
                      help="evaluate grid cells on a running "
                           "`repro serve` daemon at URL (shared warm "
                           "cache, cross-client dedup) instead of "
                           "in-process")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GeNIMA reproduction (Bilas, Liao & Singh, ISCA 1999)")
    sub = parser.add_subparsers(dest="command", required=True)
    grid_parent = _grid_parent()

    sub.add_parser("list", help="list applications and protocols") \
        .set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="run one app on one system")
    run.add_argument("--app", required=True, choices=sorted(APP_REGISTRY))
    run.add_argument("--protocol", default="GeNIMA",
                     choices=sorted(PROTOCOLS) + ["Origin"])
    run.add_argument("--nodes", type=int, default=4,
                     help="SMP nodes (4 procs each)")
    run.add_argument("--paper-size", action="store_true",
                     help="use the paper's problem size (slow)")
    run.add_argument("--check", action="store_true",
                     help="assert protocol invariants while running")
    run.add_argument("--faults", metavar="SPEC",
                     help="inject deterministic network faults, e.g. "
                          "loss=0.01,jitter=5 (arms the drop-tolerant "
                          "transport)")
    run.set_defaults(fn=_cmd_run)

    ladder = sub.add_parser("ladder", parents=[grid_parent],
                            help="one app across the protocol ladder")
    ladder.add_argument("--app", required=True,
                        choices=sorted(APP_REGISTRY))
    ladder.set_defaults(fn=_cmd_ladder)

    fig = sub.add_parser("figure", parents=[grid_parent],
                         help="regenerate a paper figure")
    fig.add_argument("number", choices=["1", "2", "3", "4"])
    fig.set_defaults(fn=_cmd_figure)

    tab = sub.add_parser("table", parents=[grid_parent],
                         help="regenerate a paper table")
    tab.add_argument("number", choices=["1", "2", "3", "4", "5"])
    tab.set_defaults(fn=_cmd_table)

    traffic = sub.add_parser(
        "traffic", help="traffic profile by message kind, Base vs GeNIMA")
    traffic.add_argument("--app", required=True,
                         choices=sorted(APP_REGISTRY))
    traffic.set_defaults(fn=_cmd_traffic)

    sweep = sub.add_parser(
        "faultsweep", parents=[grid_parent],
        help="completion time vs. injected packet loss")
    sweep.add_argument("--app", required=True,
                       choices=sorted(APP_REGISTRY))
    sweep.add_argument("--protocol", default="GeNIMA",
                       choices=sorted(PROTOCOLS))
    sweep.add_argument("--loss", type=float, action="append",
                       help="loss rate(s) to sweep (default: "
                            "0 0.01 0.02 0.05 0.1)")
    sweep.add_argument("--jitter", type=float, default=0.0,
                       help="per-packet latency jitter bound in us")
    sweep.add_argument("--seed", type=int, default=1,
                       help="fault-injector seed")
    sweep.set_defaults(fn=_cmd_faultsweep)

    prof = sub.add_parser(
        "profile", parents=[grid_parent],
        help="profiled run: phase timelines, utilization "
             "and a JSON profile (Figure 3 style)")
    prof.add_argument("--app", required=True,
                      help="application (case-insensitive)")
    prof.add_argument("--variant", action="append",
                      help="protocol variant(s), case-insensitive; "
                           "repeatable (default: GeNIMA; pass Base "
                           "first for the paper's normalization)")
    prof.add_argument("--nodes", type=int, default=4,
                      help="SMP nodes (4 procs each)")
    prof.add_argument("--slice-us", type=float, default=1000.0,
                      help="profiler slice width in microseconds")
    prof.add_argument("--out", default="profile.json",
                      help="JSON profile output path")
    prof.add_argument("--html", metavar="PATH",
                      help="also write an HTML report")
    prof.add_argument("--paper-size", action="store_true",
                      help="use the paper's problem size (slow)")
    prof.set_defaults(fn=_cmd_profile)

    crit = sub.add_parser(
        "critpath", parents=[grid_parent],
        help="spanned run: critical-path chain, Figure-3 "
             "bucket split, ladder diff and Perfetto export")
    crit.add_argument("--app", required=True,
                      help="application (case-insensitive)")
    crit.add_argument("--variant", action="append",
                      help="protocol variant(s), case-insensitive; "
                           "repeatable (default: the whole ladder, "
                           "Base first)")
    crit.add_argument("--nodes", type=int, default=4,
                      help="SMP nodes (4 procs each)")
    crit.add_argument("--max-steps", type=int, default=30,
                      help="chain steps to print (longest kept)")
    crit.add_argument("--out", metavar="PATH",
                      help="write critical paths as JSON")
    crit.add_argument("--perfetto", metavar="PATH",
                      help="write the span stream as a Chrome/Perfetto "
                           "trace (per-variant suffix when several)")
    crit.add_argument("--check", action="store_true",
                      help="also run the runtime invariant checker and "
                           "the offline trace sanitizer")
    crit.add_argument("--paper-size", action="store_true",
                      help="use the paper's problem size (slow)")
    crit.set_defaults(fn=_cmd_critpath)

    scale = sub.add_parser(
        "scale", parents=[grid_parent],
        help="datacenter scaling curves: speedup vs node count "
             "across fabric topologies and protocol rungs")
    scale.add_argument("--app", default="KVStore",
                       choices=["KVStore", "ParamServer", "OpenLoop"],
                       help="datacenter workload (default: KVStore)")
    scale.add_argument("--nodes", type=int, action="append",
                       help="node count(s) to sweep (default: "
                            "4 16 64 256 1024)")
    scale.add_argument("--topology", action="append",
                       choices=["crossbar", "fat-tree", "dragonfly"],
                       help="fabric model(s) (default: crossbar and "
                            "fat-tree)")
    scale.add_argument("--protocol", action="append",
                       choices=sorted(PROTOCOLS),
                       help="protocol rung(s) (default: Base and "
                            "GeNIMA)")
    scale.add_argument("--procs-per-node", type=int, default=1,
                       help="SMP width per node (default: 1 at scale)")
    scale.add_argument("--seed", type=int, default=0,
                       help="workload seed")
    scale.add_argument("--out", metavar="PATH",
                       help="also write the rows as JSON")
    scale.set_defaults(fn=_cmd_scale)

    telemetry_parent = argparse.ArgumentParser(add_help=False)
    tele = telemetry_parent.add_argument_group("sampled run")
    tele.add_argument("--app", required=True,
                      choices=sorted(APP_REGISTRY))
    tele.add_argument("--protocol", default="GeNIMA",
                      choices=sorted(PROTOCOLS))
    tele.add_argument("--nodes", type=int, default=4,
                      help="node count (default: 4)")
    tele.add_argument("--topology", default=None,
                      choices=["crossbar", "fat-tree", "dragonfly"],
                      help="fabric model (default: machine default)")
    tele.add_argument("--procs-per-node", type=int, default=None,
                      help="SMP width per node (default: machine "
                           "default)")
    tele.add_argument("--cadence-us", type=float, default=1000.0,
                      help="telemetry sampling slice width in us of "
                           "sim time (default: 1000)")
    tele.add_argument("--top-k", type=int, default=8,
                      help="hot nodes per metric (default: 8)")
    tele.add_argument("--scale", action="store_true",
                      help="size the workload with the fixed-total-"
                           "work recipe of `repro scale` (KVStore, "
                           "ParamServer, OpenLoop)")
    tele.add_argument("--paper-size", action="store_true",
                      help="use the paper's problem size (slow)")
    tele.add_argument("--seed", type=int, default=0,
                      help="workload seed (with --scale)")

    metrics = sub.add_parser(
        "metrics", parents=[telemetry_parent],
        help="sampled run: registry snapshot + telemetry summary "
             "as OpenMetrics or JSON")
    metrics.add_argument("--openmetrics", action="store_true",
                         help="emit the OpenMetrics text exposition "
                              "instead of JSON")
    metrics.add_argument("--out", metavar="PATH",
                         help="write to PATH instead of stdout")
    metrics.set_defaults(fn=_cmd_metrics)

    dash = sub.add_parser(
        "dash", parents=[telemetry_parent],
        help="sampled run: ASCII/HTML telemetry dashboard with "
             "sparklines, hot-node tables and phase overlay")
    dash.add_argument("--slice-us", type=float, default=1000.0,
                      help="phase-profiler slice width in us "
                           "(default: 1000)")
    dash.add_argument("--width", type=int, default=64,
                      help="sparkline width in columns (default: 64)")
    dash.add_argument("--html", metavar="PATH",
                      help="also write an HTML dashboard")
    dash.add_argument("--perfetto", metavar="PATH",
                      help="write a Chrome/Perfetto trace with the "
                           "telemetry counter tracks merged in")
    dash.set_defaults(fn=_cmd_dash)

    sub.add_parser("calibrate",
                   help="communication-layer microbenchmarks") \
        .set_defaults(fn=_cmd_calibrate)

    serve = sub.add_parser(
        "serve", help="run the persistent experiment daemon: one warm "
                      "cache + worker pool, many clients, "
                      "single-flight dedup")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8737,
                       help="TCP port (default: 8737; 0 = ephemeral)")
    serve.add_argument("--jobs", type=int, default=0, metavar="N",
                       help="worker pool size (default: CPU count)")
    serve.add_argument("--workers", choices=["spawn", "thread"],
                       default="spawn",
                       help="worker pool kind (default: spawn "
                            "processes; thread = cheap startup, "
                            "shares the daemon process)")
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persistent store root (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve from memory only (no persistent "
                            "store)")
    serve.add_argument("--memo-cap", type=int, default=1024,
                       help="in-memory payload LRU entries "
                            "(default: 1024)")
    serve.set_defaults(fn=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a cell grid to a `repro serve` daemon "
                       "and stream per-cell progress")
    submit.add_argument("--serve", metavar="URL",
                        default="http://127.0.0.1:8737",
                        help="daemon URL (default: "
                             "http://127.0.0.1:8737)")
    submit.add_argument("--app", action="append",
                        choices=sorted(APP_REGISTRY),
                        help="app(s) to submit (default: FFT)")
    submit.add_argument("--protocol", action="append",
                        choices=sorted(PROTOCOLS),
                        help="protocol rung(s) (default: the ladder)")
    submit.add_argument("--nodes", type=int, default=4,
                        help="SMP nodes (default: 4)")
    submit.add_argument("--no-seq", action="store_true",
                        help="skip the sequential baseline cells")
    submit.add_argument("--stats", action="store_true",
                        help="print the daemon's counters and exit")
    submit.add_argument("--shutdown", action="store_true",
                        help="drain and stop the daemon")
    submit.set_defaults(fn=_cmd_submit)

    cache = sub.add_parser(
        "cache", help="inspect or wipe the persistent run cache")
    cache.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="cache root (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro)")
    cache.add_argument("--wipe", action="store_true",
                       help="delete every entry of the current schema")
    cache.add_argument("-v", "--verbose", action="store_true",
                       help="list entries (digest, kind, app)")
    cache.set_defaults(fn=_cmd_cache)

    check = sub.add_parser(
        "check", help="trace-sanitize app x protocol runs")
    check.add_argument("--app", action="append",
                       choices=sorted(APP_REGISTRY),
                       help="app(s) to check (default: "
                            + ", ".join(CHECK_APPS) + ")")
    check.add_argument("--protocol", action="append",
                       choices=sorted(PROTOCOLS),
                       help="protocol(s) to check (default: the ladder)")
    check.add_argument("--no-invariants", action="store_true",
                       help="skip the runtime invariant checker")
    check.add_argument("--faults", metavar="SPEC",
                       help="sanitize runs under injected faults, "
                            "e.g. loss=0.05")
    check.set_defaults(fn=_cmd_check)

    lint = sub.add_parser(
        "lint", help="static lint: determinism rules + whole-program "
                     "protocol/trace/cache/race passes")
    lint.add_argument("path", nargs="*",
                      help="files/directories to lint with local rules "
                           "only (default: whole-program analysis of "
                           "the repro package)")
    lint.add_argument("--rule", action="append",
                      help="run only the named rule(s) / famil(ies)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list available rules and exit")
    lint.add_argument("--local-only", action="store_true",
                      help="skip the cross-module rule families")
    lint.add_argument("--package-root", metavar="DIR",
                      help="run the whole-program analysis on this "
                           "package directory instead of repro")
    lint.add_argument("--sarif", metavar="FILE",
                      help="write a SARIF 2.1.0 report to FILE")
    lint.add_argument("--baseline", metavar="FILE",
                      help="baseline of accepted findings (default: "
                           "lint-baseline.json if present)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from current findings "
                           "(keeps justifications, expires stale keys)")
    lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
