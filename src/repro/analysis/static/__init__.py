"""Whole-program static analysis (cross-module rule families).

Importing this package loads the project model, the rule registry,
and registers the four built-in families: PROTO (protocol flow), TRC
(trace schema), FPR (cache-fingerprint coverage), RACE (shared-state
mutation).
"""

from .baseline import Baseline, BaselineEntry, finding_key
from .driver import (
    AnalysisReport,
    analyze_paths,
    analyze_project,
    available_rule_names,
    describe_rule,
    rule_descriptions,
)
from .project import ModuleInfo, ProjectModel
from .registry import PROJECT_RULES, ProjectRule, register_project_rule
from .sarif import to_sarif

# importing the family modules registers their rules
from . import fpr as _fpr  # noqa: F401
from . import proto as _proto  # noqa: F401
from . import race as _race  # noqa: F401
from . import trc as _trc  # noqa: F401

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "ModuleInfo",
    "PROJECT_RULES",
    "ProjectModel",
    "ProjectRule",
    "analyze_paths",
    "analyze_project",
    "available_rule_names",
    "describe_rule",
    "finding_key",
    "register_project_rule",
    "rule_descriptions",
    "to_sarif",
]
