"""FPR: cache-fingerprint coverage of the import graph.

``runtime/parallel.py`` memoises experiment cells under a content
digest that includes ``code_fingerprint()`` — a hash of the source
files in ``FINGERPRINT_DIRS`` (plus ``FINGERPRINT_MODULES``).  Any
module that can influence a cell's result but is *not* hashed makes
the cache silently stale: edit the module, rerun, get yesterday's
numbers.  The reachable set is computed from the import graph,
starting at the modules that evaluate cells (the ones that define or
assign ``FINGERPRINT_DIRS`` — they are the cache entry points), and
closed over *all* imports including function-level lazy ones, because
``evaluate_cell`` imports its workloads lazily.

* **FPR001** — a module is reachable from the cache entry point but
  covered by neither ``FINGERPRINT_DIRS`` nor ``FINGERPRINT_MODULES``.
* **FPR002** — a declared fingerprint dir or module does not exist on
  disk: the declaration is dead and the hash is narrower than the
  author believes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..lint import LintViolation
from .project import ModuleInfo, ProjectModel
from .registry import ProjectRule, register_project_rule

__all__ = ["FprRule"]


def _fingerprint_decl(project: ProjectModel
                      ) -> Optional[Tuple[ModuleInfo, Tuple[str, ...],
                                          Tuple[str, ...]]]:
    """The module declaring ``FINGERPRINT_DIRS`` plus both declared
    tuples (dirs, extra modules)."""
    for info in project.modules.values():
        dirs = info.tuple_constants.get("FINGERPRINT_DIRS")
        if dirs is not None:
            modules = info.tuple_constants.get("FINGERPRINT_MODULES", ())
            return info, dirs, modules
    return None


def _covered(info: ModuleInfo, dirs: Tuple[str, ...],
             modules: Tuple[str, ...]) -> bool:
    rel = info.rel
    top = rel.split("/", 1)[0]
    if "/" in rel and top in dirs:
        return True
    return rel in modules


@register_project_rule
class FprRule(ProjectRule):
    """Everything the run cache can execute must be fingerprinted."""

    name = "fpr"
    family = "FPR"
    description = ("modules reachable from the run cache are covered "
                   "by the code fingerprint")

    def check(self, project: ProjectModel) -> Iterator[LintViolation]:
        decl = _fingerprint_decl(project)
        if decl is None:
            return
        anchor, dirs, modules = decl

        # FPR002: dead declarations.
        root = project.root
        for d in dirs:
            if not (root / d).is_dir():
                yield self.hit(
                    anchor, anchor.tree.body[0] if anchor.tree.body
                    else None, "FPR002",
                    f"FINGERPRINT_DIRS names {d!r} but "
                    f"{(root / d).as_posix()} does not exist; the "
                    f"fingerprint is narrower than declared")
        for m in modules:
            if not (root / m).is_file():
                yield self.hit(
                    anchor, anchor.tree.body[0] if anchor.tree.body
                    else None, "FPR002",
                    f"FINGERPRINT_MODULES names {m!r} but "
                    f"{(root / m).as_posix()} does not exist; the "
                    f"fingerprint is narrower than declared")

        # FPR001: reachable but unhashed modules.
        reachable = project.reachable_from(anchor.name)
        missing: List[ModuleInfo] = []
        for name in sorted(reachable):
            info = project.modules[name]
            if not _covered(info, dirs, modules):
                missing.append(info)
        for info in missing:
            yield self.hit(
                info, info.tree.body[0] if info.tree.body else None,
                "FPR001",
                f"module {info.name} is reachable from the run cache "
                f"(via {anchor.name}) but not covered by "
                f"FINGERPRINT_DIRS/FINGERPRINT_MODULES: editing it "
                f"will NOT invalidate cached results")
