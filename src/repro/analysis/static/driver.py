"""Analysis driver: load project, run rule families, apply noqa.

Two entry points:

* :func:`analyze_project` — whole-program analysis of one package
  root: every local (single-file) rule on every module, plus every
  registered :class:`ProjectRule` family.  This is what
  ``repro lint`` runs on ``src/repro``.
* :func:`analyze_paths` — local rules only, over arbitrary files and
  directories (``tests/``, ``scripts/``): cross-module families need
  a package root and do not apply there.

Both honour inline suppressions: a line containing
``# repro: noqa[RULE]`` suppresses findings of that rule on that
line; ``RULE`` may be an exact id (``PROTO001``), a family prefix
(``PROTO``), or a local rule name (``wall-clock``), and several may
be given comma-separated.  Matching is case-insensitive.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..lint import RULES, LintViolation, iter_py_files, lint_source
from .project import ProjectModel
from .registry import PROJECT_RULES

__all__ = ["AnalysisReport", "analyze_project", "analyze_paths",
           "rule_descriptions", "available_rule_names"]

_NOQA = re.compile(r"#\s*repro:\s*noqa\[([^\]]+)\]", re.IGNORECASE)


def _sort_key(v: LintViolation) -> Tuple[str, int, int, str]:
    return (v.path, v.line, v.col, v.rule)


@dataclass
class AnalysisReport:
    """Outcome of one analysis run, after suppression filtering."""

    violations: List[LintViolation] = field(default_factory=list)
    suppressed: List[LintViolation] = field(default_factory=list)
    syntax_errors: List[LintViolation] = field(default_factory=list)

    def sorted(self) -> "AnalysisReport":
        return AnalysisReport(
            violations=sorted(self.violations, key=_sort_key),
            suppressed=sorted(self.suppressed, key=_sort_key),
            syntax_errors=sorted(self.syntax_errors, key=_sort_key))


def _noqa_rules(line: str) -> Optional[List[str]]:
    match = _NOQA.search(line)
    if match is None:
        return None
    return [part.strip().lower()
            for part in match.group(1).split(",") if part.strip()]


def _is_suppressed(v: LintViolation, names: List[str]) -> bool:
    rule = v.rule.lower()
    fam = v.family.lower()
    return any(n == rule or n == fam for n in names)


def _apply_suppressions(violations: List[LintViolation],
                        sources: Dict[str, List[str]]
                        ) -> Tuple[List[LintViolation],
                                   List[LintViolation]]:
    kept: List[LintViolation] = []
    suppressed: List[LintViolation] = []
    for v in violations:
        lines = sources.get(v.path)
        if lines is None:
            try:
                lines = Path(v.path).read_text(
                    encoding="utf-8").splitlines()
            except OSError:
                lines = []
            sources[v.path] = lines
        names = (_noqa_rules(lines[v.line - 1])
                 if 0 < v.line <= len(lines) else None)
        if names is not None and _is_suppressed(v, names):
            suppressed.append(v)
        else:
            kept.append(v)
    return kept, suppressed


def _split_rule_names(rules: Optional[Sequence[str]]
                      ) -> Tuple[Optional[List[str]],
                                 Optional[List[str]]]:
    """``(local, families)`` — None means "all of that kind"."""
    if rules is None:
        return None, None
    local: List[str] = []
    families: List[str] = []
    for name in rules:
        low = name.lower()
        if low in PROJECT_RULES:
            families.append(low)
        elif low in RULES:
            local.append(low)
        else:
            raise ValueError(
                f"unknown rule {name!r}; known: "
                f"{', '.join(available_rule_names())}")
    return local, families


def available_rule_names() -> List[str]:
    """Every selectable rule name: local rules plus family keys."""
    return sorted(RULES) + sorted(PROJECT_RULES)


def rule_descriptions() -> Dict[str, str]:
    """rule/family id -> description, for SARIF metadata.  Family
    descriptions are registered under the family prefix so any
    numbered id resolves through :func:`describe_rule`."""
    out = {name: cls.description for name, cls in RULES.items()}
    for cls in PROJECT_RULES.values():
        out[cls.family] = cls.description
    return out


def describe_rule(rule_id: str) -> str:
    """Description of one (possibly numbered) rule id."""
    table = rule_descriptions()
    if rule_id in table:
        return table[rule_id]
    return table.get(rule_id.rstrip("0123456789"), rule_id)


def analyze_project(root: Path, package: Optional[str] = None,
                    rules: Optional[Sequence[str]] = None,
                    local_only: bool = False) -> AnalysisReport:
    """Whole-program analysis of the package rooted at ``root``."""
    local, families = _split_rule_names(rules)
    model = ProjectModel.load(root, package=package)
    report = AnalysisReport(syntax_errors=list(model.syntax_errors))
    sources: Dict[str, List[str]] = {}

    violations: List[LintViolation] = []
    local_names = local if local is not None else sorted(RULES)
    if local is None or local:
        for info in model.modules.values():
            sources[str(info.path)] = info.source.splitlines()
            for name in local_names:
                for v in RULES[name]().check(info.tree, str(info.path)):
                    violations.append(LintViolation(
                        path=v.path, line=v.line, col=v.col,
                        rule=v.rule, message=v.message,
                        symbol=info.symbol_at(v.line)))
    if not local_only:
        family_names = (families if families is not None
                        else sorted(PROJECT_RULES))
        for name in family_names:
            violations.extend(PROJECT_RULES[name]().check(model))

    kept, suppressed = _apply_suppressions(violations, sources)
    report.violations = kept
    report.suppressed = suppressed
    return report.sorted()


def analyze_paths(paths: Sequence[Path],
                  rules: Optional[Sequence[str]] = None
                  ) -> AnalysisReport:
    """Local rules over arbitrary files/dirs (no project model)."""
    local, families = _split_rule_names(rules)
    if families:
        raise ValueError(
            f"cross-module rule families ({', '.join(families)}) "
            f"need a package root; they do not apply to loose paths")
    report = AnalysisReport()
    sources: Dict[str, List[str]] = {}
    violations: List[LintViolation] = []
    for path in iter_py_files(paths):
        source = path.read_text(encoding="utf-8")
        sources[str(path)] = source.splitlines()
        for v in lint_source(source, path=str(path), rules=local):
            if v.rule == "syntax":
                report.syntax_errors.append(v)
            else:
                violations.append(v)
    kept, suppressed = _apply_suppressions(violations, sources)
    report.violations = kept
    report.suppressed = suppressed
    return report.sorted()
