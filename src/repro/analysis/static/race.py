"""RACE: cross-node shared objects mutated outside engine dispatch.

The simulated machine has exactly three objects that more than one
node touches: the :class:`Network`, the :class:`ResultStore`, and the
(frozen) :class:`MachineConfig`.  The determinism story depends on
all mutation of these flowing through engine dispatch — a direct
attribute store from protocol code is a cross-node race in the model
even though Python serialises it.

* **RACE001** — an attribute store on an object whose name marks it
  as shared (``network.*``, ``results.*``, ``config.*`` and their
  ``self.``-qualified forms) outside the allowed contexts: the shared
  class's own methods, any ``__init__``/``__post_init__``
  (construction wiring), the module that defines the class, and
  ``repro.sim`` (the engine itself).
* **RACE002** — a shared class used as a parameter default: one
  instance silently shared by every caller of the function (the
  mutable-default hazard, specialised to cross-node state).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Union

from ..lint import LintViolation
from .project import ModuleInfo, ProjectModel, dotted_name
from .registry import ProjectRule, register_project_rule

__all__ = ["RaceRule", "SHARED_CLASSES"]

#: class name -> attribute stems its instances are bound to.
SHARED_CLASSES: Dict[str, Set[str]] = {
    "Network": {"network", "net"},
    "ResultStore": {"results", "result_store", "store"},
    "MachineConfig": {"config", "cfg"},
}

#: construction contexts where wiring mutation is expected.
_INIT_METHODS = frozenset({"__init__", "__post_init__"})


def _shared_stem(target: ast.Attribute) -> Optional[str]:
    """The shared-class name an attribute store targets, or None.

    Matches ``network.x = ...``, ``self.network.x = ...`` and deeper
    chains whose *second-to-last* component is a shared stem — but
    NOT ``self.network = ...`` (binding the reference is not mutating
    the shared object).
    """
    base = dotted_name(target.value)
    if base is None:
        return None
    parts = base.split(".")
    stem = parts[-1]
    for cls, stems in SHARED_CLASSES.items():
        if stem in stems:
            return cls
    return None


def _in_allowed_context(project: ProjectModel, info: ModuleInfo,
                        node: ast.AST, cls_name: str) -> bool:
    # inside repro.sim: the engine mediates everything it does.
    if info.name.startswith(f"{project.package}.sim"):
        return True
    # inside the module that defines the shared class.
    for def_info, _ in project.find_class(cls_name):
        if def_info.name == info.name:
            return True
    for anc in info.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if anc.name in _INIT_METHODS:
                return True
        elif isinstance(anc, ast.ClassDef):
            if anc.name == cls_name:
                return True
    return False


@register_project_rule
class RaceRule(ProjectRule):
    """Mutation of cross-node shared objects stays in the engine."""

    name = "race"
    family = "RACE"
    description = ("Network/ResultStore/MachineConfig are only "
                   "mutated through engine dispatch or construction")

    def check(self, project: ProjectModel) -> Iterator[LintViolation]:
        for info in project.modules.values():
            for node in ast.walk(info.tree):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    yield from self._check_store(project, info, node)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    yield from self._check_defaults(info, node)

    def _check_store(self, project: ProjectModel, info: ModuleInfo,
                     node: "Union[ast.Assign, ast.AugAssign]"
                     ) -> Iterator[LintViolation]:
        targets: List[ast.expr] = (
            list(node.targets) if isinstance(node, ast.Assign)
            else [node.target])
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            cls_name = _shared_stem(target)
            if cls_name is None:
                continue
            if _in_allowed_context(project, info, node, cls_name):
                continue
            base = dotted_name(target.value) or "?"
            yield self.hit(
                info, node, "RACE001",
                f"attribute store {base}.{target.attr} mutates shared "
                f"{cls_name} state outside engine dispatch or "
                f"construction; route it through an engine event")

    def _check_defaults(
            self, info: ModuleInfo,
            fn: "Union[ast.FunctionDef, ast.AsyncFunctionDef]"
            ) -> Iterator[LintViolation]:
        defaults = [*fn.args.defaults,
                    *[d for d in fn.args.kw_defaults if d is not None]]
        for default in defaults:
            if not isinstance(default, ast.Call):
                continue
            callee = default.func
            name = (callee.id if isinstance(callee, ast.Name)
                    else callee.attr
                    if isinstance(callee, ast.Attribute) else None)
            if name in SHARED_CLASSES:
                yield self.hit(
                    info, default, "RACE002",
                    f"{name}() constructed as a parameter default of "
                    f"{fn.name}(): one shared instance serves every "
                    f"caller — a cross-node aliasing hazard; default "
                    f"to None and construct inside")
