"""Pluggable registry of cross-module (whole-program) rule families.

Layered on the single-file :class:`repro.analysis.lint.Rule` API: a
:class:`ProjectRule` sees the whole :class:`ProjectModel` instead of
one AST, and emits :class:`LintViolation` s whose ``rule`` is a family
id plus a number (``PROTO001``), so inline suppressions can name
either the exact rule (``# repro: noqa[PROTO001]``) or the family
(``# repro: noqa[PROTO]``).

Register with::

    @register_project_rule
    class MyRule(ProjectRule):
        name = "mine"
        ...
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Type

from ..lint import LintViolation
from .project import ModuleInfo, ProjectModel

__all__ = ["ProjectRule", "PROJECT_RULES", "register_project_rule"]


class ProjectRule:
    """One whole-program pass over a loaded project model."""

    #: registry key and ``--rule`` filter name (lowercase family).
    name = "abstract"
    #: family prefix of emitted rule ids ("PROTO" -> PROTO001...).
    family = "ABSTRACT"
    description = ""

    def check(self, project: ProjectModel) -> Iterator[LintViolation]:
        raise NotImplementedError

    def hit(self, info: ModuleInfo, node: Optional[ast.AST],
            rule_id: str, message: str) -> LintViolation:
        line = getattr(node, "lineno", 0) if node is not None else 0
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return LintViolation(
            path=str(info.path), line=line, col=col, rule=rule_id,
            message=message, symbol=info.symbol_at(line))


#: family name -> rule class; the CLI and driver pick these up.
PROJECT_RULES: Dict[str, Type[ProjectRule]] = {}


def register_project_rule(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a whole-program rule family."""
    if cls.name in PROJECT_RULES:
        raise ValueError(f"duplicate project rule {cls.name!r}")
    PROJECT_RULES[cls.name] = cls
    return cls
