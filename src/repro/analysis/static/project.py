"""Whole-program project model: per-module ASTs, imports, symbols.

:class:`ProjectModel` loads every ``*.py`` under one package root,
parses it once, and exposes the cross-module facts the rule families
need:

* the **import graph** (project-internal edges only, resolved from
  absolute and relative imports at any nesting depth — function-level
  lazy imports included, because the cache fingerprint rule cares
  exactly about those);
* a **symbol table** of classes and functions per module, plus
  line-interval lookup of the innermost enclosing definition (findings
  are keyed by symbol so the baseline survives line drift);
* **constant resolution** for module-level string and tuple-of-string
  assignments (dispatch registrations like ``fw_handlers[ACK_KIND]``
  resolve through it);
* **parent chains** for guard analysis (is this call inside an
  ``if x is not None:`` body?).

Modules that fail to parse are recorded as ``syntax`` violations on
the model (never raised); rules simply do not see them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..lint import LintViolation

__all__ = ["ModuleInfo", "ProjectModel", "dotted_name"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str                 #: dotted module name ("repro.svm.protocol")
    path: Path                #: absolute source path
    rel: str                  #: path relative to the package root (posix)
    tree: ast.Module
    source: str
    is_package: bool          #: True for ``__init__.py`` modules
    #: project-internal modules this module imports (any nesting depth).
    imports: Set[str] = field(default_factory=set)
    #: module-level ``NAME = "str"`` constants.
    str_constants: Dict[str, str] = field(default_factory=dict)
    #: module- and class-level ``NAME = ("a", "b")`` constants; class
    #: level entries are stored under both ``NAME`` and ``Cls.NAME``.
    tuple_constants: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict)
    _parents: Optional[Dict[int, ast.AST]] = field(
        default=None, repr=False)
    _symbols: Optional[List[Tuple[int, int, str]]] = field(
        default=None, repr=False)

    # ---------------------------------------------------------- lazy maps

    def parents(self) -> Dict[int, ast.AST]:
        """``id(child) -> parent`` for every node of the tree."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing nodes, innermost first."""
        parents = self.parents()
        current: Optional[ast.AST] = parents.get(id(node))
        while current is not None:
            yield current
            current = parents.get(id(current))

    def _symbol_spans(self) -> List[Tuple[int, int, str]]:
        if self._symbols is None:
            spans: List[Tuple[int, int, str]] = []

            def visit(node: ast.AST, prefix: str) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef)):
                        qual = (f"{prefix}.{child.name}"
                                if prefix else child.name)
                        end = getattr(child, "end_lineno",
                                      child.lineno) or child.lineno
                        spans.append((child.lineno, end, qual))
                        visit(child, qual)
                    else:
                        visit(child, prefix)

            visit(self.tree, "")
            self._symbols = spans
        return self._symbols

    def symbol_at(self, lineno: int) -> str:
        """Dotted qualname of the innermost def/class at ``lineno``."""
        best = ""
        best_width = None
        for start, end, qual in self._symbol_spans():
            if start <= lineno <= end:
                width = end - start
                if best_width is None or width <= best_width:
                    best, best_width = qual, width
        return best

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        """The nearest enclosing ClassDef of ``node`` (None at module
        level or inside a plain function)."""
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
        return None

    # ------------------------------------------------------- resolution

    def resolve_str(self, node: ast.AST) -> Optional[str]:
        """A literal or module-constant string value, else None."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self.str_constants.get(node.id)
        return None


class ProjectModel:
    """All modules of one package, with cross-module lookups."""

    def __init__(self, package: str, root: Path):
        self.package = package
        self.root = root
        #: dotted name -> module.
        self.modules: Dict[str, ModuleInfo] = {}
        #: parse failures, as ``syntax`` violations (never raised).
        self.syntax_errors: List[LintViolation] = []

    # --------------------------------------------------------------- load

    @classmethod
    def load(cls, root: Path,
             package: Optional[str] = None) -> "ProjectModel":
        """Parse every module under ``root`` (a package directory)."""
        root = Path(root).resolve()
        model = cls(package or root.name, root)
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            name = model._module_name(rel)
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as err:
                model.syntax_errors.append(LintViolation(
                    path=str(path), line=err.lineno or 0,
                    col=err.offset or 0, rule="syntax",
                    message=str(err.msg)))
                continue
            info = ModuleInfo(
                name=name, path=path, rel=rel, tree=tree, source=source,
                is_package=path.name == "__init__.py")
            model.modules[name] = info
        for info in model.modules.values():
            model._collect_imports(info)
            model._collect_constants(info)
        return model

    def _module_name(self, rel: str) -> str:
        parts = rel[:-3].split("/")          # strip ".py"
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join([self.package, *parts]) if parts \
            else self.package

    # ------------------------------------------------------------ imports

    def _collect_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._add_internal(info, alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    target = f"{base}.{alias.name}" if base else alias.name
                    if target in self.modules:
                        # ``from pkg.mod import name`` where name is a
                        # module: depend on the module itself.
                        info.imports.add(target)
                    else:
                        self._add_internal(info, base)

    def _import_base(self, info: ModuleInfo,
                     node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted base of a ``from`` import, or None when the
        import is external to the project."""
        if node.level == 0:
            module = node.module or ""
            if module == self.package \
                    or module.startswith(self.package + "."):
                return module
            return None
        parts = info.name.split(".")
        if not info.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop:
            parts = parts[:-drop] if drop < len(parts) else []
        if not parts:
            return None
        base = ".".join(parts)
        return f"{base}.{node.module}" if node.module else base

    def _add_internal(self, info: ModuleInfo, name: str) -> None:
        """Add the longest loaded-module prefix of ``name``."""
        if not (name == self.package
                or name.startswith(self.package + ".")):
            return
        parts = name.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in self.modules:
                if candidate != info.name:
                    info.imports.add(candidate)
                return
            parts.pop()

    # ---------------------------------------------------------- constants

    def _collect_constants(self, info: ModuleInfo) -> None:
        def record(target: ast.AST, value: ast.AST,
                   prefix: str = "") -> None:
            if not isinstance(target, ast.Name):
                return
            name = f"{prefix}{target.id}" if prefix else target.id
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, str):
                info.str_constants[name] = value.value
                if prefix:  # also visible unqualified inside the class
                    info.str_constants.setdefault(target.id, value.value)
            elif isinstance(value, (ast.Tuple, ast.List)):
                elems = []
                for e in value.elts:
                    if isinstance(e, ast.Constant) \
                            and isinstance(e.value, str):
                        elems.append(e.value)
                    else:
                        return
                info.tuple_constants[name] = tuple(elems)
                if prefix:
                    info.tuple_constants.setdefault(target.id,
                                                    tuple(elems))

        for stmt in info.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                record(stmt.targets[0], stmt.value)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, ast.Assign) \
                            and len(sub.targets) == 1:
                        record(sub.targets[0], sub.value,
                               prefix=f"{stmt.name}.")

    # ------------------------------------------------------------ lookups

    def reachable_from(self, entry: str) -> Set[str]:
        """Transitive import closure of ``entry`` (inclusive)."""
        seen: Set[str] = set()
        frontier = [entry]
        while frontier:
            name = frontier.pop()
            if name in seen or name not in self.modules:
                continue
            seen.add(name)
            frontier.extend(self.modules[name].imports)
        return seen

    def find_class(self, class_name: str
                   ) -> List[Tuple[ModuleInfo, ast.ClassDef]]:
        """Every definition of ``class_name`` across the project."""
        out: List[Tuple[ModuleInfo, ast.ClassDef]] = []
        for info in self.modules.values():
            for node in info.tree.body:
                if isinstance(node, ast.ClassDef) \
                        and node.name == class_name:
                    out.append((info, node))
        return out

    def iter_calls(self) -> Iterator[Tuple[ModuleInfo, ast.Call]]:
        """Every call expression in every module."""
        for info in self.modules.values():
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Call):
                    yield info, node
