"""TRC: trace-schema conformance for every emit site.

The observability layer's downstream consumers (profile CLI, critical
path, Perfetto export) key on trace *category* strings and field
names; a typo at an emit site silently produces events nothing reads.
The schema is declared once (``repro.sim.trace_schema``) and every
emit site is checked against it:

* **TRC001** — emit with a category the schema does not declare.
* **TRC002** — emit whose keyword fields do not match the declared
  family: missing required fields, or extra fields on a non-variadic
  family (``**kwargs`` splats disable the extra-field check but not
  the required-field one when other keywords are present).
* **TRC003** — a *direct* ``tracer.record(...)`` / ``tracer.emit``
  call on an attribute whose owning class can hold ``tracer = None``,
  outside any ``if ... is not None`` guard: an AttributeError on the
  hot path of exactly the runs where tracing is off.

The schema itself is recovered statically: the rule AST-extracts
``family(name, fields=..., required=..., variadic=...)`` calls from
any project module whose name ends in ``trace_schema``.  Projects
without such a module (plain fixture packages) skip the TRC pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from ..lint import LintViolation
from .project import ModuleInfo, ProjectModel, dotted_name
from .registry import ProjectRule, register_project_rule

__all__ = ["TrcRule", "extract_schema", "SchemaFamily"]

#: both flavours of function definition.
_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class SchemaFamily:
    """Statically-extracted declaration of one trace family."""

    name: str
    fields: Tuple[str, ...]
    required: Tuple[str, ...]
    variadic: bool


def _str_tuple(node: Optional[ast.expr]) -> Optional[Tuple[str, ...]]:
    if node is None:
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: List[str] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) \
                    and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return tuple(out)
    return None


def extract_schema(project: ProjectModel
                   ) -> Optional[Dict[str, SchemaFamily]]:
    """Recover the declared trace schema from ``*trace_schema``
    modules by reading ``family(...)`` calls.  None when the project
    declares no schema at all."""
    schema: Dict[str, SchemaFamily] = {}
    found_module = False
    for info in project.modules.values():
        if not info.name.endswith("trace_schema"):
            continue
        found_module = True
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if callee != "family" or not node.args:
                continue
            name = info.resolve_str(node.args[0])
            if name is None:
                continue
            kw = {k.arg: k.value for k in node.keywords
                  if k.arg is not None}
            fields = _str_tuple(kw.get("fields")) or (
                _str_tuple(node.args[1]) if len(node.args) > 1 else ())
            fields = fields or ()
            required = _str_tuple(kw.get("required"))
            variadic_node = kw.get("variadic")
            variadic = (isinstance(variadic_node, ast.Constant)
                        and variadic_node.value is True)
            schema[name] = SchemaFamily(
                name=name, fields=fields,
                required=required if required is not None else fields,
                variadic=variadic)
    if not found_module:
        return None
    return schema


@dataclass
class EmitSite:
    """One trace-emit call: category + keyword fields."""

    info: ModuleInfo
    node: ast.Call
    category: Optional[str]     #: None when dynamic
    fields: Tuple[str, ...]
    has_splat: bool             #: call contains **kwargs
    direct: bool                #: tracer.record / tracer.emit attribute
    owner: Optional[str]        #: receiver chain, e.g. "self.tracer"


def _emit_sites(project: ProjectModel) -> Iterator[EmitSite]:
    for info, node in project.iter_calls():
        func = node.func
        if not isinstance(func, ast.Attribute):
            # module-level helper: _trace(cat, **fields) style wrappers
            if isinstance(func, ast.Name) and func.id == "_trace" \
                    and node.args:
                yield _site(info, node, node.args[0], direct=False,
                            owner=None)
            continue
        if func.attr == "_trace" and node.args:
            # method wrapper: self._trace("cat", **fields)
            yield _site(info, node, node.args[0], direct=False,
                        owner=None)
        elif func.attr in ("record", "emit"):
            owner = dotted_name(func.value)
            if owner is None or owner.split(".")[-1] != "tracer":
                continue
            # Tracer.record(sim, category, **fields): category is the
            # second positional argument.
            if len(node.args) < 2:
                continue
            yield _site(info, node, node.args[1], direct=True,
                        owner=owner)


def _site(info: ModuleInfo, node: ast.Call, cat_node: ast.expr,
          direct: bool, owner: Optional[str]) -> EmitSite:
    category = info.resolve_str(cat_node)
    fields = tuple(k.arg for k in node.keywords if k.arg is not None)
    has_splat = any(k.arg is None for k in node.keywords)
    return EmitSite(info=info, node=node, category=category,
                    fields=fields, has_splat=has_splat,
                    direct=direct, owner=owner)


def _optional_tracer_classes(project: ProjectModel) -> Set[str]:
    """Class names whose instances may hold ``self.tracer = None``:
    an ``__init__`` that assigns None, or a parameter annotated
    ``Optional[...]``/defaulting to None feeding ``self.tracer``."""
    optional: Set[str] = set()
    for info in project.modules.values():
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _class_tracer_optional(node):
                optional.add(node.name)
    return optional


def _class_tracer_optional(cls: ast.ClassDef) -> bool:
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Attribute)
                        and target.attr == "tracer"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                value = node.value
                if isinstance(value, ast.Constant) \
                        and value.value is None:
                    return True
                if isinstance(value, ast.Name) \
                        and _param_optional(item, value.id):
                    return True
    return False


def _param_optional(fn: "_FuncDef", param: str) -> bool:
    args = [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
    defaults = list(fn.args.defaults)
    # align positional defaults with the tail of positional args
    pos = [*fn.args.posonlyargs, *fn.args.args]
    pos_defaults: Dict[str, ast.expr] = {}
    for arg, default in zip(pos[len(pos) - len(defaults):], defaults):
        pos_defaults[arg.arg] = default
    for arg, kw_default in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
        if kw_default is not None:
            pos_defaults[arg.arg] = kw_default
    for arg in args:
        if arg.arg != param:
            continue
        default = pos_defaults.get(param)
        if isinstance(default, ast.Constant) and default.value is None:
            return True
        ann = arg.annotation
        if ann is not None and _annotation_optional(ann):
            return True
    return False


def _annotation_optional(ann: ast.expr) -> bool:
    text = ast.dump(ann)
    return "'Optional'" in text or "'None'" in text \
        or (isinstance(ann, ast.Constant)
            and isinstance(ann.value, str)
            and ("Optional" in ann.value or "None" in ann.value))


def _is_guarded(info: ModuleInfo, node: ast.Call, owner: str) -> bool:
    """True when the call sits inside an ``if <owner> is not None``
    (or truthiness) guard on the same attribute chain."""
    for anc in info.ancestors(node):
        if isinstance(anc, ast.If) and _guards(anc.test, owner):
            return True
        if isinstance(anc, ast.IfExp) and _guards(anc.test, owner):
            return True
        if isinstance(anc, ast.BoolOp) and isinstance(anc.op, ast.And):
            if any(_guards(v, owner) for v in anc.values):
                return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # early-return guard: `if owner is None: return` earlier
            # in the same function body.
            if _early_return_guard(anc, node, owner):
                return True
            break
    return False


def _guards(test: ast.expr, owner: str) -> bool:
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.ops[0], ast.IsNot) \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        return dotted_name(test.left) == owner
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_guards(v, owner) for v in test.values)
    return dotted_name(test) == owner  # plain truthiness


def _early_return_guard(fn: ast.AST, node: ast.Call,
                        owner: str) -> bool:
    call_line = node.lineno
    for stmt in ast.walk(fn):
        if not isinstance(stmt, ast.If):
            continue
        if stmt.lineno >= call_line:
            continue
        test = stmt.test
        is_none = (isinstance(test, ast.Compare)
                   and len(test.ops) == 1
                   and isinstance(test.ops[0], ast.Is)
                   and isinstance(test.comparators[0], ast.Constant)
                   and test.comparators[0].value is None
                   and dotted_name(test.left) == owner)
        not_owner = (isinstance(test, ast.UnaryOp)
                     and isinstance(test.op, ast.Not)
                     and dotted_name(test.operand) == owner)
        if (is_none or not_owner) and stmt.body and isinstance(
                stmt.body[0], (ast.Return, ast.Raise, ast.Continue)):
            return True
    return False


@register_project_rule
class TrcRule(ProjectRule):
    """Every trace emit matches the declared schema and is guarded."""

    name = "trc"
    family = "TRC"
    description = ("trace emit sites conform to the declared schema; "
                   "direct tracer calls on optional tracers are "
                   "guarded")

    def check(self, project: ProjectModel) -> Iterator[LintViolation]:
        schema = extract_schema(project)
        if schema is None:
            return
        optional_classes = _optional_tracer_classes(project)
        for site in _emit_sites(project):
            yield from self._check_site(site, schema, optional_classes)

    def _check_site(self, site: EmitSite,
                    schema: Dict[str, SchemaFamily],
                    optional_classes: Set[str]
                    ) -> Iterator[LintViolation]:
        if site.category is not None:
            fam = schema.get(site.category)
            if fam is None:
                yield self.hit(
                    site.info, site.node, "TRC001",
                    f"trace category {site.category!r} is not declared "
                    f"in the trace schema; downstream consumers will "
                    f"never see these events")
            else:
                yield from self._check_fields(site, fam)
        if site.direct and site.owner is not None:
            yield from self._check_guard(site, optional_classes)

    def _check_fields(self, site: EmitSite, fam: SchemaFamily
                      ) -> Iterator[LintViolation]:
        given = set(site.fields)
        declared = set(fam.fields)
        required = set(fam.required)
        missing = sorted(required - given)
        extra = sorted(given - declared)
        if missing and not site.has_splat:
            yield self.hit(
                site.info, site.node, "TRC002",
                f"trace {site.category!r} emit is missing required "
                f"field(s) {', '.join(missing)}")
        elif extra and not fam.variadic:
            yield self.hit(
                site.info, site.node, "TRC002",
                f"trace {site.category!r} emit passes undeclared "
                f"field(s) {', '.join(extra)}; declared fields are "
                f"{', '.join(sorted(declared))}")

    def _check_guard(self, site: EmitSite,
                     optional_classes: Set[str]
                     ) -> Iterator[LintViolation]:
        owner = site.owner
        if owner is None:
            return
        if owner.startswith("self."):
            cls = site.info.enclosing_class(site.node)
            if cls is None or cls.name not in optional_classes:
                return
        if _is_guarded(site.info, site.node, owner):
            return
        yield self.hit(
            site.info, site.node, "TRC003",
            f"direct {owner}.record call where {owner} may be None "
            f"and no `is not None` guard encloses the call; this "
            f"raises AttributeError exactly when tracing is disabled")
