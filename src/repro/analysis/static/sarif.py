"""SARIF 2.1.0 export of lint findings.

Minimal but structurally valid: one run, one tool driver listing
every rule that fired, one result per finding with a physical
location.  Baselined findings are carried with an ``external``
suppression so viewers show them greyed out instead of hiding that
they exist.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List

from ..lint import LintViolation

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _rel(path: str, root: Path) -> str:
    try:
        return Path(path).resolve().relative_to(
            root.resolve()).as_posix()
    except ValueError:
        return Path(path).as_posix()


def _result(v: LintViolation, root: Path,
            suppressed: bool) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": v.rule,
        "level": "error",
        "message": {"text": v.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": _rel(v.path, root),
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": max(v.line, 1),
                    "startColumn": max(v.col + 1, 1),
                },
            },
            "logicalLocations": [{
                "fullyQualifiedName": v.symbol,
            }] if v.symbol else [],
        }],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def to_sarif(new: Iterable[LintViolation],
             baselined: Iterable[LintViolation],
             root: Path,
             rule_descriptions: Dict[str, str]) -> Dict[str, Any]:
    """Build the SARIF log object for one lint run."""
    new = list(new)
    baselined = list(baselined)
    fired = sorted({v.rule for v in [*new, *baselined]})
    rules: List[Dict[str, Any]] = [
        {"id": rule_id,
         "shortDescription": {
             "text": rule_descriptions.get(rule_id, rule_id)}}
        for rule_id in fired]
    results = ([_result(v, root, suppressed=False) for v in new]
               + [_result(v, root, suppressed=True)
                  for v in baselined])
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": root.resolve().as_uri() + "/"},
            },
            "results": results,
        }],
    }
