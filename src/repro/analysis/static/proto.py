"""PROTO: protocol-flow checks between send sites and dispatch tables.

The paper's synchronous-handler argument only holds if every message
kind that reaches an NI has a handler wired for it — a kind consumed
by firmware (``deliver_to_host=False``) with no ``fw_handlers``
registration raises ``LookupError`` at simulation time, but only on
the first run that happens to send it.  These checks make the wiring
a static property:

* **PROTO001** — a kind is sent firmware-consumed but no module
  registers a firmware handler for it.
* **PROTO002** — a dispatch-table registration (firmware or host
  delivery) exists for a kind that no send site constructs:
  unreachable handler.
* **PROTO003** — a kind declared in a ``FW_KINDS`` table has no
  firmware handler registration.
* **PROTO004** — a ``Message`` is constructed with a declared
  firmware kind but without ``deliver_to_host=False``: it would enter
  the host FIFO where nothing dispatches it.
* **PROTO005** — a host-delivered kind is sent fire-and-forget at
  every site (no ``on_delivered``/``on_packet_delivered``/
  ``await_delivery``) and no delivery handler is registered: nothing
  in the program consumes the delivery.

Send sites are ``Message(...)`` constructions and ``.send`` /
``.send_multicast`` calls with a literal (or module-constant) kind;
dynamic kinds are skipped.  Registrations are ``*.fw_handlers[k] = f``
assignments and ``register_delivery_handler(k, f)`` calls.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..lint import LintViolation
from .project import ModuleInfo, ProjectModel, dotted_name
from .registry import ProjectRule, register_project_rule

__all__ = ["ProtoRule", "extract_protocol_flow"]

#: kw names that mark a send site as consuming its own delivery.
_CONSUMING_KWARGS = frozenset({"on_delivered", "on_packet_delivered",
                               "await_delivery"})


@dataclass
class SendSite:
    """One message-kind construction point."""

    info: ModuleInfo
    node: ast.Call
    kind: str
    fw: Optional[bool]      #: deliver_to_host=False? None = dynamic
    consuming: bool         #: carries a delivery callback / await


@dataclass
class Registration:
    """One dispatch-table entry (firmware or host delivery)."""

    info: ModuleInfo
    node: ast.AST
    kind: str
    table: str              #: "fw" or "delivery"


@dataclass
class ProtocolFlow:
    """Everything PROTO checks: sends, registrations, declarations."""

    sends: List[SendSite]
    registrations: List[Registration]
    #: FW_KINDS declarations: kind -> declaration site.
    declared_fw: Dict[str, Tuple[ModuleInfo, ast.AST]]

    def fw_registered(self) -> Set[str]:
        return {r.kind for r in self.registrations if r.table == "fw"}

    def delivery_registered(self) -> Set[str]:
        return {r.kind for r in self.registrations
                if r.table == "delivery"}

    def sent_kinds(self) -> Set[str]:
        return {s.kind for s in self.sends}


def _kw(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _literal_bool(node: Optional[ast.expr]) -> Optional[bool]:
    if isinstance(node, ast.Constant) and isinstance(node.value, bool):
        return node.value
    return None


def extract_protocol_flow(project: ProjectModel) -> ProtocolFlow:
    """Collect send sites, registrations and FW_KINDS declarations."""
    sends: List[SendSite] = []
    registrations: List[Registration] = []
    declared_fw: Dict[str, Tuple[ModuleInfo, ast.AST]] = {}

    for info in project.modules.values():
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Call):
                _extract_call(info, node, sends, registrations)
            elif isinstance(node, ast.Assign):
                _extract_assign(info, node, registrations, declared_fw)
    return ProtocolFlow(sends=sends, registrations=registrations,
                        declared_fw=declared_fw)


def _extract_call(info: ModuleInfo, node: ast.Call,
                  sends: List[SendSite],
                  registrations: List[Registration]) -> None:
    func = node.func
    callee = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    if callee == "Message":
        kind_node = _kw(node, "kind")
        kind = ("deposit" if kind_node is None
                else info.resolve_str(kind_node))
        if kind is None:
            return
        dth = _kw(node, "deliver_to_host")
        lit = _literal_bool(dth)
        # deliver_to_host defaults to True -> not firmware-consumed;
        # a literal False marks a firmware kind; anything non-literal
        # is dynamic.
        fw: Optional[bool]
        if dth is None:
            fw = False
        elif lit is not None:
            fw = not lit
        else:
            fw = None
        consuming = any(kw.arg in _CONSUMING_KWARGS
                        for kw in node.keywords)
        sends.append(SendSite(info=info, node=node, kind=kind,
                              fw=fw, consuming=consuming))
    elif callee in ("send", "send_multicast") \
            and isinstance(func, ast.Attribute):
        if any(isinstance(a, ast.Call)
               and isinstance(a.func, (ast.Name, ast.Attribute))
               and (a.func.id if isinstance(a.func, ast.Name)
                    else a.func.attr) == "Message"
               for a in node.args):
            # send(Message(...)) wrapper style: the construction is
            # already recorded as its own send site.
            return
        kind_node = _kw(node, "kind")
        kind = ("deposit" if kind_node is None
                else info.resolve_str(kind_node))
        if kind is None:
            return
        consuming = any(kw.arg in _CONSUMING_KWARGS
                        for kw in node.keywords)
        # an explicit deliver_to_host literal pins the path; absent,
        # ``send`` derives it from FW_KINDS membership — resolved
        # against the declarations during checking (fw=None).
        lit = _literal_bool(_kw(node, "deliver_to_host"))
        sends.append(SendSite(info=info, node=node, kind=kind,
                              fw=None if lit is None else not lit,
                              consuming=consuming))
    elif callee == "register_delivery_handler":
        if node.args:
            kind = info.resolve_str(node.args[0])
            if kind is not None:
                registrations.append(Registration(
                    info=info, node=node, kind=kind, table="delivery"))


def _extract_assign(info: ModuleInfo, node: ast.Assign,
                    registrations: List[Registration],
                    declared_fw: Dict[str, Tuple[ModuleInfo, ast.AST]]
                    ) -> None:
    for target in node.targets:
        if isinstance(target, ast.Subscript):
            base = dotted_name(target.value)
            if base is not None and base.split(".")[-1] == "fw_handlers":
                kind = info.resolve_str(target.slice)
                if kind is not None:
                    registrations.append(Registration(
                        info=info, node=node, kind=kind, table="fw"))
    # FW_KINDS declarations (module or class level) come through the
    # constant table; anchor them at this assignment.
    targets = [t for t in node.targets if isinstance(t, ast.Name)]
    if len(targets) == 1 and targets[0].id == "FW_KINDS":
        for kind in info.tuple_constants.get("FW_KINDS", ()):
            declared_fw.setdefault(kind, (info, node))


@register_project_rule
class ProtoRule(ProjectRule):
    """Send sites and dispatch tables must agree, both directions."""

    name = "proto"
    family = "PROTO"
    description = ("every sent message kind has a matching dispatch "
                   "handler, and every handler a sender")

    def check(self, project: ProjectModel) -> Iterator[LintViolation]:
        flow = extract_protocol_flow(project)
        fw_registered = flow.fw_registered()
        delivery_registered = flow.delivery_registered()
        sent = flow.sent_kinds()
        declared = set(flow.declared_fw)

        # Kinds known to be firmware-consumed: declared tables plus
        # explicit deliver_to_host=False constructions.
        fw_kinds = declared | {s.kind for s in flow.sends
                               if s.fw is True}

        # PROTO001: firmware-consumed send with no handler anywhere.
        for site in flow.sends:
            is_fw = site.fw is True or (site.fw is None
                                        and site.kind in fw_kinds)
            if is_fw and site.kind not in fw_registered:
                yield self.hit(
                    site.info, site.node, "PROTO001",
                    f"kind {site.kind!r} is sent firmware-consumed "
                    f"but no module registers fw_handlers[{site.kind!r}]"
                    f" — the receiving NI would raise LookupError")

        # PROTO002: registered handler nothing ever sends to.
        for reg in flow.registrations:
            if reg.kind not in sent:
                table = ("fw_handlers" if reg.table == "fw"
                         else "delivery handler")
                yield self.hit(
                    reg.info, reg.node, "PROTO002",
                    f"{table} registered for kind {reg.kind!r} but no "
                    f"send site constructs that kind: unreachable "
                    f"handler")

        # PROTO003: declared firmware kind with no registration.
        for kind, (info, node) in sorted(flow.declared_fw.items()):
            if kind not in fw_registered:
                yield self.hit(
                    info, node, "PROTO003",
                    f"FW_KINDS declares {kind!r} but no module "
                    f"registers a firmware handler for it")

        # PROTO004: firmware kind constructed on the host-delivery path.
        for site in flow.sends:
            if site.kind in fw_kinds and site.fw is False \
                    and isinstance(site.node.func, (ast.Name,
                                                    ast.Attribute)):
                callee = (site.node.func.attr
                          if isinstance(site.node.func, ast.Attribute)
                          else site.node.func.id)
                if callee == "Message":
                    yield self.hit(
                        site.info, site.node, "PROTO004",
                        f"Message kind {site.kind!r} is a declared "
                        f"firmware kind but deliver_to_host is not "
                        f"False here: it would enter the host FIFO "
                        f"with no delivery handler")

        # PROTO005: host-delivered kind nobody consumes.
        host_kinds: Dict[str, List[SendSite]] = {}
        for site in flow.sends:
            if site.kind in fw_kinds:
                continue
            if site.fw is True:
                continue
            host_kinds.setdefault(site.kind, []).append(site)
        for kind, sites in sorted(host_kinds.items()):
            if kind in delivery_registered:
                continue
            if any(s.consuming for s in sites):
                continue
            site = sites[0]
            yield self.hit(
                site.info, site.node, "PROTO005",
                f"kind {kind!r} is delivered to host memory but no "
                f"send site attaches a delivery callback and no "
                f"delivery handler is registered: the delivery is "
                f"never consumed")
