"""Finding baseline: accepted findings the CI gate does not fail on.

The baseline file (``lint-baseline.json``, committed at the repo
root) records findings that are *intentional* — each with a one-line
justification — keyed by ``(rule, path, symbol)`` so entries survive
line-number drift.  ``repro lint`` fails only on findings NOT in the
baseline; ``--update-baseline`` rewrites the file from the current
findings, preserving justifications for keys that persist and
expiring entries whose finding disappeared.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from ..lint import LintViolation

__all__ = ["Baseline", "BaselineEntry", "finding_key"]

_FORMAT = "repro-lint-baseline/1"


def finding_key(v: LintViolation, root: Path) -> Tuple[str, str, str]:
    """Line-tolerant identity of a finding: rule, repo-relative
    path, innermost enclosing symbol."""
    path = Path(v.path)
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return (v.rule, rel, v.symbol)


@dataclass
class BaselineEntry:
    """One accepted finding key."""

    rule: str
    path: str
    symbol: str
    count: int = 1
    justification: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)


@dataclass
class Baseline:
    """The set of accepted findings."""

    entries: Dict[Tuple[str, str, str], BaselineEntry] = field(
        default_factory=dict)

    # ----------------------------------------------------------------- io

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("format") != _FORMAT:
            raise ValueError(
                f"{path}: unknown baseline format "
                f"{data.get('format')!r} (expected {_FORMAT!r})")
        baseline = cls()
        for raw in data.get("findings", []):
            entry = BaselineEntry(
                rule=raw["rule"], path=raw["path"],
                symbol=raw.get("symbol", ""),
                count=int(raw.get("count", 1)),
                justification=raw.get("justification", ""))
            baseline.entries[entry.key()] = entry
        return baseline

    def dump(self, path: Path) -> None:
        findings = [
            {"rule": e.rule, "path": e.path, "symbol": e.symbol,
             "count": e.count, "justification": e.justification}
            for e in sorted(self.entries.values(),
                            key=lambda e: e.key())]
        payload = {"format": _FORMAT, "findings": findings}
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")

    # -------------------------------------------------------------- logic

    def split(self, violations: List[LintViolation], root: Path
              ) -> Tuple[List[LintViolation], List[LintViolation]]:
        """``(new, baselined)``: findings not covered by the baseline
        and findings it accepts.  A key with count N covers at most N
        findings; extras above the recorded count are new."""
        budget = {key: e.count for key, e in self.entries.items()}
        new: List[LintViolation] = []
        accepted: List[LintViolation] = []
        for v in violations:
            key = finding_key(v, root)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                accepted.append(v)
            else:
                new.append(v)
        return new, accepted

    def updated(self, violations: List[LintViolation],
                root: Path) -> "Baseline":
        """A fresh baseline covering exactly the current findings,
        keeping justifications of surviving keys and expiring stale
        entries."""
        counts: Dict[Tuple[str, str, str], int] = {}
        for v in violations:
            key = finding_key(v, root)
            counts[key] = counts.get(key, 0) + 1
        out = Baseline()
        for key, count in counts.items():
            old = self.entries.get(key)
            out.entries[key] = BaselineEntry(
                rule=key[0], path=key[1], symbol=key[2], count=count,
                justification=old.justification if old else "TODO")
        return out

    def stale_keys(self, violations: List[LintViolation],
                   root: Path) -> List[Tuple[str, str, str]]:
        """Entries whose finding no longer occurs."""
        live = {finding_key(v, root) for v in violations}
        return sorted(k for k in self.entries if k not in live)
