"""Static determinism lint for the simulator's source tree.

The whole repository rests on the simulation being *deterministic*:
same app, same protocol, same seed => byte-identical traces (that is
what the regression tests and the sanitizer compare against).  The
rules here flag the Python constructs that silently break determinism
or leak real time into simulated time:

* ``wall-clock``      — ``time.time()`` & friends in sim code; all time
  must come from the engine clock (``sim.now``).
* ``global-random``   — module-level ``random.*`` calls; randomness must
  go through a seeded ``random.Random`` instance.
* ``unordered-iter``  — iterating a ``set``/``frozenset`` directly; set
  order is salted per interpreter run, so any event ordering derived
  from it is nondeterministic.  Sort first.
* ``float-time-eq``   — comparing simulated times (``.now``) with
  ``==``/``!=``; float time must be compared with inequalities or a
  tolerance.
* ``mutable-default`` — mutable default arguments: state shared across
  calls behind the caller's back, a classic hidden-channel hazard.
* ``global-mutation`` — module-import-time mutation of module-level
  containers; import order becomes load-bearing, which is shared state
  mutated outside any engine process.

Rules are pluggable: subclass :class:`Rule`, decorate with
:func:`register_rule`, and the CLI (``repro lint``) picks it up.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type, Union

__all__ = ["LintViolation", "Rule", "RULES", "register_rule",
           "lint_source", "lint_paths", "default_target"]


@dataclass(frozen=True)
class LintViolation:
    """One rule hit at one source location.

    ``symbol`` names the innermost enclosing function/class (dotted
    qualname, empty at module level).  The baseline keys findings by
    ``(rule, path, symbol)`` so they survive line-number drift.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    symbol: str = ""

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.rule}] {self.message}")

    @property
    def family(self) -> str:
        """The rule family: ``PROTO002 -> PROTO``, local names as-is."""
        return self.rule.rstrip("0123456789")


class Rule:
    """One lint rule: an AST pass yielding violations."""

    name = "abstract"
    description = ""

    def check(self, tree: ast.Module, path: str) -> Iterator[LintViolation]:
        raise NotImplementedError

    def hit(self, node: ast.AST, path: str, message: str) -> LintViolation:
        return LintViolation(path=path,
                             line=getattr(node, "lineno", 0),
                             col=getattr(node, "col_offset", 0),
                             rule=self.name, message=message)


#: name -> rule class; later PRs register their own rules here.
RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default lint set."""
    if cls.name in RULES:
        raise ValueError(f"duplicate lint rule {cls.name!r}")
    RULES[cls.name] = cls
    return cls


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------- rules


@register_rule
class WallClockRule(Rule):
    """Real time must never reach simulation logic."""

    name = "wall-clock"
    description = "use the engine clock (sim.now), not the wall clock"

    BANNED = frozenset({
        "time.time", "time.time_ns", "time.monotonic",
        "time.monotonic_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.process_time",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today",
    })

    def check(self, tree: ast.Module, path: str) -> Iterator[LintViolation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in self.BANNED:
                    yield self.hit(
                        node, path,
                        f"{dotted}() reads the wall clock; simulated "
                        f"code must use the engine clock (sim.now)")


@register_rule
class GlobalRandomRule(Rule):
    """Randomness must come from a seeded ``random.Random``."""

    name = "global-random"
    description = "use a seeded random.Random, not module-level random"

    ALLOWED_ATTRS = frozenset({"Random"})

    def check(self, tree: ast.Module, path: str) -> Iterator[LintViolation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "random"
                        and func.attr not in self.ALLOWED_ATTRS):
                    yield self.hit(
                        node, path,
                        f"random.{func.attr}() uses the shared global "
                        f"RNG; construct a seeded random.Random instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    bad = [a.name for a in node.names
                           if a.name not in self.ALLOWED_ATTRS]
                    if bad:
                        yield self.hit(
                            node, path,
                            f"importing {', '.join(bad)} from random "
                            f"hides the global-RNG dependency; import "
                            f"random.Random and seed it")


@register_rule
class UnorderedIterRule(Rule):
    """Event ordering must not depend on set iteration order."""

    name = "unordered-iter"
    description = "iterate sets via sorted(...), never directly"

    SET_CALLS = frozenset({"set", "frozenset"})

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self.SET_CALLS
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[LintViolation]:
        for node in ast.walk(tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield self.hit(
                        it, path,
                        "iteration order of a set is nondeterministic; "
                        "wrap it in sorted(...) before iterating")


@register_rule
class FloatTimeEqRule(Rule):
    """Simulated (float) times must not be compared with ``==``."""

    name = "float-time-eq"
    description = "compare simulated times with inequalities, not =="

    def _mentions_now(self, node: ast.AST) -> bool:
        return any(isinstance(sub, ast.Attribute) and sub.attr == "now"
                   for sub in ast.walk(node))

    def check(self, tree: ast.Module, path: str) -> Iterator[LintViolation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._mentions_now(o) for o in operands):
                yield self.hit(
                    node, path,
                    "floating-point simulation times compared with "
                    "==/!=; use inequalities or an explicit tolerance")


@register_rule
class MutableDefaultRule(Rule):
    """Default arguments must not be mutable."""

    name = "mutable-default"
    description = "mutable defaults are call-to-call shared state"

    MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray",
                               "defaultdict", "deque", "Counter"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self.MUTABLE_CALLS
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[LintViolation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = [*node.args.defaults,
                        *[d for d in node.args.kw_defaults
                          if d is not None]]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.hit(
                        default, path,
                        f"mutable default argument in {node.name}(); "
                        f"shared across calls — default to None and "
                        f"construct inside")


@register_rule
class GlobalMutationRule(Rule):
    """Shared module state must not be mutated at import time."""

    name = "global-mutation"
    description = ("import-time mutation of module globals makes import "
                   "order load-bearing (shared state outside any engine "
                   "process)")

    MUTATORS = frozenset({"append", "extend", "insert", "add", "update",
                          "setdefault", "pop", "popitem", "remove",
                          "discard", "clear", "appendleft"})

    def _top_level(self, tree: ast.Module) -> Iterator[ast.stmt]:
        for stmt in tree.body:
            if isinstance(stmt, ast.If):
                # e.g. `if TYPE_CHECKING:` / __main__ guards — their
                # bodies still run at import time (except __main__).
                yield from stmt.body
                yield from stmt.orelse
            else:
                yield stmt

    def check(self, tree: ast.Module, path: str) -> Iterator[LintViolation]:
        for stmt in self._top_level(tree):
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                         ast.Call):
                func = stmt.value.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in self.MUTATORS
                        and _dotted(func) is not None):
                    yield self.hit(
                        stmt, path,
                        f"module-level call to {_dotted(func)}() mutates "
                        f"a global at import time; build the value in "
                        f"one expression instead")
            elif isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = (stmt.targets
                           if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        yield self.hit(
                            stmt, path,
                            "module-level subscript assignment mutates "
                            "a global at import time; build the value "
                            "in one expression instead")


# ------------------------------------------------------------------ driver


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[str]] = None
                ) -> List[LintViolation]:
    """Lint one source string; returns violations sorted by location."""
    names = list(rules) if rules is not None else sorted(RULES)
    unknown = [n for n in names if n not in RULES]
    if unknown:
        raise ValueError(f"unknown lint rules: {unknown}")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [LintViolation(path=path, line=err.lineno or 0,
                              col=err.offset or 0, rule="syntax",
                              message=str(err.msg))]
    out: List[LintViolation] = []
    for name in names:
        out.extend(RULES[name]().check(tree, path))
    return sorted(out, key=lambda v: (v.path, v.line, v.col, v.rule))


def iter_py_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    """``*.py`` files under ``paths``; unknown paths are usage errors."""
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.is_file():
            if p.suffix == ".py":
                yield p
        else:
            raise FileNotFoundError(
                f"no such file or directory: {p}")


def lint_paths(paths: Iterable[Union[str, Path]],
               rules: Optional[Sequence[str]] = None
               ) -> List[LintViolation]:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    out: List[LintViolation] = []
    for path in iter_py_files(paths):
        out.extend(lint_source(path.read_text(encoding="utf-8"),
                               path=str(path), rules=rules))
    return out


def default_target() -> Path:
    """The package source tree ``repro lint`` checks by default."""
    return Path(__file__).resolve().parent.parent
