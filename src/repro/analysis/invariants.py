"""Run-time protocol invariant checking (the ``--check`` harness).

While the sanitizer replays a recorded trace offline, this module
asserts predicates *as the simulation runs*, at the protocol's own
commit points:

* **page-state legality** — every page-protection transition must be
  one the HLRC state machine allows, for the reason the protocol gives
  (a fault opens an INVALID page, a write upgrades to WRITE, an
  interval close downgrades WRITE to READ, a write notice invalidates).
* **interval closure** — closing an interval must advance the node's
  own clock component to exactly the interval log's index (release
  points cut execution into contiguous intervals).
* **clock monotonicity** — an acquire's merge must dominate both the
  previous clock and the acquired timestamp.
* **barrier epoch agreement** — every barrier episode's global clock
  must equal the interval log's closed indices and be monotone across
  episodes.
* **time accounting** — at the end of the timed section every rank's
  Figure-3 bucket sum must equal its wall time within
  :data:`~repro.obs.profiler.TIME_TOLERANCE_US` (each blocked
  microsecond lands in exactly one bucket).

:class:`HLRCProtocol` calls the ``on_*`` hooks when a checker is
installed; the runner's ``--check`` flag (and ``repro check``) toggles
installation, so unchecked runs pay nothing.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..obs import TIME_TOLERANCE_US
from ..svm.pages import PageAccess
from ..svm.timestamps import Interval, VectorClock

__all__ = ["InvariantViolation", "InvariantChecker", "LEGAL_TRANSITIONS"]


class InvariantViolation(AssertionError):
    """A protocol invariant did not hold during a checked run."""


#: (why, old-state, new-state) triples the page state machine allows.
LEGAL_TRANSITIONS = frozenset({
    ("fault", PageAccess.INVALID, PageAccess.READ),
    ("fault", PageAccess.INVALID, PageAccess.WRITE),
    ("write", PageAccess.READ, PageAccess.WRITE),
    ("write", PageAccess.INVALID, PageAccess.WRITE),
    ("invalidate", PageAccess.READ, PageAccess.INVALID),
    ("invalidate", PageAccess.WRITE, PageAccess.INVALID),
    ("close", PageAccess.WRITE, PageAccess.READ),
    ("migrate", PageAccess.INVALID, PageAccess.READ),
    ("migrate", PageAccess.READ, PageAccess.READ),
    ("migrate", PageAccess.WRITE, PageAccess.READ),
})


class InvariantChecker:
    """Registers run-time assertable predicates with a protocol.

    With ``strict`` (the default) a violation raises
    :class:`InvariantViolation` at the offending simulation step —
    the traceback points into the protocol action that broke the
    invariant.  With ``strict=False`` violations accumulate in
    :attr:`violations` for later inspection.
    """

    def __init__(self, protocol: Any, strict: bool = True):
        self.protocol = protocol
        self.strict = strict
        self.violations: List[str] = []
        self.checked = 0
        self._last_epoch_clock: Optional[VectorClock] = None

    def install(self) -> "InvariantChecker":
        """Wire the hooks into the protocol and its page tables."""
        self.protocol.invariants = self
        for table in self.protocol.tables:
            table.on_transition = self.on_page_transition
        return self

    def uninstall(self) -> None:
        self.protocol.invariants = None
        for table in self.protocol.tables:
            table.on_transition = None

    def _fail(self, message: str) -> None:
        self.violations.append(message)
        if self.strict:
            raise InvariantViolation(message)

    # --------------------------------------------------------------- hooks

    def on_page_transition(self, node: int, gid: int, old: PageAccess,
                           new: PageAccess, why: str) -> None:
        """Called by a NodePageTable whenever page protection changes."""
        self.checked += 1
        if (why, old, new) not in LEGAL_TRANSITIONS:
            self._fail(
                f"illegal page transition at node {node}: page {gid} "
                f"{old.name} -> {new.name} on {why!r}")

    def on_interval_close(self, node: int, interval: Interval) -> None:
        """Called right after an interval is appended to the log."""
        self.checked += 1
        proto = self.protocol
        logged = proto.interval_log.current_index(node)
        if interval.index != logged:
            self._fail(
                f"interval {interval.index} of node {node} closed but "
                f"the log head is {logged}")
        clock_self = proto.node_clock[node][node]
        if clock_self != interval.index:
            self._fail(
                f"node {node} closed interval {interval.index} but its "
                f"clock component is {clock_self}")
        if not interval.pages:
            self._fail(
                f"node {node} closed empty interval {interval.index}")

    def on_clock_merge(self, node: int, before: Tuple[int, ...],
                       after: VectorClock, want: VectorClock) -> None:
        """Called after an acquire merges ``want`` into a node clock."""
        self.checked += 1
        after_values = after.values
        if len(before) != len(after_values) or any(
                a < b for a, b in zip(after_values, before)):
            self._fail(
                f"node {node} clock regressed from {before} to "
                f"{after_values}")
        if not after.dominates(want):
            self._fail(
                f"node {node} merged to {after_values}, which does not "
                f"dominate the acquired timestamp {want.values}")

    def on_barrier_epoch(self, epoch: int, clock: VectorClock) -> None:
        """Called once per barrier episode with its global clock."""
        self.checked += 1
        proto = self.protocol
        expected = tuple(proto.interval_log.current_index(n)
                         for n in range(len(clock)))
        if clock.values != expected:
            self._fail(
                f"barrier epoch {epoch} clock {clock.values} disagrees "
                f"with the interval log {expected}")
        if self._last_epoch_clock is not None and not clock.dominates(
                self._last_epoch_clock):
            self._fail(
                f"barrier epoch {epoch} clock {clock.values} regressed "
                f"from {self._last_epoch_clock.values}")
        self._last_epoch_clock = clock.copy()

    def on_run_complete(self, rank: int, wall_us: float, buckets,
                        tol: float = TIME_TOLERANCE_US) -> None:
        """Called by the runner once per rank after the timed section."""
        self.checked += 1
        residual = buckets.total - wall_us
        if abs(residual) > tol:
            self._fail(
                f"time accounting broken at rank {rank}: bucket sum "
                f"{buckets.total:.6f} us misses wall {wall_us:.6f} us "
                f"by {residual:.3e} us (every blocked microsecond must "
                f"land in exactly one bucket)")
