"""Dynamic race & coherence sanitizer for protocol traces.

Consumes the event stream of an instrumented run (any protocol variant,
any app) and checks the properties the paper's argument rests on:

* **lost-write-notice** — a page fault whose ``needed`` versions miss a
  write the faulting node's vector clock has already seen: the write
  notice was lost or applied late, so a read could observe a page
  version not ordered after the write that produced it
  (release->acquire chain broken).
* **clock-regression** — a node's vector clock moved backwards in some
  component: merges must be pointwise maxima, so any regression means
  protocol state was corrupted.
* **lock-queue** — the distributed lock queue invariant: grants only
  from the node holding a released token, always to the queue head,
  exactly one grant per acquire (no double grants, no orphaned
  waiters).  Applies to both NI-firmware locks (``nilock.*``) and the
  interrupt-driven Base locks (``svmlock.*``).
* **fetch-race** — a page fetch that accepted a version snapshot not
  satisfying its needed versions (a diff application raced with the
  fetch and the timestamp-check retry loop failed), or claiming a
  version no diff application ever produced.
* **barrier-epoch** — a process left a barrier episode before every
  process had entered it.
* **fault-recovery** — under injected faults (``repro.faults``), every
  dropped packet's message must eventually be acked: a drop the
  retransmit layer never repaired means a write notice, lock grant or
  diff silently vanished.
* **time-accounting** — on traces carrying end-of-run ``prof.rank``
  records (emitted when a run is both traced and profiled), each
  rank's Figure-3 bucket sum must equal its timed-section wall time.

Every finding carries the offending trace slice for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from ..sim.trace import TraceEvent
from .hb import HBGraph

__all__ = ["Finding", "SanitizerCheck", "Sanitizer", "SANITIZER_CHECKS",
           "register_check", "sanitize_run"]


@dataclass(frozen=True)
class Finding:
    """One detected protocol violation, with its evidence."""

    check: str
    message: str
    events: Tuple[TraceEvent, ...] = ()

    def __str__(self) -> str:
        lines = [f"[{self.check}] {self.message}"]
        lines.extend(f"    {e}" for e in self.events)
        return "\n".join(lines)


class SanitizerCheck:
    """Base class: one pass over the trace yielding findings."""

    name = "abstract"
    description = ""

    def run(self, events: Sequence[TraceEvent],
            hb: HBGraph) -> Iterator[Finding]:
        raise NotImplementedError


#: name -> check class; later PRs register their own passes here.
SANITIZER_CHECKS: Dict[str, Type[SanitizerCheck]] = {}


def register_check(cls: Type[SanitizerCheck]) -> Type[SanitizerCheck]:
    """Class decorator adding a check to the default sanitizer set."""
    if cls.name in SANITIZER_CHECKS:
        raise ValueError(f"duplicate sanitizer check {cls.name!r}")
    SANITIZER_CHECKS[cls.name] = cls
    return cls


# --------------------------------------------------------------- checks


@register_check
class WriteNoticeCheck(SanitizerCheck):
    """Reads must be ordered after the writes that produced them."""

    name = "lost-write-notice"
    description = ("a fault's needed versions must cover every write "
                   "its vector clock has seen for that page")

    def run(self, events: Sequence[TraceEvent],
            hb: HBGraph) -> Iterator[Finding]:
        for ev in events:
            if ev.category != "fault.fetch":
                continue
            node = ev.fields["node"]
            gid = ev.fields["gid"]
            needed = dict(ev.fields.get("needed", ()))
            clock = tuple(ev.fields.get("clock", ()))
            for info in hb.writes_to(gid):
                if info.node == node or info.event.seq >= ev.seq:
                    continue
                seen = (info.node < len(clock)
                        and clock[info.node] >= info.index)
                if seen and needed.get(info.node, 0) < info.index:
                    yield Finding(
                        self.name,
                        f"node {node} faulted page {gid} needing versions "
                        f"{needed}, but its clock {clock} already ordered "
                        f"it after interval {info.index} of node "
                        f"{info.node} (which wrote the page): the write "
                        f"notice was lost or applied late",
                        (info.event, ev))


@register_check
class ClockMonotonicityCheck(SanitizerCheck):
    """Vector clocks never regress and merges dominate their input."""

    name = "clock-regression"
    description = "per-node vector clocks must be pointwise non-decreasing"

    def run(self, events: Sequence[TraceEvent],
            hb: HBGraph) -> Iterator[Finding]:
        last: Dict[int, Tuple[Tuple[int, ...], TraceEvent]] = {}
        for ev in events:
            if ev.category not in ("interval.close", "clock.advance"):
                continue
            clock = tuple(ev.fields.get("clock", ()))
            if not clock:
                continue
            node = ev.fields["node"]
            prev = last.get(node)
            if prev is not None:
                prev_clock, prev_ev = prev
                if len(prev_clock) != len(clock) or any(
                        a < b for a, b in zip(clock, prev_clock)):
                    yield Finding(
                        self.name,
                        f"node {node} clock regressed from {prev_clock} "
                        f"to {clock} (non-monotone merge)",
                        (prev_ev, ev))
            if ev.category == "clock.advance":
                want = tuple(ev.fields.get("want", ()))
                if want and (len(want) != len(clock) or any(
                        c < w for c, w in zip(clock, want))):
                    yield Finding(
                        self.name,
                        f"node {node} merged to {clock}, which does not "
                        f"dominate the acquired timestamp {want}",
                        (ev,))
            last[node] = (clock, ev)


@register_check
class LockQueueCheck(SanitizerCheck):
    """The distributed lock-queue invariant, NI and interrupt flavours."""

    name = "lock-queue"
    description = ("grants come only from the token holder, go to the "
                   "queue head, and match acquires one-to-one")

    prefixes = ("nilock", "svmlock")

    def run(self, events: Sequence[TraceEvent],
            hb: HBGraph) -> Iterator[Finding]:
        for prefix in self.prefixes:
            yield from self._check_prefix(prefix, events)

    def _check_prefix(self, prefix: str,
                      events: Sequence[TraceEvent]) -> Iterator[Finding]:
        #: lock -> ("at", node) or ("flight", dst); unknown until the
        #: first grant (the token starts at the lock's home).
        location: Dict[int, Tuple[str, int]] = {}
        acquires: Dict[Tuple[int, int], List[TraceEvent]] = {}
        grants: Dict[Tuple[int, int], int] = {}
        for ev in events:
            if not ev.category.startswith(prefix + "."):
                continue
            op = ev.category.split(".", 1)[1]
            lock = ev.fields.get("lock")
            node = ev.fields.get("node")
            if op == "acquire":
                acquires.setdefault((node, lock), []).append(ev)
            elif op == "grant":
                requester = ev.fields["requester"]
                queue = tuple(ev.fields.get("queue", ()))
                if ev.fields.get("present") is False:
                    yield Finding(
                        self.name,
                        f"lock {lock}: node {node} granted without "
                        f"holding the token (double grant)", (ev,))
                if ev.fields.get("held") is True:
                    yield Finding(
                        self.name,
                        f"lock {lock}: node {node} granted while the "
                        f"lock was still held", (ev,))
                if queue and requester != queue[0]:
                    yield Finding(
                        self.name,
                        f"lock {lock}: grant to node {requester} bypassed "
                        f"queue head {queue[0]} (queue {queue})", (ev,))
                loc = location.get(lock)
                if loc is not None and loc != ("at", node):
                    yield Finding(
                        self.name,
                        f"lock {lock}: node {node} granted but the token "
                        f"was {loc[0]} {loc[1]} (double grant)", (ev,))
                location[lock] = (("at", node) if requester == node
                                  else ("flight", requester))
            elif op == "granted":
                loc = location.get(lock)
                if loc is not None and loc not in (("at", node),
                                                   ("flight", node)):
                    yield Finding(
                        self.name,
                        f"lock {lock}: grant arrived at node {node} but "
                        f"the token was {loc[0]} {loc[1]}", (ev,))
                location[lock] = ("at", node)
                grants[(node, lock)] = grants.get((node, lock), 0) + 1
        for key, evs in sorted(acquires.items()):
            node, lock = key
            got = grants.get(key, 0)
            if got < len(evs):
                yield Finding(
                    self.name,
                    f"lock {lock}: node {node} posted {len(evs)} "
                    f"acquire(s) but received {got} grant(s): orphaned "
                    f"waiter", tuple(evs[got:]))
        for key in sorted(set(grants) - set(acquires)):
            node, lock = key
            yield Finding(
                self.name,
                f"lock {lock}: node {node} received {grants[key]} "
                f"grant(s) without any acquire", ())


@register_check
class FetchRaceCheck(SanitizerCheck):
    """Fetches must return versions that exist and satisfy the reader."""

    name = "fetch-race"
    description = ("an accepted page fetch must satisfy the needed "
                   "versions and only claim diffs actually applied")

    def run(self, events: Sequence[TraceEvent],
            hb: HBGraph) -> Iterator[Finding]:
        applied: Dict[Tuple[int, int], Tuple[int, TraceEvent]] = {}
        for ev in events:
            if ev.category == "home.apply":
                gid = ev.fields["gid"]
                writer = ev.fields["writer"]
                index = ev.fields["index"]
                prev = applied.get((gid, writer))
                if prev is None or index > prev[0]:
                    applied[(gid, writer)] = (index, ev)
            elif ev.category == "fetch.ok":
                gid = ev.fields["gid"]
                node = ev.fields["node"]
                snapshot = dict(ev.fields.get("snapshot", ()))
                needed = dict(ev.fields.get("needed", ()))
                for writer, want in sorted(needed.items()):
                    if snapshot.get(writer, 0) < want:
                        yield Finding(
                            self.name,
                            f"node {node} accepted page {gid} at versions "
                            f"{snapshot} while needing {needed}: a diff "
                            f"application raced with the fetch",
                            (ev,))
                        break
                for writer, version in sorted(snapshot.items()):
                    have = applied.get((gid, writer))
                    if version > 0 and (have is None or version > have[0]):
                        yield Finding(
                            self.name,
                            f"page {gid} fetch by node {node} claims "
                            f"version {version} of writer {writer}, but "
                            f"no such diff was applied at the home",
                            (ev,) if have is None else (have[1], ev))


@register_check
class BarrierEpochCheck(SanitizerCheck):
    """No process leaves a barrier before every process entered it."""

    name = "barrier-epoch"
    description = "barrier exits must follow all same-epoch entries"

    def run(self, events: Sequence[TraceEvent],
            hb: HBGraph) -> Iterator[Finding]:
        enters: Dict[int, List[TraceEvent]] = {}
        exits: Dict[int, List[TraceEvent]] = {}
        for ev in events:
            if ev.category == "barrier.enter":
                enters.setdefault(ev.fields.get("epoch", 0), []).append(ev)
            elif ev.category == "barrier.exit":
                exits.setdefault(ev.fields.get("epoch", 0), []).append(ev)
        for epoch, exit_evs in sorted(exits.items()):
            enter_evs = enters.get(epoch, [])
            if not enter_evs:
                continue
            last_enter = max(enter_evs, key=lambda e: e.seq)
            for ev in exit_evs:
                if ev.seq < last_enter.seq:
                    yield Finding(
                        self.name,
                        f"barrier epoch {epoch}: rank "
                        f"{ev.fields.get('rank')} exited before rank "
                        f"{last_enter.fields.get('rank')} entered",
                        (ev, last_enter))


@register_check
class FaultRecoveryCheck(SanitizerCheck):
    """Injected packet loss must always be repaired by the transport."""

    name = "fault-recovery"
    description = ("every dropped packet's message must eventually be "
                   "acked by the drop-tolerant transport")

    def run(self, events: Sequence[TraceEvent],
            hb: HBGraph) -> Iterator[Finding]:
        #: (msg_id, destination) pairs the sender saw acked.
        acked = set()
        for ev in events:
            if ev.category == "retx.ack":
                acked.add((ev.fields["msg"], ev.fields["dst"]))
        for ev in events:
            if ev.category != "fault.drop":
                continue
            if ev.fields.get("kind") == "retx_ack":
                # A lost ack is repaired by the sender's retransmit and
                # the receiver's re-ack of the original message.
                need = (ev.fields["acks_msg"], ev.fields["acker"])
                what = (f"ack for message {need[0]} from node "
                        f"{need[1]}")
            else:
                need = (ev.fields["msg"], ev.fields["dst"])
                what = (f"{ev.fields.get('kind')} message {need[0]} "
                        f"to node {need[1]}")
            if need not in acked:
                yield Finding(
                    self.name,
                    f"dropped {what} was never acked: the message "
                    f"(write notice, lock grant, diff...) was lost "
                    f"despite the retransmit layer",
                    (ev,))


@register_check
class TimeAccountingCheck(SanitizerCheck):
    """Per rank, the Figure-3 bucket sum must equal the timed wall."""

    name = "time-accounting"
    description = ("per-rank bucket sums must equal timed-section wall "
                   "time (prof.rank records)")

    def run(self, events: Sequence[TraceEvent],
            hb: HBGraph) -> Iterator[Finding]:
        # Imported here to keep repro.obs optional for trace replay.
        from ..obs import TIME_TOLERANCE_US
        for ev in events:
            if ev.category != "prof.rank":
                continue
            residual = ev.fields.get("residual_us", 0.0)
            if abs(residual) > TIME_TOLERANCE_US:
                yield Finding(
                    self.name,
                    f"rank {ev.fields.get('rank')}: bucket sum "
                    f"{ev.fields.get('bucket_us')} us misses wall "
                    f"{ev.fields.get('wall_us')} us by {residual:.3e} us",
                    (ev,))


# ------------------------------------------------------------- sanitizer


class Sanitizer:
    """Run all (or selected) checks over one trace."""

    def __init__(self, checks: Optional[Sequence[str]] = None):
        names = list(checks) if checks is not None \
            else sorted(SANITIZER_CHECKS)
        unknown = [n for n in names if n not in SANITIZER_CHECKS]
        if unknown:
            raise ValueError(f"unknown sanitizer checks: {unknown}")
        self.checks: List[SanitizerCheck] = [
            SANITIZER_CHECKS[n]() for n in names]

    def run(self, events: Sequence[TraceEvent]) -> List[Finding]:
        events = list(events)
        hb = HBGraph(events)
        findings: List[Finding] = []
        for check in self.checks:
            findings.extend(check.run(events, hb))
        return findings


def sanitize_run(app: object, features: object, config: object = None,
                 check_invariants: bool = True
                 ) -> Tuple[object, List[Finding]]:
    """Run ``app`` under ``features`` with full tracing and sanitize.

    Returns ``(RunResult, findings)``.  Also installs the runtime
    invariant checker unless ``check_invariants`` is False.
    """
    # Imported lazily: repro.runtime imports repro.analysis for --check.
    from ..runtime import run_svm
    from ..sim import Tracer
    tracer = Tracer(capacity=None)
    result = run_svm(app, features, config=config, tracer=tracer,
                     check=check_invariants)
    return result, Sanitizer().run(tracer.events)
