"""Critical-path extraction from causal span traces.

Operates offline on the ``span.*`` records a spanned run leaves in its
trace (:mod:`repro.sim.spans`).  The extractor walks *backwards* from
the end of the last-finishing rank's ``run`` span to the start of the
timed section, alternating two moves:

* **local segment** — within one track (a serial execution lane),
  everything between the latest *resume point* before the cursor and
  the cursor itself executed on that lane; its time is attributed to
  Figure-3 buckets by the innermost span covering each instant.
* **flow edge** — a resume point names the flow that made the lane
  runnable (a ``span.wake``, or a ``span.begin`` whose ``link`` names
  the dispatching flow).  The walk jumps to the flow's source point on
  the sending track; the edge's width (send to delivery) is wire and
  queueing time, charged to the flow's bucket.

Both moves strictly decrease the ``(t, seq)`` cursor, so the walk
terminates; because each segment and edge spans exactly the gap between
consecutive cursors, the step durations telescope: their sum equals the
time from the terminal rank's ``run`` begin to the final ``run`` end
*exactly*.  The remaining gap — ranks leave the initialization barrier
at slightly different instants, and the chain bottoms out at one of
them — is reported as ``start_skew_us`` and charged to a synthetic
``skew`` bucket, so ``total_us`` must reconcile with the wall time
(last end minus first begin) to within ``TIME_TOLERANCE_US``.  That
reconciliation is the extractor's self-check: the ``critical-path``
sanitizer pass and ``repro critpath`` both fail on any residual.

Caveat: host-handler tracks (``h<node>``) are shared by interleaved
activations, so "latest resume point" can occasionally attribute a
segment to a concurrent activation's waker.  The telescoping identity
is unaffected — only bucket attribution blurs, never the total.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..sim.trace import TraceEvent
from .hb import HBGraph
from .sanitizer import Finding, SanitizerCheck, register_check

__all__ = ["CriticalPath", "PathStep", "extract_critical_path",
           "render_path", "render_ladder_diff", "bucket_shares",
           "CRITPATH_SCHEMA"]

#: Figure-3 bucket display order (extras appear after, alphabetically).
BUCKET_ORDER = ["compute", "data", "lock", "acqrel", "barrier"]

#: critpath JSON schema version (bump on breaking change).
CRITPATH_SCHEMA = 1


@dataclass
class PathStep:
    """One hop of the critical path (in start-to-end order)."""

    kind: str                 #: "seg" (on-track execution) or "edge"
    track: str                #: executing track / flow source track
    t0: float
    t1: float
    #: bucket -> microseconds for this step (segments may split across
    #: buckets; edges charge everything to the flow's bucket).
    buckets: Dict[str, float] = field(default_factory=dict)
    #: flow kind for edges ("page_req", "lock_grant", ...), span name
    #: of the innermost covering span for segments (best effort).
    label: str = ""
    #: edge destination track ("" for segments).
    to_track: str = ""

    @property
    def dur_us(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        return {"kind": self.kind, "track": self.track,
                "t0": self.t0, "t1": self.t1, "label": self.label,
                "to_track": self.to_track, "buckets": dict(self.buckets)}

    @classmethod
    def from_dict(cls, data: dict) -> "PathStep":
        """Inverse of :meth:`to_dict` (used by the run-cache codec)."""
        return cls(kind=data["kind"], track=data["track"],
                   t0=data["t0"], t1=data["t1"],
                   buckets=dict(data.get("buckets", {})),
                   label=data.get("label", ""),
                   to_track=data.get("to_track", ""))


@dataclass
class CriticalPath:
    """The extracted longest causal chain of one spanned run."""

    steps: List[PathStep]          #: start-to-end order
    total_us: float                #: path length incl. start skew
    wall_us: float                 #: last run end - first run begin
    start_skew_us: float           #: terminal rank's begin - first begin
    terminal_track: str            #: track whose run begin ends the walk
    complete: bool                 #: walk reached a run begin
    buckets: Dict[str, float]      #: bucket -> us over the whole path

    @property
    def residual_us(self) -> float:
        return self.total_us - self.wall_us

    def ok(self, tolerance_us: float) -> bool:
        return self.complete and abs(self.residual_us) <= tolerance_us

    def to_dict(self) -> dict:
        return {"total_us": self.total_us, "wall_us": self.wall_us,
                "start_skew_us": self.start_skew_us,
                "residual_us": self.residual_us,
                "terminal_track": self.terminal_track,
                "complete": self.complete,
                "buckets": dict(self.buckets),
                "steps": [s.to_dict() for s in self.steps]}

    @classmethod
    def from_dict(cls, data: dict) -> "CriticalPath":
        """Inverse of :meth:`to_dict` (used by the run-cache codec);
        ``residual_us`` is derived, so it is not read back."""
        return cls(steps=[PathStep.from_dict(s)
                          for s in data.get("steps", [])],
                   total_us=data["total_us"],
                   wall_us=data["wall_us"],
                   start_skew_us=data["start_skew_us"],
                   terminal_track=data["terminal_track"],
                   complete=data["complete"],
                   buckets=dict(data.get("buckets", {})))


# -------------------------------------------------------------- parsing


class _Trace:
    """Span records indexed for the backward walk."""

    def __init__(self, events: Sequence[TraceEvent]):
        #: fid -> (key, t, track, kind, bucket)
        self.flows: Dict[int, Tuple[Tuple[float, int], float, str,
                                    str, str]] = {}
        #: track -> sorted [(key, t, fid)] resume points (wakes and
        #: linked begins).
        self.resumes: Dict[str, List[Tuple[Tuple[float, int],
                                           float, int]]] = {}
        #: track -> [(key, +1/-1, sid, bucket, name)] coverage events.
        cover: Dict[str, List[Tuple[Tuple[float, int], int, int,
                                    str, str]]] = {}
        #: run spans: track -> (begin_key, begin_t); and ends.
        self.run_begin: Dict[str, Tuple[Tuple[float, int], float]] = {}
        run_end: Dict[str, Tuple[Tuple[float, int], float]] = {}
        sid_info: Dict[int, Tuple[str, str, str]] = {}  # track,bucket,name
        for e in events:
            if e.category == "span.begin":
                f = e.fields
                key = (e.t, e.seq)
                sid, track = f["sid"], f["track"]
                bucket, name = f.get("bucket", "other"), f.get("name", "")
                sid_info[sid] = (track, bucket, name)
                cover.setdefault(track, []).append(
                    (key, 1, sid, bucket, name))
                link = f.get("link")
                if link is not None:
                    self.resumes.setdefault(track, []).append(
                        (key, e.t, link))
                if name == "run":
                    self.run_begin[track] = (key, e.t)
            elif e.category == "span.end":
                f = e.fields
                sid = f["sid"]
                info = sid_info.get(sid)
                if info is None:
                    continue
                track, bucket, name = info
                key = (e.t, e.seq)
                cover.setdefault(track, []).append(
                    (key, -1, sid, bucket, name))
                if name == "run":
                    run_end[track] = (key, e.t)
            elif e.category == "span.flow":
                f = e.fields
                self.flows[f["fid"]] = ((e.t, e.seq), e.t, f["track"],
                                        f.get("kind", "flow"),
                                        f.get("bucket", "other"))
            elif e.category == "span.wake":
                f = e.fields
                self.resumes.setdefault(f["track"], []).append(
                    ((e.t, e.seq), e.t, f["fid"]))
        for lst in self.resumes.values():
            lst.sort(key=lambda r: r[0])
        self.resume_keys = {tr: [r[0] for r in lst]
                            for tr, lst in self.resumes.items()}
        #: run spans that both began and ended, as (end_key, end_t, track)
        self.runs = [(k, t, tr) for tr, (k, t) in run_end.items()
                     if tr in self.run_begin]
        #: track -> [(k0, k1, bucket, name)] innermost-span coverage.
        self.cover = {tr: self._pieces(evs)
                      for tr, evs in cover.items()}
        self.cover_keys = {tr: [p[0] for p in pieces]
                           for tr, pieces in self.cover.items()}

    @staticmethod
    def _pieces(evs):
        """Sweep begin/end events into innermost-span coverage pieces."""
        evs = sorted(evs, key=lambda e: e[0])
        open_spans: Dict[int, Tuple[Tuple[float, int], str, str]] = {}
        pieces = []
        prev_key = None
        for key, delta, sid, bucket, name in evs:
            if prev_key is not None and open_spans and prev_key < key:
                _, b, n = max(open_spans.values())
                pieces.append((prev_key, key, b, n))
            if delta > 0:
                open_spans[sid] = (key, bucket, name)
            else:
                open_spans.pop(sid, None)
            prev_key = key
        return pieces

    def latest_resume(self, track: str, key):
        """Latest resume point on ``track`` strictly before ``key``."""
        keys = self.resume_keys.get(track)
        if not keys:
            return None
        i = bisect.bisect_left(keys, key)
        return self.resumes[track][i - 1] if i else None

    def attribute(self, track: str, k0, k1) -> Tuple[Dict[str, float], str]:
        """Bucket attribution of [k0, k1) on ``track`` by innermost
        span coverage; uncovered time goes to ``other``.  Also returns
        the name of the longest covering span (for display)."""
        pieces = self.cover.get(track, [])
        keys = self.cover_keys.get(track, [])
        out: Dict[str, float] = {}
        longest, label = 0.0, ""
        i = max(bisect.bisect_right(keys, k0) - 1, 0)
        covered = 0.0
        for p0, p1, bucket, name in pieces[i:]:
            if p0 >= k1:
                break
            lo = max(p0[0], k0[0])
            hi = min(p1[0], k1[0])
            if hi <= lo:
                continue
            out[bucket] = out.get(bucket, 0.0) + (hi - lo)
            covered += hi - lo
            if hi - lo > longest:
                longest, label = hi - lo, name
        gap = (k1[0] - k0[0]) - covered
        if gap > 0.0:
            out["other"] = out.get("other", 0.0) + gap
        return out, label


# ------------------------------------------------------------ extraction


def extract_critical_path(events: Sequence[TraceEvent]) -> CriticalPath:
    """Extract the critical path from a spanned run's trace events.

    Raises :class:`ValueError` when the trace carries no completed
    ``run`` spans (the run was not executed with ``spans=True``).
    """
    tr = _Trace(events)
    if not tr.runs:
        raise ValueError(
            "no completed 'run' spans in trace: record the run with "
            "spans=True (repro.runtime.run_svm) to extract a critical "
            "path")
    start_t = min(t for _, t in tr.run_begin.values())
    end_key, end_t, track = max(tr.runs)
    cursor_key, cursor_t = end_key, end_t

    steps: List[PathStep] = []
    complete = False
    terminal_track = track
    terminal_t = cursor_t
    # Each iteration strictly decreases cursor_key; the event list is
    # finite, so this bound is never hit on a well-formed trace.
    for _ in range(len(events) + 1):
        floor = tr.run_begin.get(track)
        rp = tr.latest_resume(track, cursor_key)
        if floor is not None and (rp is None or rp[0] <= floor[0]):
            buckets, label = tr.attribute(track, floor[0], cursor_key)
            steps.append(PathStep("seg", track, floor[1], cursor_t,
                                  buckets, label))
            complete = True
            terminal_track, terminal_t = track, floor[1]
            break
        if rp is None:
            terminal_track, terminal_t = track, cursor_t
            break
        rkey, rt, fid = rp
        buckets, label = tr.attribute(track, rkey, cursor_key)
        steps.append(PathStep("seg", track, rt, cursor_t, buckets, label))
        flow = tr.flows.get(fid)
        if flow is None:
            terminal_track, terminal_t = track, rt
            break
        fkey, ft, ftrack, fkind, fbucket = flow
        steps.append(PathStep("edge", ftrack, ft, rt,
                              {fbucket: rt - ft}, fkind, to_track=track))
        track, cursor_key, cursor_t = ftrack, fkey, ft

    steps.reverse()
    skew = terminal_t - start_t if complete else 0.0
    totals: Dict[str, float] = {}
    for s in steps:
        for b, us in s.buckets.items():
            totals[b] = totals.get(b, 0.0) + us
    if skew != 0.0:
        totals["skew"] = totals.get("skew", 0.0) + skew
    total = math.fsum(s.dur_us for s in steps) + skew
    return CriticalPath(steps=steps, total_us=total,
                        wall_us=end_t - start_t, start_skew_us=skew,
                        terminal_track=terminal_track,
                        complete=complete, buckets=totals)


def bucket_shares(path: CriticalPath) -> Dict[str, float]:
    """Bucket -> fraction of the path total (0 when the path is empty)."""
    if path.total_us <= 0.0:
        return {b: 0.0 for b in path.buckets}
    return {b: us / path.total_us for b, us in path.buckets.items()}


# ------------------------------------------------------------- rendering


def _bucket_names(paths) -> List[str]:
    seen = set()
    for p in paths:
        seen.update(p.buckets)
    extras = sorted(seen - set(BUCKET_ORDER))
    return [b for b in BUCKET_ORDER if b in seen] + extras


def render_path(path: CriticalPath, name: str = "",
                max_steps: int = 30) -> str:
    """ASCII rendering: the chain (longest steps kept, short runs
    elided) followed by the per-bucket summary."""
    title = f"critical path{f' [{name}]' if name else ''}"
    lines = [title, "=" * len(title)]
    keep = set()
    if len(path.steps) > max_steps:
        by_dur = sorted(range(len(path.steps)),
                        key=lambda i: -path.steps[i].dur_us)
        keep = set(by_dur[:max_steps])
    elided = 0
    elided_us = 0.0
    for i, s in enumerate(path.steps):
        if keep and i not in keep:
            elided += 1
            elided_us += s.dur_us
            continue
        if elided:
            lines.append(f"    ... {elided} steps ({elided_us:.1f} us) ...")
            elided, elided_us = 0, 0.0
        if s.kind == "seg":
            lines.append(f"  [{s.dur_us:10.1f} us] {s.track:<5} "
                         f"{s.label or 'run'}")
        else:
            lines.append(f"  [{s.dur_us:10.1f} us] {s.track:>5} "
                         f"--{s.label}--> {s.to_track}")
    if elided:
        lines.append(f"    ... {elided} steps ({elided_us:.1f} us) ...")
    lines.append("")
    lines.append(f"  path total  {path.total_us:12.1f} us "
                 f"({len(path.steps)} steps, start skew "
                 f"{path.start_skew_us:.1f} us at {path.terminal_track})")
    lines.append(f"  wall        {path.wall_us:12.1f} us "
                 f"(residual {path.residual_us:+.3e} us)")
    for b in _bucket_names([path]):
        us = path.buckets.get(b, 0.0)
        share = us / path.total_us if path.total_us > 0 else 0.0
        lines.append(f"    {b:<10} {us:12.1f} us  {share:6.1%}")
    return "\n".join(lines)


def render_ladder_diff(paths: Dict[str, CriticalPath]) -> str:
    """Side-by-side bucket table across protocol variants, with the
    change in path total relative to the first (Base) column."""
    names = list(paths)
    buckets = _bucket_names(list(paths.values()))
    w = max(10, *(len(n) for n in names)) + 2
    head = f"{'bucket':<12}" + "".join(f"{n:>{w}}" for n in names)
    lines = ["critical-path ladder (us)", head, "-" * len(head)]
    for b in buckets:
        row = f"{b:<12}"
        for n in names:
            row += f"{paths[n].buckets.get(b, 0.0):>{w}.1f}"
        lines.append(row)
    row = f"{'total':<12}"
    for n in names:
        row += f"{paths[n].total_us:>{w}.1f}"
    lines.append(row)
    base = paths[names[0]].total_us
    row = f"{'vs ' + names[0]:<12}"
    for n in names:
        delta = (paths[n].total_us / base - 1.0) if base > 0 else 0.0
        row += f"{delta:>{w}.1%}"
    lines.append(row)
    return "\n".join(lines)


# ------------------------------------------------------- sanitizer check


@register_check
class CriticalPathCheck(SanitizerCheck):
    """On spanned traces, the extracted path must reconcile with wall."""

    name = "critical-path"
    description = ("the critical path extracted from span records must "
                   "equal the timed-section wall time")

    def run(self, events: Sequence[TraceEvent],
            hb: HBGraph) -> Iterator[Finding]:
        if not any(e.category == "span.begin"
                   and e.fields.get("name") == "run" for e in events):
            return  # not a spanned run: nothing to reconcile
        # Imported here to keep repro.obs optional for trace replay.
        from ..obs import TIME_TOLERANCE_US
        try:
            path = extract_critical_path(events)
        except ValueError:
            return  # run spans never completed (truncated trace)
        if not path.complete:
            yield Finding(
                self.name,
                f"critical-path walk ended at {path.terminal_track} "
                f"without reaching a run begin: a flow edge or wake "
                f"record is missing from the span stream")
        elif abs(path.residual_us) > TIME_TOLERANCE_US:
            yield Finding(
                self.name,
                f"critical path totals {path.total_us} us but the "
                f"timed section walls {path.wall_us} us (residual "
                f"{path.residual_us:+.3e} us): span records lost or "
                f"mis-linked")
