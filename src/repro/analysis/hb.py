"""Happens-before reconstruction from protocol traces.

The protocol's vector clocks *are* its happens-before relation: an
interval ``(writer, index)`` happened-before a point of node ``n``'s
execution iff ``n``'s vector clock at that point has
``clock[writer] >= index`` (Lamport/LRC causality).  The instrumented
protocol snapshots clocks into the trace at every place they change
(``interval.close``, ``clock.advance``), so the graph can be rebuilt
offline from any :class:`~repro.sim.trace.Tracer` event stream —
ThreadSanitizer-style, but for SVM protocol actions instead of loads
and stores.

The sanitizer (:mod:`repro.analysis.sanitizer`) asks two questions of
this module:

* which closed intervals wrote a given page (``writes_to``), and
* was interval ``(w, i)`` ordered before trace point ``seq`` of node
  ``n`` (``happens_before``).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.trace import TraceEvent

__all__ = ["ClockHistory", "HBGraph", "IntervalInfo"]


class IntervalInfo:
    """One closed interval as seen in the trace."""

    __slots__ = ("node", "index", "pages", "event")

    def __init__(self, node: int, index: int,
                 pages: Tuple[int, ...], event: TraceEvent):
        self.node = node
        self.index = index
        self.pages = pages
        self.event = event

    def __repr__(self) -> str:
        return (f"IntervalInfo(node={self.node}, index={self.index}, "
                f"pages={self.pages})")


class ClockHistory:
    """Per-node time series of vector-clock snapshots, keyed by event
    sequence number (the tracer's total order)."""

    def __init__(self) -> None:
        #: node -> parallel lists of (seq, clock-tuple), seq ascending.
        self._seqs: Dict[int, List[int]] = {}
        self._clocks: Dict[int, List[Tuple[int, ...]]] = {}

    def add(self, node: int, seq: int, clock: Tuple[int, ...]) -> None:
        self._seqs.setdefault(node, []).append(seq)
        self._clocks.setdefault(node, []).append(tuple(clock))

    def nodes(self) -> Iterable[int]:
        return self._seqs.keys()

    def snapshots(self, node: int) -> List[Tuple[int, Tuple[int, ...]]]:
        return list(zip(self._seqs.get(node, []),
                        self._clocks.get(node, [])))

    def clock_at(self, node: int, seq: int) -> Optional[Tuple[int, ...]]:
        """Latest recorded clock of ``node`` at or before trace ``seq``."""
        seqs = self._seqs.get(node)
        if not seqs:
            return None
        i = bisect.bisect_right(seqs, seq)
        if i == 0:
            return None
        return self._clocks[node][i - 1]


class HBGraph:
    """The happens-before structure of one traced run."""

    def __init__(self, events: Sequence[TraceEvent]):
        self.events = list(events)
        self.clocks = ClockHistory()
        #: (node, index) -> IntervalInfo
        self.intervals: Dict[Tuple[int, int], IntervalInfo] = {}
        #: page gid -> [IntervalInfo] in trace order
        self._writes: Dict[int, List[IntervalInfo]] = {}
        for ev in self.events:
            if ev.category == "interval.close":
                node = ev.fields["node"]
                index = ev.fields["index"]
                pages = tuple(ev.fields.get("written", ()))
                info = IntervalInfo(node, index, pages, ev)
                self.intervals[(node, index)] = info
                for gid in pages:
                    self._writes.setdefault(gid, []).append(info)
                clock = ev.fields.get("clock")
                if clock is not None:
                    self.clocks.add(node, ev.seq, tuple(clock))
            elif ev.category == "clock.advance":
                self.clocks.add(ev.fields["node"], ev.seq,
                                tuple(ev.fields["clock"]))

    # ------------------------------------------------------------- queries

    def writes_to(self, gid: int) -> List[IntervalInfo]:
        """Closed intervals that dirtied page ``gid``, in trace order."""
        return self._writes.get(gid, [])

    def clock_of(self, node: int, seq: int) -> Optional[Tuple[int, ...]]:
        """Node ``node``'s vector clock as of trace point ``seq``."""
        return self.clocks.clock_at(node, seq)

    def happens_before(self, writer: int, index: int,
                       node: int, seq: int) -> bool:
        """True iff interval ``(writer, index)`` is ordered before the
        execution point of ``node`` at trace sequence ``seq``.

        This is the release->acquire chain test: the interval is
        visible iff some chain of releases and acquires carried its
        write notice into ``node``'s clock by then.
        """
        clock = self.clocks.clock_at(node, seq)
        if clock is None or writer >= len(clock):
            return False
        return clock[writer] >= index
