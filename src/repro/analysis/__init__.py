"""Protocol analysis: trace sanitizer, invariant checker, static lint.

Three cooperating passes that keep the simulator honest:

* :mod:`repro.analysis.sanitizer` — offline race/coherence sanitizer
  replaying recorded traces against a happens-before graph
  (:mod:`repro.analysis.hb`).
* :mod:`repro.analysis.invariants` — runtime predicates the protocol
  asserts at its own commit points (``--check`` / ``repro check``).
* :mod:`repro.analysis.lint` — static AST lint enforcing the
  determinism rules the other two passes depend on (``repro lint``).
* :mod:`repro.analysis.static` — whole-program analysis over the
  package import graph: protocol send/handler agreement (PROTO),
  trace-schema conformance (TRC), cache-fingerprint coverage (FPR)
  and shared-state mutation (RACE), with SARIF export and a
  committed finding baseline (``repro lint --sarif``).
* :mod:`repro.analysis.critpath` — critical-path extraction over the
  causal span records of a spanned run (``repro critpath``), with its
  own sanitizer pass reconciling path length against wall time.
"""

from .critpath import (CRITPATH_SCHEMA, CriticalPath, PathStep,
                       bucket_shares, extract_critical_path,
                       render_ladder_diff, render_path)
from .hb import ClockHistory, HBGraph, IntervalInfo
from .invariants import (LEGAL_TRANSITIONS, InvariantChecker,
                         InvariantViolation)
from .lint import (RULES, LintViolation, Rule, default_target, lint_paths,
                   lint_source, register_rule)
from .sanitizer import (SANITIZER_CHECKS, Finding, Sanitizer,
                        SanitizerCheck, register_check, sanitize_run)
from .static import (PROJECT_RULES, AnalysisReport, Baseline,
                     ProjectModel, ProjectRule, analyze_paths,
                     analyze_project, register_project_rule, to_sarif)

__all__ = [
    "CriticalPath", "PathStep", "extract_critical_path",
    "render_path", "render_ladder_diff", "bucket_shares",
    "CRITPATH_SCHEMA",
    "ClockHistory", "HBGraph", "IntervalInfo",
    "InvariantChecker", "InvariantViolation", "LEGAL_TRANSITIONS",
    "LintViolation", "Rule", "RULES", "register_rule",
    "lint_source", "lint_paths", "default_target",
    "AnalysisReport", "Baseline", "ProjectModel", "ProjectRule",
    "PROJECT_RULES", "register_project_rule",
    "analyze_project", "analyze_paths", "to_sarif",
    "Finding", "Sanitizer", "SanitizerCheck", "SANITIZER_CHECKS",
    "register_check", "sanitize_run",
]
