"""Application framework.

Each application models the sharing pattern of one SPLASH-2 program
(original or restructured, Section 3.2): the real parallel
decomposition (who owns which pages, who reads whose data, which locks
protect what) driving page-granularity reads/writes, locks, flags and
barriers, with computation time derived from the algorithm's operation
counts.

Problem sizes: ``paper_params`` matches Table 1; the default
constructor uses a scaled-down size (same sharing structure, shorter
simulations) — pass ``**Application.paper_params`` to reproduce the
paper's sizes.  Initialization/cold-start is excluded from timing and
breakdowns, following the SPLASH-2 guidelines the paper cites.
"""

from __future__ import annotations

import abc
from typing import Dict

from ..runtime.context import ParallelContext

__all__ = ["Application", "pages_for_bytes", "APP_REGISTRY", "register"]


def pages_for_bytes(n_bytes: int, page_size: int = 4096) -> int:
    """Shared pages needed for ``n_bytes`` of data (at least 1)."""
    return max((n_bytes + page_size - 1) // page_size, 1)


class Application(abc.ABC):
    """One benchmark program."""

    #: short name, matching the paper's tables.
    name: str = "app"
    #: how memory-bandwidth-bound compute phases are (0..1) — drives
    #: SMP bus contention (Section 3.4: FFT and Ocean are high).
    bus_intensity: float = 0.0
    #: the paper's problem size (Table 1).
    paper_params: Dict[str, int] = {}

    @abc.abstractmethod
    def setup(self, backend) -> Dict[str, object]:
        """Allocate shared regions on ``backend``; returns them by name."""

    def init_process(self, ctx: ParallelContext, regions):
        """Cold-start: touch this rank's data (excluded from timing)."""
        return
        yield  # pragma: no cover

    @abc.abstractmethod
    def process(self, ctx: ParallelContext, regions):
        """The timed parallel computation for ``ctx.rank``."""

    def context(self, backend, rank: int, nprocs: int) -> ParallelContext:
        return ParallelContext(backend, rank, nprocs,
                               bus_intensity=self.bus_intensity)

    def __repr__(self) -> str:
        params = {k: v for k, v in vars(self).items()
                  if not k.startswith("_")}
        return f"{type(self).__name__}({params})"


#: name -> Application subclass, for experiment drivers and CLIs.
APP_REGISTRY: Dict[str, type] = {}


def register(cls):
    """Class decorator: add an Application to the registry."""
    if cls.name in APP_REGISTRY:
        raise ValueError(f"duplicate app name {cls.name!r}")
    APP_REGISTRY[cls.name] = cls
    return cls
