"""Volrend-stealing and Raytrace: task-queue applications.

Both render from a large read-mostly scene (volume / geometry) fetched
on first use, and balance load with distributed task queues.

**Volrend-stealing** is the restructured version (Section 3.2): the
initial task assignment already balances well, task stealing handles
the rest.  The paper found stealing ineffective under the Base
protocol because lock costs and critical-section dilation ate the
benefit; GeNIMA makes it effective.

**Raytrace** is the version that eliminates the global ray-id lock, so
the queues are the only locking; tasks are finer and the scene larger.
"""

from __future__ import annotations

from .base import Application, pages_for_bytes, register

__all__ = ["Volrend", "Raytrace"]


class _TaskQueueApp(Application):
    """Common task-queue machinery (deterministic, sim-level counters)."""

    #: subclasses set these.
    ntasks: int
    scene_pages: int
    queue_lock_base = 3000

    def __init__(self):
        # sim-level queue state, reset per run in setup()
        self._remaining = None

    def task_cost(self, task_id: int) -> float:
        raise NotImplementedError

    def scene_pages_for_task(self, task_id: int):
        raise NotImplementedError

    def setup(self, backend):
        nprocs = backend.nprocs
        per = self.ntasks // nprocs
        self._remaining = [per] * nprocs
        self._remaining[-1] += self.ntasks - per * nprocs
        self._next_task = [rank * per for rank in range(nprocs)]
        return {
            "scene": backend.allocate(f"{self.name}.scene",
                                      self.scene_pages,
                                      home_policy="round_robin"),
            "queues": backend.allocate(f"{self.name}.queues", nprocs,
                                       home_policy="round_robin"),
        }

    def init_process(self, ctx, regions):
        # initial task lists are written by their owners
        yield from ctx.write(regions["queues"], [ctx.rank],
                             runs_per_page=1, bytes_per_page=256)

    def _take_own(self, rank: int):
        if self._remaining[rank] > 0:
            self._remaining[rank] -= 1
            task = self._next_task[rank]
            self._next_task[rank] += 1
            return task
        return None

    def process(self, ctx, regions):
        scene, queues = regions["scene"], regions["queues"]
        rank, p = ctx.rank, ctx.nprocs

        def do_task(task_id):
            yield from ctx.read(scene, self.scene_pages_for_task(task_id))
            yield from ctx.compute(self.task_cost(task_id))

        while True:
            task = self._take_own(rank)
            if task is not None:
                yield from do_task(task)
                continue
            # Steal: scan other queues.
            stolen = None
            for step in range(1, p):
                victim = (rank + step) % p
                if self._remaining[victim] <= 1:
                    continue
                yield from ctx.lock(self.queue_lock_base + victim)
                # re-check under the lock
                if self._remaining[victim] > 1:
                    yield from ctx.read(queues, [victim])
                    self._remaining[victim] -= 1
                    stolen = self._next_task[victim]
                    self._next_task[victim] += 1
                    yield from ctx.write(queues, [victim],
                                         runs_per_page=1,
                                         bytes_per_page=32)
                yield from ctx.unlock(self.queue_lock_base + victim)
                if stolen is not None:
                    break
            if stolen is None:
                break  # nothing left anywhere
            yield from do_task(stolen)
        yield from ctx.barrier()


@register
class Volrend(_TaskQueueApp):
    name = "Volrend-stealing"
    bus_intensity = 0.25
    paper_params = {"ntasks": 4096, "volume_mb": 16}

    def __init__(self, ntasks: int = 768, volume_mb: int = 4,
                 base_task_us: float = 260.0):
        super().__init__()
        self.ntasks = ntasks
        self.scene_pages = pages_for_bytes(volume_mb << 20)
        self.base_task_us = base_task_us

    def task_cost(self, task_id: int) -> float:
        # rays through the object's center cost much more: a smooth
        # hump across task space creates the load imbalance the
        # restructured initial assignment mostly (not fully) fixes.
        x = task_id / max(self.ntasks - 1, 1)
        hump = 1.0 + 2.5 * max(0.0, 1.0 - abs(x - 0.5) * 4.0)
        return self.base_task_us * hump

    def scene_pages_for_task(self, task_id: int):
        # each ray block samples a handful of volume pages near its
        # region, plus the shared octree root pages.
        base = (task_id * 7) % self.scene_pages
        return sorted({0, 1, base,
                       (base + 3) % self.scene_pages,
                       (base + 11) % self.scene_pages})


@register
class Raytrace(_TaskQueueApp):
    name = "Raytrace"
    bus_intensity = 0.25
    paper_params = {"ntasks": 16384, "scene_mb": 32}

    def __init__(self, ntasks: int = 1536, scene_mb: int = 6,
                 base_task_us: float = 260.0):
        super().__init__()
        self.ntasks = ntasks
        self.scene_pages = pages_for_bytes(scene_mb << 20)
        self.base_task_us = base_task_us

    def task_cost(self, task_id: int) -> float:
        # reflective objects in part of the image: a step imbalance.
        x = task_id / max(self.ntasks - 1, 1)
        return self.base_task_us * (2.6 if 0.25 < x < 0.5 else 1.0)

    def scene_pages_for_task(self, task_id: int):
        base = (task_id * 13) % self.scene_pages
        return sorted({base, (base + 5) % self.scene_pages,
                       (base + 17) % self.scene_pages,
                       (base + 31) % self.scene_pages})
