"""LU-contiguous (SPLASH-2): blocked dense LU with contiguous blocks.

Regular, compute-heavy kernel with modest sharing: each step factors a
diagonal block, updates the perimeter, then every process updates its
interior blocks after reading the pivot row/column blocks (remote page
fetches).  Contiguous block allocation means each block's pages are
consecutive and homed at the owner, so diffs are home-local.  Barriers
separate the three phases of every step; load imbalance grows as the
active sub-matrix shrinks — the paper reports LU's remaining barrier
time as roughly 70% waiting, 30% protocol (Table 2).
"""

from __future__ import annotations

import math

from .base import Application, pages_for_bytes, register

__all__ = ["LU"]

DOUBLE = 8


@register
class LU(Application):
    name = "LU-contiguous"
    bus_intensity = 0.35
    paper_params = {"n": 4096, "block": 32}
    #: us per B^3 block-update unit (dgemm-ish inner kernel).
    compute_per_block_op = 0.02

    def __init__(self, n: int = 1024, block: int = 32):
        if n % block:
            raise ValueError("matrix size must be a multiple of the block")
        self.n = n
        self.block = block
        self.nblocks = n // block  # per side

    # -- layout ------------------------------------------------------------

    @property
    def pages_per_block(self) -> int:
        return pages_for_bytes(self.block * self.block * DOUBLE)

    def owner(self, bi: int, bj: int, nprocs: int) -> int:
        """2-D scatter ownership, as in SPLASH-2 LU."""
        pr = int(math.sqrt(nprocs))
        while nprocs % pr:
            pr -= 1
        pc = nprocs // pr
        return (bi % pr) * pc + (bj % pc)

    def block_pages(self, bi: int, bj: int):
        index = bi * self.nblocks + bj
        start = index * self.pages_per_block
        return range(start, start + self.pages_per_block)

    def setup(self, backend):
        total = self.nblocks * self.nblocks * self.pages_per_block
        nprocs = backend.nprocs
        ppb = self.pages_per_block
        nb = self.nblocks

        def home_fn(page):
            index = page // ppb
            bi, bj = divmod(index, nb)
            owner = self.owner(bi, bj, nprocs)
            # map rank -> node for 4-way nodes; the directory expects a
            # node id.
            nodes = getattr(backend, "config", None)
            if nodes is not None and hasattr(nodes, "node_of"):
                return nodes.node_of(owner)
            return 0

        policy = "custom" if nprocs > 1 else "node:0"
        return {"matrix": backend.allocate(
            "lu.matrix", total, home_policy=policy,
            home_fn=home_fn if nprocs > 1 else None)}

    # -- execution -----------------------------------------------------------

    def my_blocks(self, rank: int, nprocs: int):
        for bi in range(self.nblocks):
            for bj in range(self.nblocks):
                if self.owner(bi, bj, nprocs) == rank:
                    yield bi, bj

    def init_process(self, ctx, regions):
        matrix = regions["matrix"]
        for bi, bj in self.my_blocks(ctx.rank, ctx.nprocs):
            yield from ctx.write(matrix, self.block_pages(bi, bj))

    def process(self, ctx, regions):
        matrix = regions["matrix"]
        unit = self.compute_per_block_op * self.block ** 3
        nb = self.nblocks
        for k in range(nb):
            # 1. Diagonal factorization by the owner of (k, k).
            if self.owner(k, k, ctx.nprocs) == ctx.rank:
                yield from ctx.read(matrix, self.block_pages(k, k))
                yield from ctx.compute(unit / 3.0)
                yield from ctx.write(matrix, self.block_pages(k, k),
                                     runs_per_page=1)
            yield from ctx.barrier()
            # 2. Perimeter update by the owners of row/col k blocks.
            perim = 0
            for j in range(k + 1, nb):
                for bi, bj in ((k, j), (j, k)):
                    if self.owner(bi, bj, ctx.nprocs) == ctx.rank:
                        if perim == 0:
                            yield from ctx.read(matrix,
                                                self.block_pages(k, k))
                        perim += 1
                        yield from ctx.compute(unit / 2.0)
                        yield from ctx.write(matrix,
                                             self.block_pages(bi, bj),
                                             runs_per_page=1)
            yield from ctx.barrier()
            # 3. Interior update: read pivot row/col blocks, update mine.
            pivot_read = set()
            for bi in range(k + 1, nb):
                for bj in range(k + 1, nb):
                    if self.owner(bi, bj, ctx.nprocs) != ctx.rank:
                        continue
                    for pivot in ((bi, k), (k, bj)):
                        if pivot not in pivot_read:
                            pivot_read.add(pivot)
                            yield from ctx.read(matrix,
                                                self.block_pages(*pivot))
                    yield from ctx.compute(unit)
                    yield from ctx.write(matrix, self.block_pages(bi, bj),
                                         runs_per_page=1)
            yield from ctx.barrier()
