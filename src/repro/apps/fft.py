"""FFT (SPLASH-2): radix-sqrt(n) six-step FFT with all-to-all transposes.

The paper's highest-bandwidth application: coarse-grained remote reads
during three transpose phases, barriers between phases, no locks, and
high memory-bus intensity (its compute time inflates with SMP bus
contention, Section 3.4).  Data wait dominates SVM overhead; remote
fetch removes ~45% of it (Table 1).

Decomposition: the n complex points form a sqrt(n) x sqrt(n) matrix of
rows; each process owns a contiguous band of rows (blocked homes).  A
transpose makes every process read one block from every other process
and write the transposed data into its own rows (local homes, so FFT
generates page *fetches* but almost no diff traffic).
"""

from __future__ import annotations

from .base import Application, pages_for_bytes, register

__all__ = ["FFT"]

COMPLEX_BYTES = 16  # double complex


@register
class FFT(Application):
    name = "FFT"
    bus_intensity = 0.8
    paper_params = {"log2_n": 22}  # 4M points
    #: us per point x log2(n) of local FFT work (calibrated).
    compute_per_point_log = 0.14

    def __init__(self, log2_n: int = 18):
        if log2_n < 8 or log2_n % 2:
            raise ValueError("log2_n must be even and >= 8 "
                             "(sqrt(n) row decomposition)")
        self.log2_n = log2_n
        self.n = 1 << log2_n

    # -- layout -----------------------------------------------------------

    def total_pages(self) -> int:
        return pages_for_bytes(self.n * COMPLEX_BYTES)

    def setup(self, backend):
        pages = self.total_pages()
        return {
            # source and destination arrays; blocked = row bands.
            "src": backend.allocate("fft.src", pages, home_policy="blocked"),
            "dst": backend.allocate("fft.dst", pages, home_policy="blocked"),
        }

    def _block_pages(self, region, owner: int, reader: int, nprocs: int):
        """Pages of the (reader, owner) transpose block inside the
        owner's row band."""
        band = region.n_pages // nprocs
        band_start = owner * band
        block = max(band // nprocs, 1)
        start = band_start + (reader * block) % max(band, 1)
        stop = min(start + block, region.n_pages)
        return range(start, stop)

    def _my_pages(self, region, rank: int, nprocs: int):
        band = region.n_pages // nprocs
        start = rank * band
        stop = region.n_pages if rank == nprocs - 1 else start + band
        return range(start, stop)

    # -- execution ------------------------------------------------------------

    def init_process(self, ctx, regions):
        yield from ctx.read(regions["src"],
                            self._my_pages(regions["src"], ctx.rank,
                                           ctx.nprocs))
        yield from ctx.write(regions["src"],
                             self._my_pages(regions["src"], ctx.rank,
                                            ctx.nprocs))

    def process(self, ctx, regions):
        n, p = self.n, ctx.nprocs
        phase_compute = (self.compute_per_point_log * n * self.log2_n
                         / (3 * p))
        arrays = [regions["src"], regions["dst"]]
        for phase in range(3):
            src = arrays[phase % 2]
            dst = arrays[(phase + 1) % 2]
            # Local 1-D FFTs over the rows this process owns.
            yield from ctx.compute(phase_compute)
            # Transpose: read one block from every other process's band,
            # write the transposed data into our own band.
            for step in range(1, p):
                owner = (ctx.rank + step) % p
                yield from ctx.read(src, self._block_pages(src, owner,
                                                           ctx.rank, p))
            yield from ctx.write(dst, self._my_pages(dst, ctx.rank, p),
                                 runs_per_page=1)
            yield from ctx.barrier()


def transpose_remote_pages(app: FFT, nprocs: int) -> int:
    """Remote pages one process reads per transpose (for tests)."""
    band = app.total_pages() // nprocs
    block = max(band // nprocs, 1)
    per_node = nprocs // 4 if nprocs >= 4 else 1
    remote_owners = nprocs - per_node
    return remote_owners * block


def seq_time_estimate(app: FFT) -> float:
    """Closed-form sequential compute time (for tests)."""
    return app.compute_per_point_log * app.n * app.log2_n
