"""The ten SPLASH-2 application models of the paper's evaluation."""

from .barnes import BarnesOriginal, BarnesSpatial
from .base import APP_REGISTRY, Application, pages_for_bytes, register
from .fft import FFT
from .lu import LU
from .ocean import Ocean
from .radix import Radix
from .tasks import Raytrace, Volrend
from .water import WaterNsquared, WaterSpatial

#: Table 1 order.
PAPER_APPS = [
    "FFT",
    "LU-contiguous",
    "Ocean-rowwise",
    "Water-nsquared",
    "Water-spatial",
    "Radix-local",
    "Volrend-stealing",
    "Raytrace",
    "Barnes-original",
    "Barnes-spatial",
]

__all__ = [
    "APP_REGISTRY",
    "Application",
    "pages_for_bytes",
    "register",
    "PAPER_APPS",
    "FFT",
    "LU",
    "Ocean",
    "WaterNsquared",
    "WaterSpatial",
    "Radix",
    "Volrend",
    "Raytrace",
    "BarnesOriginal",
    "BarnesSpatial",
]
