"""The ten SPLASH-2 application models of the paper's evaluation,
plus datacenter workloads for the scaled machine model."""

from .barnes import BarnesOriginal, BarnesSpatial
from .base import APP_REGISTRY, Application, pages_for_bytes, register
from .datacenter import (ArrivalProcess, OpenLoop, ParameterServer,
                         ShardedKVStore)
from .fft import FFT
from .lu import LU
from .ocean import Ocean
from .radix import Radix
from .tasks import Raytrace, Volrend
from .water import WaterNsquared, WaterSpatial

#: Table 1 order.
PAPER_APPS = [
    "FFT",
    "LU-contiguous",
    "Ocean-rowwise",
    "Water-nsquared",
    "Water-spatial",
    "Radix-local",
    "Volrend-stealing",
    "Raytrace",
    "Barnes-original",
    "Barnes-spatial",
]

__all__ = [
    "APP_REGISTRY",
    "Application",
    "pages_for_bytes",
    "register",
    "PAPER_APPS",
    "FFT",
    "LU",
    "Ocean",
    "WaterNsquared",
    "WaterSpatial",
    "Radix",
    "Volrend",
    "Raytrace",
    "BarnesOriginal",
    "BarnesSpatial",
    "ArrivalProcess",
    "ShardedKVStore",
    "ParameterServer",
    "OpenLoop",
    "DATACENTER_APPS",
]

#: the datacenter workloads (scale experiments, not Table 1).
DATACENTER_APPS = ["KVStore", "ParamServer", "OpenLoop"]
