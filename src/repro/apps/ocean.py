"""Ocean-rowwise (SPLASH-2, restructured): red-black grid solver.

Near-neighbour sharing: each process owns a contiguous band of grid
rows (with 4-way SMP nodes this rowwise version is practically
equivalent to Ocean-contiguous, as the paper notes).  Every sweep reads
the boundary rows of the two neighbouring processes, computes a
stencil update over its band, and synchronizes with barriers; global
error reduction takes one small lock per sweep.  High memory-bus
intensity, modest communication — a well-behaving SVM application.
"""

from __future__ import annotations

from .base import Application, pages_for_bytes, register

__all__ = ["Ocean"]

DOUBLE = 8


@register
class Ocean(Application):
    name = "Ocean-rowwise"
    bus_intensity = 0.75
    paper_params = {"n": 514, "sweeps": 100}
    #: us per grid point per sweep (5-point stencil + multigrid factor).
    compute_per_point = 0.12

    def __init__(self, n: int = 514, sweeps: int = 40):
        if n < 34:
            raise ValueError("grid too small")
        self.n = n
        self.sweeps = sweeps

    def row_bytes(self) -> int:
        return self.n * DOUBLE

    def total_pages(self) -> int:
        return pages_for_bytes(self.n * self.n * DOUBLE)

    def setup(self, backend):
        return {
            "grid": backend.allocate("ocean.grid", self.total_pages(),
                                     home_policy="blocked"),
            "err": backend.allocate("ocean.err", 1, home_policy="node:0"),
        }

    # -- layout -----------------------------------------------------------

    def band_pages(self, rank: int, nprocs: int):
        per = self.total_pages() // nprocs
        start = rank * per
        stop = self.total_pages() if rank == nprocs - 1 else start + per
        return range(start, stop)

    def boundary_pages(self, rank: int, nprocs: int):
        """Pages holding the neighbour rows this process reads."""
        pages_per_boundary = pages_for_bytes(2 * self.row_bytes())
        out = []
        total = self.total_pages()
        per = total // nprocs
        if rank > 0:
            # bottom rows of the band above
            top = rank * per
            out.extend(range(max(top - pages_per_boundary, 0), top))
        if rank < nprocs - 1:
            bottom = (rank + 1) * per
            out.extend(range(bottom,
                             min(bottom + pages_per_boundary, total)))
        return out

    # -- execution -----------------------------------------------------------

    def init_process(self, ctx, regions):
        yield from ctx.write(regions["grid"],
                             self.band_pages(ctx.rank, ctx.nprocs))

    def process(self, ctx, regions):
        grid = regions["grid"]
        err = regions["err"]
        band = list(self.band_pages(ctx.rank, ctx.nprocs))
        sweep_compute = (self.compute_per_point * self.n * self.n
                         / ctx.nprocs)
        for sweep in range(self.sweeps):
            yield from ctx.read(grid, self.boundary_pages(ctx.rank,
                                                          ctx.nprocs))
            yield from ctx.compute(sweep_compute)
            # write back our band (boundary rows become stale remotely)
            yield from ctx.write(grid, band, runs_per_page=1)
            # global error reduction under a small lock
            if sweep % 8 == 0:
                yield from ctx.lock(0)
                yield from ctx.write(err, [0], runs_per_page=1,
                                     bytes_per_page=8)
                yield from ctx.unlock(0)
            yield from ctx.barrier()
