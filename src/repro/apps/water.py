"""Water-nsquared and Water-spatial (SPLASH-2).

**Water-nsquared** is the paper's fine-grained-locking stress case:
after computing pairwise partial forces, every process adds its
contributions into the shared force array under *per-molecule locks*.
The resulting flood of lock transfers and eager invalidation traffic is
what makes it perform worse under DW (lock requests stuck behind data
in the NI delivery FIFO) and recover only with NI locks (Section 3.3).

**Water-spatial** partitions molecules into a 3-D cell grid; each
process owns a box of cells and only reads/updates boundary cells of
its neighbours — far fewer locks, moderate data movement, one of the
better-behaved SVM applications.

The per-pair compute constant is calibrated so the lock/compute ratio
at the default (scaled-down) molecule count matches the ratio at the
paper's 4096-molecule size, preserving the phenomenon at lower
simulation cost.
"""

from __future__ import annotations

from .base import Application, pages_for_bytes, register

__all__ = ["WaterNsquared", "WaterSpatial"]

MOLECULE_BYTES = 680   # SPLASH-2 water molecule record
MOL_PER_PAGE = 4096 // MOLECULE_BYTES  # 6


@register
class WaterNsquared(Application):
    name = "Water-nsquared"
    bus_intensity = 0.15
    paper_params = {"molecules": 4096, "steps": 2, "compute_per_pair": 0.5}

    def __init__(self, molecules: int = 1024, steps: int = 2,
                 compute_per_pair: float = 2.0,
                 compute_per_molecule: float = 8.0):
        self.molecules = molecules
        self.steps = steps
        #: us per pairwise interaction (scaled up at small sizes to
        #: keep lock/compute ratios at the paper's operating point).
        self.compute_per_pair = compute_per_pair
        self.compute_per_molecule = compute_per_molecule

    def mol_page(self, mol: int) -> int:
        return mol // MOL_PER_PAGE

    def total_pages(self) -> int:
        # one page per MOL_PER_PAGE molecules, so mol_page() is always
        # in range even when records straddle the last page boundary.
        return (self.molecules + MOL_PER_PAGE - 1) // MOL_PER_PAGE

    def setup(self, backend):
        return {
            "mol": backend.allocate("water.mol", self.total_pages(),
                                    home_policy="blocked"),
            "forces": backend.allocate("water.forces", self.total_pages(),
                                       home_policy="blocked"),
        }

    def init_process(self, ctx, regions):
        start, stop = ctx.my_slice(self.molecules)
        pages = sorted({self.mol_page(m) for m in range(start, stop)})
        yield from ctx.write(regions["mol"], pages)
        yield from ctx.write(regions["forces"], pages)

    def process(self, ctx, regions):
        n, p, rank = self.molecules, ctx.nprocs, ctx.rank
        mol, forces = regions["mol"], regions["forces"]
        start, stop = ctx.my_slice(n)
        mine = stop - start
        for _step in range(self.steps):
            # predict: local molecule work
            yield from ctx.compute(self.compute_per_molecule * mine)
            yield from ctx.barrier()
            # intermolecular forces: each process handles pairs
            # (i, i+1..i+n/2) for its molecules; it reads the partner
            # molecules' data (half the array, round robin).
            partner_pages = sorted({
                self.mol_page((start + k) % n)
                for k in range(0, n // 2, MOL_PER_PAGE)})
            yield from ctx.read(mol, partner_pages)
            yield from ctx.compute(self.compute_per_pair * mine * n / 2)
            # update partner forces under per-molecule locks: the
            # fine-grained locking the paper highlights.
            for k in range(0, n // 2, 2):
                target = (start + k) % n
                yield from ctx.lock(1000 + target)
                yield from ctx.write(forces, [self.mol_page(target)],
                                     runs_per_page=1, bytes_per_page=72)
                yield from ctx.unlock(1000 + target)
            yield from ctx.barrier()
            # correct: local work, own forces
            own_pages = sorted({self.mol_page(m)
                                for m in range(start, stop)})
            yield from ctx.read(forces, own_pages)
            yield from ctx.compute(self.compute_per_molecule * mine)
            yield from ctx.write(mol, own_pages, runs_per_page=2,
                                 bytes_per_page=1024)
            yield from ctx.barrier()


@register
class WaterSpatial(Application):
    name = "Water-spatial"
    bus_intensity = 0.15
    paper_params = {"molecules": 32768, "steps": 2}

    def __init__(self, molecules: int = 4096, steps: int = 4,
                 compute_per_molecule: float = 20.0):
        self.molecules = molecules
        self.steps = steps
        #: us per molecule per step (cell-list force computation).
        self.compute_per_molecule = compute_per_molecule

    def total_pages(self) -> int:
        return pages_for_bytes(self.molecules * MOLECULE_BYTES)

    def setup(self, backend):
        return {
            "mol": backend.allocate("waters.mol", self.total_pages(),
                                    home_policy="blocked"),
        }

    def boundary_pages(self, rank: int, nprocs: int):
        """Pages of the neighbouring processes' boundary cells."""
        total = self.total_pages()
        per = max(total // nprocs, 1)
        width = max(per // 4, 1)  # boundary cells ~ (cells/proc)^(2/3)
        out = []
        if rank > 0:
            top = rank * per
            out.extend(range(max(top - width, 0), top))
        if rank < nprocs - 1:
            bottom = min((rank + 1) * per, total)
            out.extend(range(bottom, min(bottom + width, total)))
        return out

    def my_pages(self, rank: int, nprocs: int):
        total = self.total_pages()
        per = max(total // nprocs, 1)
        start = rank * per
        stop = total if rank == nprocs - 1 else min(start + per, total)
        return range(start, stop)

    def init_process(self, ctx, regions):
        yield from ctx.write(regions["mol"],
                             self.my_pages(ctx.rank, ctx.nprocs))

    def process(self, ctx, regions):
        mol = regions["mol"]
        start, stop = ctx.my_slice(self.molecules)
        mine = stop - start
        my_pages = list(self.my_pages(ctx.rank, ctx.nprocs))
        for _step in range(self.steps):
            # read neighbour boundary cells
            boundary = self.boundary_pages(ctx.rank, ctx.nprocs)
            yield from ctx.read(mol, boundary)
            yield from ctx.compute(self.compute_per_molecule * mine)
            # update own cells; boundary-cell updates take a lock each
            yield from ctx.write(mol, my_pages, runs_per_page=2,
                                 bytes_per_page=2048)
            for page in boundary[:8]:
                yield from ctx.lock(2000 + page)
                yield from ctx.write(mol, [page], runs_per_page=1,
                                     bytes_per_page=96)
                yield from ctx.unlock(2000 + page)
            yield from ctx.barrier()
            # intra-molecular corrections, local
            yield from ctx.compute(self.compute_per_molecule * mine * 0.3)
            yield from ctx.barrier()
