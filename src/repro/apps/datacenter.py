"""Datacenter workloads for the scaled (256–1024 node) machine model.

The SPLASH-2 programs exercise the protocol the way 1999's scientific
codes did: tight barriers, all-to-all phases, every rank equally busy.
Datacenter services stress the same mechanisms differently — shallow
request/response chains, skewed key popularity, open-loop arrivals
whose rate does not slow down when the service does.  Three models:

* :class:`ShardedKVStore` — a get/put key-value cell.  Keys live in
  page-granularity shards homed round the cluster (blocked homes = the
  shard map); a get fetches the shard page, a put locks the shard and
  writes it.  Skewed popularity concentrates traffic on hot shards,
  the datacenter analogue of Barnes's hot locks.
* :class:`ParameterServer` — synchronous data-parallel training.
  Parameter shards are homed across the cluster (the "servers");
  each step every worker fetches a bounded fan-out of parameter
  pages, computes, pushes its gradient slice as diffs to the shard
  homes, and barriers.  Fetch = remote page fetch, push = diff flush:
  the two halves of the paper's data-wait story at datacenter scale.
* :class:`OpenLoop` — a pure open-loop request generator.  Arrival
  times are **pre-drawn** from the arrival process, independent of
  service progress, so offered load is fixed even when the cell slows
  down — the property closed-loop SPLASH-style driving cannot model.

Millions of users are modelled in aggregate: the superposition of many
independent, individually-sparse user streams converges to a Poisson
process (Palm–Khintchine), so one exponential-gap arrival stream per
rank with the aggregate rate stands in for the user population.
Every random draw comes from ``random.Random(seed * 1000003 + rank)``
(the per-node seeding idiom of :mod:`repro.hw.node`), keeping runs
byte-deterministic.
"""

from __future__ import annotations

import random
from typing import List

from .base import Application, pages_for_bytes, register

__all__ = ["ArrivalProcess", "ShardedKVStore", "ParameterServer",
           "OpenLoop"]

#: per-rank RNG stride, matching repro.hw.node's per-node seeding.
_SEED_STRIDE = 1000003


class ArrivalProcess:
    """Pre-drawn open-loop arrival times for one request stream.

    ``poisson`` draws exponential inter-arrival gaps (the aggregate of
    a large user population); ``deterministic`` paces arrivals on an
    exact period (load testers, cron fleets).  All times are drawn at
    construction, so the schedule is fixed before service begins —
    that independence is what makes the load *open*-loop.
    """

    KINDS = ("poisson", "deterministic")

    def __init__(self, kind: str, rate_per_us: float, count: int,
                 seed: int = 0):
        if kind not in self.KINDS:
            raise ValueError(f"unknown arrival kind {kind!r} "
                             f"(one of {self.KINDS})")
        if rate_per_us <= 0:
            raise ValueError("rate_per_us must be positive")
        if count < 0:
            raise ValueError("count must be >= 0")
        self.kind = kind
        self.rate_per_us = rate_per_us
        rng = random.Random(seed)
        gap = 1.0 / rate_per_us
        times: List[float] = []
        t = 0.0
        for _ in range(count):
            t += rng.expovariate(rate_per_us) if kind == "poisson" else gap
            times.append(t)
        self.times = times


class _DatacenterApp(Application):
    """Shared plumbing: per-rank RNGs and open-loop idling."""

    bus_intensity = 0.1  # request handling is branchy, not bandwidth-bound
    seed: int = 0

    def _rng(self, rank: int) -> random.Random:
        return random.Random(self.seed * _SEED_STRIDE + rank)

    @staticmethod
    def _idle_until(ctx, t: float):
        """Generator: advance to simulated time ``t`` doing nothing.

        Idle time is plain waiting (no bus traffic); a rank that is
        already late starts the request immediately — open-loop
        arrivals never stretch.
        """
        gap = t - ctx.backend.sim.now
        if gap > 0:
            yield from ctx.compute(gap, 0.0)


@register
class ShardedKVStore(_DatacenterApp):
    """A sharded get/put key-value cell under skewed load."""

    name = "KVStore"
    paper_params = {}  # post-paper workload: no Table 1 row

    def __init__(self, shards: int = 16, pages_per_shard: int = 4,
                 requests_per_rank: int = 64, put_fraction: float = 0.1,
                 hot_fraction: float = 0.8, hot_shards: int = 2,
                 rate_per_us: float = 0.002, arrivals: str = "poisson",
                 service_us: float = 12.0, seed: int = 0):
        if shards < 1 or pages_per_shard < 1:
            raise ValueError("shards and pages_per_shard must be >= 1")
        if not 0.0 <= put_fraction <= 1.0:
            raise ValueError("put_fraction must be within [0, 1]")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be within [0, 1]")
        self.shards = shards
        self.pages_per_shard = pages_per_shard
        self.requests_per_rank = requests_per_rank
        self.put_fraction = put_fraction
        self.hot_fraction = hot_fraction
        self.hot_shards = min(hot_shards, shards)
        self.rate_per_us = rate_per_us
        self.arrivals = arrivals
        self.service_us = service_us
        self.seed = seed

    def setup(self, backend):
        pages = self.shards * self.pages_per_shard
        return {"data": backend.allocate("kv.data", pages,
                                         home_policy="blocked")}

    def _pick_shard(self, rng: random.Random) -> int:
        if self.hot_shards and rng.random() < self.hot_fraction:
            return rng.randrange(self.hot_shards)
        return rng.randrange(self.shards)

    def _shard_page(self, shard: int, rng: random.Random) -> int:
        return shard * self.pages_per_shard \
            + rng.randrange(self.pages_per_shard)

    def init_process(self, ctx, regions):
        # Cold-start: each rank touches one page of every shard it
        # will serve requests against (excluded from timing).
        start, stop = ctx.my_slice(self.shards)
        for shard in range(start, stop):
            yield from ctx.read(regions["data"],
                                [shard * self.pages_per_shard])

    def process(self, ctx, regions):
        rng = self._rng(ctx.rank)
        plan = ArrivalProcess(self.arrivals, self.rate_per_us,
                              self.requests_per_rank,
                              seed=self.seed * _SEED_STRIDE + ctx.rank)
        data = regions["data"]
        for due in plan.times:
            yield from self._idle_until(ctx, due)
            shard = self._pick_shard(rng)
            page = self._shard_page(shard, rng)
            if rng.random() < self.put_fraction:
                # Put: shard lock serializes writers, the dirty page
                # diffs back to the shard's home.
                yield from ctx.lock(shard)
                yield from ctx.read(data, [page])
                yield from ctx.compute(self.service_us)
                yield from ctx.write(data, [page], runs_per_page=2,
                                     bytes_per_page=256)
                yield from ctx.unlock(shard)
            else:
                yield from ctx.read(data, [page])
                yield from ctx.compute(self.service_us)
        yield from ctx.barrier()


@register
class ParameterServer(_DatacenterApp):
    """Synchronous data-parallel training against sharded parameters."""

    name = "ParamServer"
    bus_intensity = 0.6  # gradient math is bandwidth-hungry
    paper_params = {}

    def __init__(self, param_pages: int = 64, steps: int = 8,
                 fetch_fanout: int = 8, compute_us: float = 400.0,
                 seed: int = 0):
        if param_pages < 1 or steps < 1 or fetch_fanout < 1:
            raise ValueError("param_pages, steps and fetch_fanout "
                             "must be >= 1")
        self.param_pages = param_pages
        self.steps = steps
        self.fetch_fanout = fetch_fanout
        self.compute_us = compute_us
        self.seed = seed

    def setup(self, backend):
        return {
            # Blocked homes = the parameter-server shard map.
            "params": backend.allocate("ps.params", self.param_pages,
                                       home_policy="blocked"),
        }

    def init_process(self, ctx, regions):
        start, stop = ctx.my_slice(self.param_pages)
        yield from ctx.read(regions["params"], range(start, stop))

    def process(self, ctx, regions):
        rng = self._rng(ctx.rank)
        params = regions["params"]
        fanout = min(self.fetch_fanout, self.param_pages)
        for _ in range(self.steps):
            # Pull: fetch this step's working set from the shard homes.
            fetch = rng.sample(range(self.param_pages), fanout)
            yield from ctx.read(params, sorted(fetch))
            # Compute the gradient.
            yield from ctx.compute(self.compute_us)
            # Push: write this worker's slice; the diffs flush to the
            # shard homes (the "servers") at the barrier release.
            start, stop = ctx.my_slice(self.param_pages)
            if stop > start:
                yield from ctx.write(params, range(start, stop),
                                     runs_per_page=4, bytes_per_page=512)
            yield from ctx.barrier()


@register
class OpenLoop(_DatacenterApp):
    """Open-loop request generator: offered load fixed in advance."""

    name = "OpenLoop"
    paper_params = {}

    def __init__(self, pages: int = 64, requests_per_rank: int = 64,
                 rate_per_us: float = 0.002, arrivals: str = "poisson",
                 service_us: float = 10.0, seed: int = 0):
        if pages < 1:
            raise ValueError("pages must be >= 1")
        self.pages = pages
        self.requests_per_rank = requests_per_rank
        self.rate_per_us = rate_per_us
        self.arrivals = arrivals
        self.service_us = service_us
        self.seed = seed
        #: rank -> (completed, sum of sojourn times) — filled as the
        #: run executes, for latency-vs-load experiments and tests.
        self.sojourn_us = {}

    def setup(self, backend):
        return {"data": backend.allocate("rg.data", self.pages,
                                         home_policy="blocked")}

    def init_process(self, ctx, regions):
        start, stop = ctx.my_slice(self.pages)
        yield from ctx.read(regions["data"], range(start, stop))

    def process(self, ctx, regions):
        rng = self._rng(ctx.rank)
        plan = ArrivalProcess(self.arrivals, self.rate_per_us,
                              self.requests_per_rank,
                              seed=self.seed * _SEED_STRIDE + ctx.rank)
        data = regions["data"]
        done, sojourn = 0, 0.0
        for due in plan.times:
            yield from self._idle_until(ctx, due)
            yield from ctx.read(data, [rng.randrange(self.pages)])
            yield from ctx.compute(self.service_us)
            done += 1
            sojourn += ctx.backend.sim.now - due
        self.sojourn_us[ctx.rank] = (done, sojourn)
        yield from ctx.barrier()
