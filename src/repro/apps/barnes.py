"""Barnes-Hut n-body: original and restructured (spatial) versions.

**Barnes-original** (SPLASH-2): processes cooperatively build a shared
octree, locking cells as they insert bodies — very high lock frequency
with contention — then compute forces by walking the tree, touching
many scattered tree pages at small granularity (the paper: "scattered
accesses to remote addresses at very small granularity ... high
fragmentation overheads due to the page granularity of SVM").

**Barnes-spatial** (restructured): spatial partitioning removes the
tree-build locks, but each process's particle updates are *highly
scattered within pages* whose homes follow the initial layout, not the
dynamic spatial ownership.  Under direct diffs this multiplies the
number of diff messages by ~30x, fills the NI post queue and makes the
application much slower — the paper's one regression under GeNIMA's DD
mechanism (Section 3.3).
"""

from __future__ import annotations

from .base import Application, pages_for_bytes, register

__all__ = ["BarnesOriginal", "BarnesSpatial"]

BODY_BYTES = 108     # SPLASH-2 body record
CELL_BYTES = 88


@register
class BarnesOriginal(Application):
    name = "Barnes-original"
    bus_intensity = 0.3
    paper_params = {"bodies": 32768, "steps": 2}

    def __init__(self, bodies: int = 4096, steps: int = 2,
                 compute_per_body_log: float = 3.5,
                 cell_locks: int = 128):
        self.bodies = bodies
        self.steps = steps
        #: us per body per log2(n) tree-walk level.
        self.compute_per_body_log = compute_per_body_log
        self.cell_locks = cell_locks

    def body_pages(self) -> int:
        return pages_for_bytes(self.bodies * BODY_BYTES)

    def tree_pages(self) -> int:
        return pages_for_bytes(self.bodies * CELL_BYTES // 4)

    def setup(self, backend):
        return {
            "bodies": backend.allocate("barnes.bodies", self.body_pages(),
                                       home_policy="blocked"),
            "tree": backend.allocate("barnes.tree", self.tree_pages(),
                                     home_policy="round_robin"),
        }

    def my_body_pages(self, rank: int, nprocs: int):
        total = self.body_pages()
        per = max(total // nprocs, 1)
        start = rank * per
        stop = total if rank == nprocs - 1 else min(start + per, total)
        return range(start, stop)

    def init_process(self, ctx, regions):
        yield from ctx.write(regions["bodies"],
                             self.my_body_pages(ctx.rank, ctx.nprocs))

    def process(self, ctx, regions):
        bodies_r, tree_r = regions["bodies"], regions["tree"]
        n, p, rank = self.bodies, ctx.nprocs, ctx.rank
        start, stop = ctx.my_slice(n)
        mine = stop - start
        log_n = max(n.bit_length() - 1, 1)
        tree_total = self.tree_pages()
        for _step in range(self.steps):
            # 1. cooperative tree build: lock a cell, splice the body in.
            #    Inserts from all processes hit a shared, contended set
            #    of cell locks and dirty scattered tree pages.
            for i in range(0, mine, 4):  # every insert of 4 bodies
                body = start + i
                cell = (body * 2654435761) % self.cell_locks
                page = (body * 2654435761) % tree_total
                yield from ctx.lock(4000 + cell)
                yield from ctx.read(tree_r, [page])
                yield from ctx.write(tree_r, [page], runs_per_page=2,
                                     bytes_per_page=176)
                yield from ctx.unlock(4000 + cell)
                yield from ctx.compute(2.0)
            yield from ctx.barrier()
            # 2. force computation: walk the tree — scattered reads of
            #    many tree pages (page-granularity fragmentation), then
            #    heavy compute.
            walk = sorted({(rank * 31 + k * 7) % tree_total
                           for k in range(tree_total // 2)})
            yield from ctx.read(tree_r, walk)
            yield from ctx.compute(self.compute_per_body_log * mine * log_n)
            yield from ctx.barrier()
            # 3. update own bodies (local homes).
            yield from ctx.write(bodies_r,
                                 self.my_body_pages(rank, p),
                                 runs_per_page=4, bytes_per_page=2048)
            yield from ctx.barrier()


@register
class BarnesSpatial(Application):
    name = "Barnes-spatial"
    bus_intensity = 0.3
    paper_params = {"bodies": 131072, "steps": 2}

    def __init__(self, bodies: int = 8192, steps: int = 2,
                 compute_per_body_log: float = 2.0,
                 scatter_runs: int = 30):
        self.bodies = bodies
        self.steps = steps
        self.compute_per_body_log = compute_per_body_log
        #: modified runs per dirtied page: the restructured version's
        #: updates are highly scattered within pages (Section 3.3's
        #: ~30x direct-diff message blow-up).
        self.scatter_runs = scatter_runs

    def body_pages(self) -> int:
        return pages_for_bytes(self.bodies * BODY_BYTES)

    def setup(self, backend):
        return {
            # homes follow the *initial* body layout (round robin);
            # dynamic spatial ownership writes other nodes' pages.
            "bodies": backend.allocate("barness.bodies", self.body_pages(),
                                       home_policy="round_robin"),
        }

    def spatial_pages(self, rank: int, nprocs: int):
        """Pages the rank's spatial box touches: an interleaved subset."""
        total = self.body_pages()
        per = max(total // nprocs, 1)
        return [(rank + i * nprocs) % total for i in range(per)]

    def init_process(self, ctx, regions):
        yield from ctx.write(regions["bodies"],
                             self.spatial_pages(ctx.rank, ctx.nprocs))

    def process(self, ctx, regions):
        bodies_r = regions["bodies"]
        n, p, rank = self.bodies, ctx.nprocs, ctx.rank
        start, stop = ctx.my_slice(n)
        mine = stop - start
        log_n = max(n.bit_length() - 1, 1)
        pages = self.spatial_pages(rank, p)
        neighbour = self.spatial_pages((rank + 1) % p, p)
        for _step in range(self.steps):
            # force computation over the spatial box + neighbour halo
            yield from ctx.read(bodies_r, pages)
            yield from ctx.read(bodies_r, neighbour[:len(neighbour) // 2])
            yield from ctx.compute(self.compute_per_body_log * mine * log_n)
            yield from ctx.barrier()
            # scattered particle updates into remotely-homed pages: the
            # direct-diff message explosion.
            yield from ctx.write(bodies_r, pages,
                                 runs_per_page=self.scatter_runs,
                                 bytes_per_page=self.scatter_runs * 44)
            yield from ctx.barrier()
