"""Radix-local (restructured SPLASH-2 radix sort).

The paper's pathological data mover: every pass builds local
histograms, merges them, then permutes keys into *other processes'*
home pages in an all-to-all scatter.  Even in the restructured "local"
version (keys sorted locally first, so writes land in contiguous runs)
the permutation writes touch hundreds of remotely-homed pages with
false sharing, making barrier protocol time (94% of barrier time) and
mprotect (52% of all SVM overhead) the dominant costs — Table 2's
worst row — and keeping the speedup low on SVM.
"""

from __future__ import annotations

from .base import Application, pages_for_bytes, register

__all__ = ["Radix"]

KEY_BYTES = 4


@register
class Radix(Application):
    name = "Radix-local"
    bus_intensity = 0.5
    paper_params = {"keys": 1 << 22, "radix": 1024, "passes": 3}

    def __init__(self, keys: int = 1 << 19, radix: int = 1024,
                 passes: int = 3, compute_per_key: float = 0.25):
        self.keys = keys
        self.radix = radix
        self.passes = passes
        #: us per key per pass (count + local sort + copy).
        self.compute_per_key = compute_per_key

    def key_pages(self) -> int:
        return pages_for_bytes(self.keys * KEY_BYTES)

    def hist_pages(self) -> int:
        return pages_for_bytes(self.radix * 8)

    def setup(self, backend):
        return {
            "keys": backend.allocate("radix.keys", self.key_pages(),
                                     home_policy="blocked"),
            # the destination array is written all-to-all; its pages
            # interleave across nodes (first-touch lands that way when
            # every node writes everywhere), so invalidation runs
            # fragment and mprotect cannot coalesce them.
            "dest": backend.allocate("radix.dest", self.key_pages(),
                                     home_policy="round_robin"),
            # one histogram page set per process, homed with its owner
            "hist": backend.allocate(
                "radix.hist", self.hist_pages() * backend.nprocs,
                home_policy="blocked"),
        }

    def my_key_pages(self, rank: int, nprocs: int):
        total = self.key_pages()
        per = max(total // nprocs, 1)
        start = rank * per
        stop = total if rank == nprocs - 1 else min(start + per, total)
        return range(start, stop)

    def scatter_pages(self, rank: int, nprocs: int):
        """Destination pages this process writes during permutation.

        Keys with each digit value go to a different contiguous region
        of dest; a process's n/P keys split into ``radix`` chunks that
        land all over the array — touching ~min(radix, pages) pages
        spread across every other process's home range.
        """
        total = self.key_pages()
        touched = min(self.radix, (total * 3) // 4)
        # interleave writers: proc r skips every 4th page with a
        # rank-dependent phase, so each node's invalidation set is
        # fragmented (no long mprotect runs) and pages are shared by
        # writers from several nodes (false sharing).
        out = []
        i = 0
        while len(out) < touched:
            if (i + rank) % 4 != 3:
                out.append((rank + i) % total)
            i += 1
        return out

    def init_process(self, ctx, regions):
        yield from ctx.write(regions["keys"],
                             self.my_key_pages(ctx.rank, ctx.nprocs))

    def process(self, ctx, regions):
        keys_r, dest_r = regions["keys"], regions["dest"]
        hist_r = regions["hist"]
        n, p, rank = self.keys, ctx.nprocs, ctx.rank
        per_proc = n // p
        hist_pp = self.hist_pages()
        my_hist = range(rank * hist_pp, (rank + 1) * hist_pp)
        for pass_no in range(self.passes):
            src, dst = (keys_r, dest_r) if pass_no % 2 == 0 \
                else (dest_r, keys_r)
            # 1. local histogram over own keys (home-local reads after
            #    the first pass settle via diffs at the home).
            yield from ctx.read(src, self.my_key_pages(rank, p))
            yield from ctx.compute(self.compute_per_key * per_proc * 0.4)
            yield from ctx.write(hist_r, my_hist, runs_per_page=1)
            yield from ctx.barrier()
            # 2. read all histograms, compute global offsets.
            yield from ctx.read(hist_r, range(hist_pp * p))
            yield from ctx.compute(0.2 * self.radix)
            yield from ctx.barrier()
            # 3. permutation: locally sort, then scatter keys into the
            #    destination's (mostly remote) home pages.
            yield from ctx.compute(self.compute_per_key * per_proc * 0.6)
            scatter = self.scatter_pages(rank, p)
            bytes_per_page = max(per_proc * KEY_BYTES // len(scatter), 16)
            yield from ctx.write(dst, scatter, runs_per_page=2,
                                 bytes_per_page=min(bytes_per_page, 4096))
            yield from ctx.barrier()
