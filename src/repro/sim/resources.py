"""Queueing primitives built on the event kernel.

These model the contended stations in the simulated hardware: FIFO
resources (a CPU, a DMA engine, the LANai processor), bounded stores
(the NI post queue, packet queues) and byte-rate servers (a bus or a
link that transfers ``size`` bytes at ``bandwidth``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Event, Simulator, SimulationError, Timeout

__all__ = ["Resource", "Store", "RateServer"]


class _ReqEvent(Event):
    """Event with request metadata (arrival time, carried item)."""

    __slots__ = ("_req_time", "_item")


class Resource:
    """A FIFO resource with ``capacity`` concurrent holders.

    Usage from a process::

        grant = yield resource.request()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Cumulative stats for utilization / queueing analysis.
        self.total_requests = 0
        self.total_wait_time = 0.0
        self.busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        self.total_requests += 1
        ev = _ReqEvent(self.sim)
        ev._req_time = self.sim.now
        if self._in_use < self.capacity:
            self._accrue()
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            ev = self._waiters.popleft()
            self.total_wait_time += self.sim.now - ev._req_time
            ev.succeed()
        else:
            self._accrue()
            self._in_use -= 1

    def use(self, duration: float):
        """Generator helper: acquire, hold for ``duration``, release."""
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()

    def use_cb(self, duration: float, fn) -> None:
        """Callback twin of :meth:`use`: acquire, hold ``duration``,
        release, then call ``fn()`` at the release instant.

        The macro-event NIC drivers use this to run a station hold with
        no generator frame.  Queueing is exact: a contended request
        parks an event in the same FIFO as generator-based users, so
        mixed callback/generator clients of one station keep their
        arrival order.  The hold timeout is armed with the exact kernel
        hops of a generator client — an immediate grant defers timeout
        creation by one zero-delay event (the ``yield request()``
        resume a process would pay), a queued grant arms at the grant
        event's dispatch — so the release lands at the same position
        within its instant as the legacy ``use`` release would.
        """
        self.total_requests += 1
        if self._in_use < self.capacity:
            # Immediate grant: the hold starts at this instant; the
            # timeout is created one kernel event later, where a
            # generator user would resume from the triggered request.
            self._accrue()
            self._in_use += 1
            self.sim.defer(
                lambda: Timeout(self.sim, duration)._callbacks.append(
                    lambda _e: (self.release(), fn())))
        else:
            ev = _ReqEvent(self.sim)
            ev._req_time = self.sim.now
            self._waiters.append(ev)
            ev._callbacks.append(
                lambda _e: Timeout(self.sim, duration)._callbacks.append(
                    lambda _e2: (self.release(), fn())))

    def _accrue(self) -> None:
        now = self.sim.now
        self.busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def sample_busy(self) -> float:
        """Cumulative busy time *as of now*, including the open span.

        ``busy_time`` only accrues on state changes; utilization
        sampling (``repro.obs``) needs the value mid-span without
        mutating accounting state.
        """
        return self.busy_time + self._in_use * (self.sim.now
                                                - self._last_change)


class Store:
    """A FIFO buffer of items with optional bounded capacity.

    ``put`` blocks (the returned event stays pending) while the store
    is full; ``get`` blocks while it is empty.  This models the NI post
    queue, whose *fullness stalls the posting host processor* — a
    first-order effect in the paper's Barnes-spatial result.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = ""):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying .item
        self.total_puts = 0
        self.total_put_stall_time = 0.0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Insert ``item``; the event fires once the item is accepted."""
        self.total_puts += 1
        ev = _ReqEvent(self.sim)
        ev._item = item
        ev._req_time = self.sim.now
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif not self.is_full:
            self._items.append(item)
            self.max_occupancy = max(self.max_occupancy, len(self._items))
            ev.succeed()
        else:
            self._putters.append(ev)
        return ev

    def get(self) -> Event:
        """Remove the oldest item; the event fires with the item."""
        ev = self.sim.event()
        if self._items:
            item = self._items.popleft()
            self._admit_waiting_putter()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def _admit_waiting_putter(self) -> None:
        if self._putters and not self.is_full:
            pev = self._putters.popleft()
            self._items.append(pev._item)
            self.max_occupancy = max(self.max_occupancy, len(self._items))
            self.total_put_stall_time += (
                self.sim.now - pev._req_time
            )
            pev.succeed()


class RateServer:
    """A serial station that moves bytes at a fixed rate.

    Models a bus, link or DMA engine: each transfer occupies the
    station for ``overhead + size / bandwidth``; transfers queue FIFO.
    Bandwidth is in bytes per microsecond (== MB/s), matching the
    project-wide microsecond time unit.
    """

    def __init__(self, sim: Simulator, bandwidth_mbps: float,
                 overhead_us: float = 0.0, name: str = ""):
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth = bandwidth_mbps
        self.overhead = overhead_us
        self.name = name
        self._res = Resource(sim, 1, name=name)
        self.total_bytes = 0
        # Arithmetic reservations (note_span): closed busy time plus
        # the spans still open or in the future, kept separately from
        # the event-driven Resource accounting.
        self._span_busy = 0.0
        self._spans: Deque = deque()

    def service_time(self, size_bytes: int) -> float:
        return self.overhead + size_bytes / self.bandwidth

    def transfer(self, size_bytes: int):
        """Generator: queue for the station and move ``size_bytes``."""
        self.total_bytes += size_bytes
        yield self._res.request()
        try:
            yield self.sim.timeout(self.service_time(size_bytes))
        finally:
            self._res.release()

    def transfer_cb(self, size_bytes: int, fn) -> None:
        """Callback twin of :meth:`transfer` (see Resource.use_cb):
        queue, move ``size_bytes``, then ``fn()`` at completion."""
        self.total_bytes += size_bytes
        self._res.use_cb(self.service_time(size_bytes), fn)

    def note_span(self, start: float, end: float, size_bytes: int) -> None:
        """Record an arithmetically reserved occupancy ``[start, end)``.

        For stations with a *single, strictly serial* client (the NI
        outbound link: only the inject stage ever transfers on it, one
        packet at a time) the macro-event driver computes grant and
        completion instants in closed form and schedules no station
        events at all; this keeps ``sample_busy`` — and with it the
        profiler's utilization timelines — exact.  Spans must be
        non-overlapping and appended in start order, which the serial
        client guarantees.
        """
        self.total_bytes += size_bytes
        self._spans.append((start, end))

    def _sample_span_busy(self) -> float:
        now = self.sim.now
        spans = self._spans
        while spans and spans[0][1] <= now:
            s, e = spans.popleft()
            self._span_busy += e - s
        busy = self._span_busy
        for s, e in spans:
            if s >= now:
                break
            busy += now - s
        return busy

    @property
    def queue_len(self) -> int:
        return self._res.queue_len

    @property
    def busy(self) -> bool:
        return self._res.in_use > 0

    def sample_busy(self) -> float:
        """Cumulative station busy time as of now (see Resource),
        including arithmetically reserved spans (:meth:`note_span`)."""
        busy = self._res.sample_busy()
        if self._spans or self._span_busy:
            busy += self._sample_span_busy()
        return busy
