"""Causal spans over the event tracer: begin/end pairs plus flow links.

A :class:`SpanTracer` layers *causal structure* on top of the flat
:class:`~repro.sim.trace.Tracer` stream.  It records four event
families, all as ordinary trace events (so they share the tracer's
sequence numbers, category filtering and canonical JSONL export):

``span.begin``
    Opens a span: ``sid`` (dense per-run id), ``name``, ``track`` (the
    execution lane it runs on), ``bucket`` (a Figure-3 category the
    span's self-time is charged to on the critical path), optional
    ``parent`` (the enclosing open span on the same track) and
    optional ``link`` (the flow id that *caused* this span — e.g. the
    message whose arrival dispatched a handler).

``span.end``
    Closes a span by ``sid``.

``span.flow``
    A cross-track causal edge's *source* point: ``fid`` (dense per-run
    id), ``kind`` (``page_req``, ``diff``, ``lock_grant``, ...),
    ``bucket``, the source ``track`` and (when a span is open there)
    the source span ``src``.

``span.wake``
    A flow edge's *sink* point: flow ``fid`` arrived at ``track`` and
    unblocked whatever was waiting there.  One flow may wake several
    waiters (a diff apply releasing all parked fetchers).

Tracks name the serial execution lanes of the simulated machine:
``r<rank>`` for application processes, ``h<node>`` for host protocol
handler activations, ``ni<node>`` for NI firmware, ``b<episode>`` for
barrier-coordinator processes.  Within one track, activity is serial,
so "the latest wake before time t" is exactly the event that made the
track runnable — the property the critical-path extractor
(:mod:`repro.analysis.critpath`) relies on when it walks backwards
from the end of the run.

Recording spans never touches the simulator: no events, no timeouts,
no process state.  A run with spans enabled therefore keeps the exact
event schedule of the same run without them; only the trace stream
gains ``span.*`` records (and their sequence numbers).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .trace import Tracer

__all__ = ["SpanTracer", "rank_track", "node_track", "nic_track"]


def rank_track(rank: int) -> str:
    """Track name for an application process (rank)."""
    return f"r{rank}"


def node_track(node: int) -> str:
    """Track name for a node's host-side protocol handler lane."""
    return f"h{node}"


def nic_track(node: int) -> str:
    """Track name for a node's NI firmware lane."""
    return f"ni{node}"


class SpanTracer:
    """Records causal spans into a :class:`Tracer`.

    ``sim`` supplies timestamps (anything with a ``now`` attribute).
    Span and flow ids are dense per-instance counters, so same-seed
    runs produce byte-identical span streams.
    """

    def __init__(self, tracer: Tracer, sim) -> None:
        self.tracer = tracer
        self.sim = sim
        self._next_sid = 0
        self._next_fid = 0
        self._stacks: Dict[str, List[int]] = {}
        self._span_track: Dict[int, str] = {}

    # ------------------------------------------------------------- spans

    def current(self, track: str) -> Optional[int]:
        """The innermost open span on ``track`` (None if idle)."""
        stack = self._stacks.get(track)
        return stack[-1] if stack else None

    def begin(self, name: str, track: str, bucket: str = "other",
              link: Optional[int] = None, **fields) -> int:
        """Open a span and return its ``sid``.

        ``link`` names the flow that caused this span (recorded in the
        begin event so the extractor can jump the edge without a
        separate wake record).
        """
        sid = self._next_sid
        self._next_sid += 1
        stack = self._stacks.setdefault(track, [])
        rec: Dict[str, object] = {"sid": sid, "name": name,
                                  "track": track, "bucket": bucket}
        if stack:
            rec["parent"] = stack[-1]
        if link is not None:
            rec["link"] = link
        rec.update(fields)
        self.tracer.record(self.sim.now, "span.begin", **rec)
        stack.append(sid)
        self._span_track[sid] = track
        return sid

    def end(self, sid: Optional[int], **fields) -> None:
        """Close span ``sid`` (no-op when ``sid`` is None).

        Tolerates non-LIFO closing: handler activations on the same
        track may interleave, so the sid is removed wherever it sits
        in the track's stack.
        """
        if sid is None:
            return
        track = self._span_track.get(sid)
        stack = self._stacks.get(track) if track is not None else None
        if stack is not None and sid in stack:
            stack.remove(sid)
        self.tracer.record(self.sim.now, "span.end", sid=sid,
                           track=track, **fields)

    # ------------------------------------------------------------- flows

    def flow(self, track: str, kind: str, bucket: str = "other",
             **fields) -> int:
        """Record a flow source on ``track`` and return its ``fid``.

        The innermost open span on the track (if any) is recorded as
        the source span.
        """
        fid = self._next_fid
        self._next_fid += 1
        rec: Dict[str, object] = {"fid": fid, "kind": kind,
                                  "bucket": bucket, "track": track}
        src = self.current(track)
        if src is not None:
            rec["src"] = src
        rec.update(fields)
        self.tracer.record(self.sim.now, "span.flow", **rec)
        return fid

    def flow_from(self, sid: int, kind: str, bucket: str = "other",
                  **fields) -> int:
        """Record a flow whose source is span ``sid`` explicitly."""
        fid = self._next_fid
        self._next_fid += 1
        track = self._span_track.get(sid)
        self.tracer.record(self.sim.now, "span.flow", fid=fid, kind=kind,
                           bucket=bucket, track=track, src=sid, **fields)
        return fid

    def wake(self, fid: Optional[int], track: Optional[str],
             **fields) -> None:
        """Record that flow ``fid`` unblocked ``track`` here.

        No-op when either is None, so call sites can thread optional
        flow ids without conditionals.
        """
        if fid is None or track is None:
            return
        self.tracer.record(self.sim.now, "span.wake", fid=fid,
                           track=track, **fields)
