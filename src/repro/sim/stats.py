"""Lightweight statistics helpers used across the simulator.

The paper reports means, breakdown percentages and contention ratios;
:class:`RunningStat` accumulates the moments those need without storing
samples, and :class:`TimeBuckets` is the per-process execution-time
breakdown accumulator behind Figure 3.

**Message-accounting convention** (used by ``VMMC.messages_sent`` /
``bytes_sent`` and everything derived from them, e.g. the ``messages``
and ``bytes`` columns of the experiment tables): counts are per
*destination packet stream*.  A unicast send counts one message of
``size`` bytes; a multicast to ``k`` destinations counts ``k``
messages and ``k * size`` bytes, exactly as if it were ``k`` unicast
sends — the NI-multicast saving shows up in host post overhead and
source DMA, not in the wire-traffic accounting.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

__all__ = ["RunningStat", "TimeBuckets", "weighted_mean"]


class RunningStat:
    """Streaming count / mean / variance / min / max accumulator."""

    __slots__ = ("count", "_mean", "_m2", "min", "max", "total")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Combine two accumulators (Chan's parallel algorithm).

        An empty side contributes nothing: its sentinel ``inf``/
        ``-inf`` min/max never reach the merged accumulator, and
        merging two empties yields an empty (not a NaN mean or an
        infinite range in a report).
        """
        merged = RunningStat()
        n = self.count + other.count
        if n == 0:
            return merged
        if self.count == 0 or other.count == 0:
            src = other if self.count == 0 else self
            merged.count = src.count
            merged.total = src.total
            merged._mean = src._mean
            merged._m2 = src._m2
            merged.min = src.min
            merged.max = src.max
            return merged
        delta = other._mean - self._mean
        merged.count = n
        merged.total = self.total + other.total
        merged._mean = self._mean + delta * other.count / n
        merged._m2 = (
            self._m2 + other._m2
            + delta * delta * self.count * other.count / n
        )
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def __repr__(self) -> str:
        if not self.count:
            return "RunningStat(n=0)"
        return (f"RunningStat(n={self.count}, mean={self.mean:.3f}, "
                f"min={self.min:.3f}, max={self.max:.3f})")


# Execution-time bucket names, in the order Figure 3 stacks them.
BUCKETS = ("compute", "data", "lock", "acqrel", "barrier")


class TimeBuckets:
    """Per-process execution-time breakdown (Figure 3 categories).

    ``compute``  useful work including local memory stalls,
    ``data``     blocked on remote page fetches,
    ``lock``     blocked on mutual-exclusion lock acquires,
    ``acqrel``   acquire/release primitives used purely for consistency,
    ``barrier``  blocked at barriers (wait + barrier protocol work).
    """

    __slots__ = tuple(BUCKETS)

    def __init__(self):
        for name in BUCKETS:
            setattr(self, name, 0.0)

    def charge(self, bucket: str, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"negative charge {amount!r} to {bucket!r}")
        setattr(self, bucket, getattr(self, bucket) + amount)

    @property
    def total(self) -> float:
        return sum(getattr(self, name) for name in BUCKETS)

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in BUCKETS}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "TimeBuckets":
        """Inverse of :meth:`as_dict` (used by the run-cache codec)."""
        buckets = cls()
        for name in BUCKETS:
            setattr(buckets, name, float(data.get(name, 0.0)))
        return buckets

    def fractions(self) -> Dict[str, float]:
        tot = self.total
        if tot <= 0:
            return {name: 0.0 for name in BUCKETS}
        return {name: getattr(self, name) / tot for name in BUCKETS}

    @staticmethod
    def average(buckets: List["TimeBuckets"]) -> "TimeBuckets":
        """Mean breakdown across processes (as Figure 3 averages)."""
        avg = TimeBuckets()
        if not buckets:
            return avg
        for name in BUCKETS:
            avg.charge(name, sum(getattr(b, name) for b in buckets)
                       / len(buckets))
        return avg

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}={getattr(self, n):.1f}" for n in BUCKETS)
        return f"TimeBuckets({parts})"


def weighted_mean(pairs: Iterable[tuple]) -> float:
    """Mean of ``(value, weight)`` pairs; 0.0 when total weight is 0."""
    num = 0.0
    den = 0.0
    for value, weight in pairs:
        num += value * weight
        den += weight
    return num / den if den else 0.0
