"""The declared trace-record schema: one registry for every category.

Every ``tracer.record``/``tracer.emit`` call in the simulator must use
a category family declared here with exactly the declared fields; the
static analyzer (:mod:`repro.analysis.static.trc`) checks every call
site against this registry, and the offline tooling (sanitizer,
critical-path extractor, Perfetto exporter) can rely on the field
names without defensive ``get`` chains.

Declarations are *literal on purpose*: the analyzer reads this module
by AST (``family("name", [...])`` calls with constant arguments), so
the registry stays checkable without importing the package under
analysis.  Keep every ``family(...)`` call fully literal.

``variadic`` families carry caller-defined extra fields beyond the
declared ones (the span records forward ``**fields``); for those the
analyzer only checks that literal keywords it can see are not
misspellings of declared fields' names, and that required fields are
present when the call spells its keywords out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

__all__ = ["TraceFamily", "TRACE_SCHEMA", "family"]


@dataclass(frozen=True)
class TraceFamily:
    """Declared shape of one trace category.

    ``fields`` is every field name a record of this family may carry;
    ``required`` is the subset every record must carry.  ``variadic``
    families may carry extra, caller-defined fields on top.
    """

    name: str
    fields: frozenset
    required: frozenset
    variadic: bool = False
    doc: str = ""


def family(name: str, fields: Iterable[str] = (),
           required: Optional[Iterable[str]] = None,
           variadic: bool = False, doc: str = "") -> TraceFamily:
    """Declare one trace family (``required`` defaults to ``fields``)."""
    fset = frozenset(fields)
    req = fset if required is None else frozenset(required)
    if not req <= fset:
        raise ValueError(f"{name}: required fields {sorted(req - fset)} "
                         f"not in declared fields")
    return TraceFamily(name=name, fields=fset, required=req,
                       variadic=variadic, doc=doc)


def _build(*families: TraceFamily) -> Dict[str, TraceFamily]:
    out: Dict[str, TraceFamily] = {}
    for fam in families:
        if fam.name in out:
            raise ValueError(f"duplicate trace family {fam.name!r}")
        out[fam.name] = fam
    return out


#: category -> declared shape.  Grouped by emitting subsystem.
TRACE_SCHEMA: Dict[str, TraceFamily] = _build(
    # ---- SVM protocol core (repro.svm.protocol) ----
    family("fault.read", ["rank", "gid"],
           doc="read page fault taken by a rank"),
    family("fault.fetch", ["node", "gid", "needed", "clock"],
           doc="page fault escalated to a remote fetch"),
    family("fault.done", ["node", "gid"],
           doc="page fault fully serviced"),
    family("fetch.ok", ["node", "gid", "snapshot", "needed"],
           doc="page fetch validated against the home's timestamp"),
    family("fetch.retry", ["node", "gid"],
           doc="stale home copy: the fetch re-issues"),
    family("fetch.retry_exhausted",
           ["node", "gid", "home", "retries", "needed", "snapshot"],
           doc="fetch retry budget exhausted (escalates to interrupt)"),
    family("interval.close",
           ["node", "index", "pages", "written", "clock"],
           doc="logical interval closed at a node"),
    family("diff.flush", ["node", "gid", "home", "runs", "bytes"],
           doc="diff computed and flushed toward a page home"),
    family("home.apply", ["gid", "writer", "index"],
           doc="diff applied at the home copy"),
    family("clock.advance", ["node", "clock", "want"],
           doc="node vector-clock component advanced"),
    family("lock.acquire", ["rank", "lock"],
           doc="application-level lock acquired"),
    family("lock.release", ["rank", "lock"],
           doc="application-level lock released"),
    family("barrier.enter", ["rank", "epoch"],
           doc="rank arrived at a barrier"),
    family("barrier.exit", ["rank", "epoch"],
           doc="rank released from a barrier"),
    family("barrier.epoch", ["epoch", "clock"],
           doc="barrier episode committed at the master"),

    # ---- SVM host-level locks (repro.svm.locks) ----
    family("svmlock.acquire", ["node", "lock", "rank"],
           doc="host lock protocol: acquire issued"),
    family("svmlock.granted", ["node", "lock", "rank"],
           doc="host lock protocol: grant arrived"),
    family("svmlock.release", ["node", "lock", "rank", "queue"],
           doc="host lock protocol: release"),
    family("svmlock.wait", ["node", "lock", "requester", "queue"],
           doc="host lock protocol: request queued at owner"),
    family("svmlock.grant",
           ["node", "lock", "requester", "queue", "present", "held"],
           doc="host lock protocol: owner hands the lock over"),

    # ---- NI firmware locks (repro.vmmc.locks) ----
    family("nilock.acquire", ["node", "lock"],
           doc="NI lock: acquire posted to the firmware"),
    family("nilock.chain", ["home", "lock", "requester", "prev"],
           doc="NI lock: home chained the requester after the tail"),
    family("nilock.wait", ["node", "lock", "requester", "queue"],
           doc="NI lock: forward queued behind the current owner"),
    family("nilock.release", ["node", "lock", "queue"],
           doc="NI lock: host released; token back in the NI"),
    family("nilock.grant",
           ["node", "lock", "requester", "queue", "present", "held"],
           doc="NI lock: token granted to a remote waiter"),
    family("nilock.granted", ["node", "lock"],
           doc="NI lock: token arrived at the requester"),

    # ---- network fabric (repro.hw.network) ----
    family("net.route",
           ["src", "dst", "kind", "size", "hops", "latency_us"],
           doc="packet routed on a non-crossbar topology"),

    # ---- fault injection (repro.faults.injector) ----
    family("fault.drop",
           ["src", "dst", "kind", "msg", "idx", "size",
            "acks_msg", "acker"],
           required=["src", "dst", "kind", "msg", "idx", "size"],
           doc="injected packet loss (ack drops name the acked msg)"),
    family("fault.reorder", ["src", "dst", "kind", "msg", "idx"],
           doc="injected packet reorder (extra latency)"),
    family("fault.dup", ["src", "dst", "kind", "msg", "idx"],
           doc="injected packet duplication"),

    # ---- drop-tolerant transport (repro.faults.reliable) ----
    family("retx.ack", ["node", "msg", "dst"],
           doc="receiver NI acked a completed message"),
    family("retx.timeout",
           ["node", "msg", "dst", "seq", "attempt", "rto"],
           doc="sender watchdog fired for an unacked message"),
    family("retx.resend",
           ["node", "msg", "dst", "idx", "seq", "attempt"],
           doc="packet retransmitted from NI memory"),
    family("retx.exhausted",
           ["node", "msg", "dst", "kind", "seq", "attempts"],
           doc="retransmit budget exhausted (simulation error)"),
    family("retx.dup_discard", ["node", "src", "msg", "idx", "kind"],
           doc="receiver NI discarded an already-processed copy"),

    # ---- causal spans (repro.sim.spans) ----
    family("span.begin", ["sid", "name", "track", "bucket",
                          "parent", "link"],
           required=["sid", "name", "track", "bucket"], variadic=True,
           doc="span opened on a track (carries free-form context)"),
    family("span.end", ["sid", "track"], variadic=True,
           doc="span closed by sid"),
    family("span.flow", ["fid", "kind", "bucket", "track", "src"],
           required=["fid", "kind", "bucket", "track"], variadic=True,
           doc="causal flow source point"),
    family("span.wake", ["fid", "track"], variadic=True,
           doc="causal flow sink point (track unblocked)"),

    # ---- runtime time accounting (repro.runtime.runner) ----
    family("prof.rank", ["rank", "wall_us", "bucket_us", "residual_us"],
           doc="per-rank wall vs bucket-sum residual of a profiled run"),

    # ---- sampled telemetry (repro.obs.timeseries) ----
    family("ts.sample", ["metric", "node", "value"],
           doc="telemetry slice sample: per-metric max over nodes "
               "(node is the argmax; -1 for machine-wide probes)"),
    family("ts.rollup",
           ["metric", "nodes", "count", "mean", "peak", "peak_node"],
           doc="end-of-run telemetry rollup for one sampled metric"),
)


def schema_fields(category: str) -> Tuple[str, ...]:
    """Sorted declared fields of ``category`` (KeyError if unknown)."""
    return tuple(sorted(TRACE_SCHEMA[category].fields))
