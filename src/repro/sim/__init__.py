"""Discrete-event simulation kernel (events, processes, resources, stats)."""

from .engine import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import RateServer, Resource, Store
from .spans import SpanTracer, nic_track, node_track, rank_track
from .stats import BUCKETS, RunningStat, TimeBuckets, weighted_mean
from .trace import TraceEvent, Tracer
from .trace_schema import TRACE_SCHEMA, TraceFamily

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "RateServer",
    "Resource",
    "Store",
    "BUCKETS",
    "RunningStat",
    "TimeBuckets",
    "weighted_mean",
    "TraceEvent",
    "Tracer",
    "TRACE_SCHEMA",
    "TraceFamily",
    "SpanTracer",
    "rank_track",
    "node_track",
    "nic_track",
]
