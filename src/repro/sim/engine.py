"""Discrete-event simulation kernel.

A tiny, deterministic, generator-based discrete-event engine in the
style of SimPy, sized for this project.  Simulated *processes* are
Python generators that ``yield`` :class:`Event` objects; the kernel
resumes a process when the event it is waiting on fires, passing the
event's value back through ``send``.

Time is a ``float``; this project uses microseconds throughout.

Determinism: events scheduled for the same instant fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a
simulation with the same inputs always produces the same trace.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Simulator",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or
    :meth:`fail`) *triggers* it, after which its callbacks run at the
    current simulation instant.  Yielding an already-triggered event
    resumes the process immediately (at the same instant).
    """

    __slots__ = ("sim", "_value", "_exc", "_triggered", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._callbacks: List[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        self.sim._push_triggered(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._exc = exc
        self.sim._push_triggered(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._triggered and self._callbacks is _CONSUMED:
            # Already dispatched: run at once (same sim instant).
            fn(self)
        else:
            self._callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, _CONSUMED
        for fn in callbacks:
            fn(self)


class _Consumed(list):
    """Sentinel callback list for dispatched events (append = run now)."""

    def append(self, fn):  # type: ignore[override]
        raise SimulationError("internal: append to consumed callback list")


_CONSUMED = _Consumed()


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._schedule_at(sim.now + delay, self)


class Process(Event):
    """A running simulated process; also an event that fires on return.

    The wrapped generator yields :class:`Event` instances.  When the
    generator returns, the process event succeeds with the generator's
    return value; an uncaught exception fails the process event (and
    propagates at :meth:`Simulator.run` time if nobody waits on it).
    """

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off at the current instant.
        boot = Event(sim)
        boot.add_callback(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at this instant."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None:
            # Detach: the interrupted wait no longer resumes us.
            try:
                target._callbacks.remove(self._resume)
            except (ValueError, SimulationError):
                pass
        self._waiting_on = None
        kick = Event(self.sim)
        kick.add_callback(lambda _ev: self._step(Interrupt(cause)))
        kick.succeed()

    # -- kernel internals ------------------------------------------------

    def _resume(self, ev: Event) -> None:
        self._waiting_on = None
        if ev._exc is not None:
            self._step(ev._exc)
        else:
            self._step(None, ev._value)

    def _step(self, exc: Optional[BaseException], value: Any = None) -> None:
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - process crashed
            self.fail(err)
            self.sim._note_crash(self, err)
            return
        if not isinstance(target, Event):
            self._gen.close()
            err = SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event"
            )
            self.fail(err)
            self.sim._note_crash(self, err)
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _SliceHook:
    """One registered time-slice observer (see ``add_slice_hook``)."""

    __slots__ = ("width", "fn", "next_at")

    def __init__(self, width: float, fn: Callable[[float], None],
                 next_at: float):
        self.width = width
        self.fn = fn
        self.next_at = next_at


class Simulator:
    """The event loop: a time-ordered queue of triggered events."""

    def __init__(self):
        self._now = 0.0
        self._heap: List = []
        self._seq = 0
        self._crashed: List = []
        self._slice_hooks: List[_SliceHook] = []

    # -- time-slice hooks ---------------------------------------------------

    def add_slice_hook(self, width: float,
                       fn: Callable[[float], None]) -> _SliceHook:
        """Call ``fn(boundary_time)`` at every crossed multiple of
        ``width`` during :meth:`run`.

        Boundaries fire lazily, just before the first event at-or-past
        them is dispatched, with ``now`` set to the boundary — so a
        hook observes exactly the simulation state as of that instant.
        No heap events are created: an idle simulation still drains,
        and with no hooks registered the loop is unchanged (this is
        what keeps unprofiled runs byte-identical).

        Hooks must only *observe* (sample counters, copy state); they
        must not schedule events or resume processes.  Returns a handle
        for :meth:`remove_slice_hook`.
        """
        if width <= 0:
            raise ValueError(f"slice width must be positive, got {width!r}")
        hook = _SliceHook(width, fn, self._now + width)
        self._slice_hooks.append(hook)
        return hook

    def remove_slice_hook(self, hook: _SliceHook) -> None:
        self._slice_hooks.remove(hook)

    @property
    def now(self) -> float:
        return self._now

    # -- construction helpers ---------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run a plain callable after ``delay``; returns its trigger event."""
        ev = self.timeout(delay)
        ev.add_callback(lambda _ev: fn())
        return ev

    def all_of(self, events) -> Event:
        """An event that fires when every event in ``events`` has fired."""
        events = list(events)
        done = self.event()
        remaining = [len(events)]
        if not events:
            done.succeed([])
            return done
        values: List[Any] = [None] * len(events)

        def make_cb(i):
            def cb(ev: Event):
                values[i] = ev._value
                if ev._exc is not None and not done.triggered:
                    done.fail(ev._exc)
                    return
                remaining[0] -= 1
                if remaining[0] == 0 and not done.triggered:
                    done.succeed(values)

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    def any_of(self, events) -> Event:
        """An event that fires when the first of ``events`` fires."""
        events = list(events)
        done = self.event()
        for ev in events:
            def cb(e: Event):
                if not done.triggered:
                    if e._exc is not None:
                        done.fail(e._exc)
                    else:
                        done.succeed(e._value)
            ev.add_callback(cb)
        return done

    # -- execution ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time passes ``until``.

        Returns the simulation time when execution stopped.  Raises the
        first uncaught process exception, if any process crashed.
        """
        # Locals hoisted out of the dispatch loop: attribute lookups on
        # self are a measurable fraction of an event dispatch, and the
        # hook/crash lists are mutated in place (never rebound), so the
        # local bindings stay live.
        heap = self._heap
        heappop = heapq.heappop
        hooks = self._slice_hooks
        crashed = self._crashed
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                self._now = until
                break
            ev = heappop(heap)[2]
            if hooks:
                for hook in hooks:
                    while hook.next_at <= when:
                        self._now = hook.next_at
                        hook.fn(hook.next_at)
                        hook.next_at += hook.width
            self._now = when
            ev._dispatch()
            if crashed:
                _proc, err = crashed[0]
                raise err
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")

    # -- kernel internals ----------------------------------------------------

    def _push_triggered(self, ev: Event) -> None:
        self._schedule_at(self._now, ev)

    def _schedule_at(self, when: float, ev: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, ev))

    def _note_crash(self, proc: Process, err: BaseException) -> None:
        self._crashed.append((proc, err))
