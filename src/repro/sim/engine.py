"""Discrete-event simulation kernel.

A tiny, deterministic, generator-based discrete-event engine in the
style of SimPy, sized for this project.  Simulated *processes* are
Python generators that ``yield`` :class:`Event` objects; the kernel
resumes a process when the event it is waiting on fires, passing the
event's value back through ``send``.

Time is a ``float``; this project uses microseconds throughout.

Determinism: events scheduled for the same instant fire in scheduling
order, so a simulation with the same inputs always produces the same
trace.  The scheduler preserves the historical ``(when, seq)`` total
order — time-ascending, scheduling-order within an instant — but keeps
it *structurally* instead of comparing tuples in one global heap:

* events triggered at the **current instant** (the overwhelmingly
  common case: every ``succeed``/``fail``, every queue hand-off) go to
  a FIFO lane and never touch a heap;
* future events land on a **calendar page** — one append-ordered list
  per distinct timestamp — so an N-event same-time batch costs one
  dict probe per event instead of N ``heappush``es;
* page *keys* (the distinct pending timestamps) sit in a small min-heap
  fallback, the only comparison-based structure left; far-future events
  (watchdog timeouts, retransmit backoffs) cost one heap entry per
  distinct deadline no matter how many events share it.

Appending to a page preserves scheduling order because scheduling calls
happen in dispatch order; draining pages in heap order preserves time
order.  The determinism regression tests pin that this refactor is
byte-identical to the old single-heap loop.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Simulator",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or
    :meth:`fail`) *triggers* it, after which its callbacks run at the
    current simulation instant.  Yielding an already-triggered event
    resumes the process immediately (at the same instant).
    """

    __slots__ = ("sim", "_value", "_exc", "_triggered", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._callbacks: List[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        self.sim._push_triggered(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._exc = exc
        self.sim._push_triggered(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._triggered and self._callbacks is _CONSUMED:
            # Already dispatched: run at once (same sim instant).
            fn(self)
        else:
            self._callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, _CONSUMED
        for fn in callbacks:
            fn(self)


class _Consumed(list):
    """Sentinel callback list for dispatched events (append = run now)."""

    def append(self, fn):  # type: ignore[override]
        raise SimulationError("internal: append to consumed callback list")


_CONSUMED = _Consumed()


class _Hop(Event):
    """A zero-delay callback event (see :meth:`Simulator.defer`).

    Dispatches straight into ``fn`` with none of the Timeout/callback
    machinery: the macro-event NIC drivers issue one of these for every
    kernel hop they mirror from the legacy loops, which makes it a
    hot-path allocation.
    """

    __slots__ = ("_fn",)

    def __init__(self, sim: "Simulator", fn: Callable[[], None]):
        self.sim = sim
        self._fn = fn
        self._value = None
        self._exc = None
        self._triggered = True
        self._callbacks = []

    def _dispatch(self) -> None:
        self._callbacks = _CONSUMED
        self._fn()


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        # Flattened Event.__init__ + scheduling: one Timeout per station
        # hold makes this constructor a hot-path allocation, so it pays
        # to skip the super() call and the ``now`` property.
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.sim = sim
        self._value = value
        self._exc = None
        self._triggered = True
        self._callbacks = []
        sim._schedule_at(sim._now + delay, self)


class Process(Event):
    """A running simulated process; also an event that fires on return.

    The wrapped generator yields :class:`Event` instances.  When the
    generator returns, the process event succeeds with the generator's
    return value; an uncaught exception fails the process event (and
    propagates at :meth:`Simulator.run` time if nobody waits on it).
    """

    __slots__ = ("_gen", "_send", "_throw", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self._gen = gen
        # Bound-method caches: every resume costs one of these lookups.
        self._send = gen.send
        self._throw = gen.throw
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off at the current instant.
        boot = Event(sim)
        boot.add_callback(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at this instant."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None:
            # Detach: the interrupted wait no longer resumes us.
            try:
                target._callbacks.remove(self._resume)
            except (ValueError, SimulationError):
                pass
        self._waiting_on = None
        kick = Event(self.sim)
        kick.add_callback(lambda _ev: self._step(Interrupt(cause)))
        kick.succeed()

    # -- kernel internals ------------------------------------------------

    def _resume(self, ev: Event) -> None:
        self._waiting_on = None
        if ev._exc is not None:
            self._step(ev._exc)
        else:
            self._step(None, ev._value)

    def _step(self, exc: Optional[BaseException], value: Any = None) -> None:
        try:
            if exc is not None:
                target = self._throw(exc)
            else:
                target = self._send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - process crashed
            self.fail(err)
            self.sim._note_crash(self, err)
            return
        if not isinstance(target, Event):
            self._gen.close()
            err = SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event"
            )
            self.fail(err)
            self.sim._note_crash(self, err)
            return
        self._waiting_on = target
        target.add_callback(self._resume)


def _detach(events, cbs) -> None:
    """Remove combination callbacks from still-pending input events.

    Triggered inputs are skipped: their callback list is either about
    to be consumed (harmlessly running the now-inert callback) or has
    already been consumed and must not be touched.
    """
    for ev, cb in zip(events, cbs):
        if not ev._triggered:
            try:
                ev._callbacks.remove(cb)
            except ValueError:
                pass


class _SliceHook:
    """One registered time-slice observer (see ``add_slice_hook``)."""

    __slots__ = ("width", "fn", "next_at")

    def __init__(self, width: float, fn: Callable[[float], None],
                 next_at: float):
        self.width = width
        self.fn = fn
        self.next_at = next_at


class Simulator:
    """The event loop: a time-ordered queue of triggered events.

    Storage is a three-lane calendar (see the module docstring):
    ``_fifo`` holds events due at the current instant in scheduling
    order, ``_pages`` maps each distinct future timestamp to its
    append-ordered event list, and ``_times`` is the min-heap fallback
    holding one entry per pending page.  ``events_dispatched`` counts
    every dispatched event; the ns/event figures in BENCH_grid.json
    divide wall time by it.
    """

    def __init__(self):
        self._now = 0.0
        self._fifo: deque = deque()
        self._pages: dict = {}
        self._times: List[float] = []
        self._crashed: List = []
        self._slice_hooks: List[_SliceHook] = []
        self.events_dispatched = 0

    # -- time-slice hooks ---------------------------------------------------

    def add_slice_hook(self, width: float,
                       fn: Callable[[float], None]) -> _SliceHook:
        """Call ``fn(boundary_time)`` at every crossed multiple of
        ``width`` during :meth:`run`.

        Boundaries fire lazily, just before the first event at-or-past
        them is dispatched, with ``now`` set to the boundary — so a
        hook observes exactly the simulation state as of that instant.
        No heap events are created: an idle simulation still drains,
        and with no hooks registered the loop is unchanged (this is
        what keeps unprofiled runs byte-identical).

        Hooks must only *observe* (sample counters, copy state); they
        must not schedule events or resume processes.  Returns a handle
        for :meth:`remove_slice_hook`.
        """
        if width <= 0:
            raise ValueError(f"slice width must be positive, got {width!r}")
        hook = _SliceHook(width, fn, self._now + width)
        self._slice_hooks.append(hook)
        return hook

    def remove_slice_hook(self, hook: _SliceHook) -> None:
        self._slice_hooks.remove(hook)

    @property
    def now(self) -> float:
        return self._now

    # -- construction helpers ---------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run a plain callable after ``delay``; returns its trigger event."""
        ev = self.timeout(delay)
        ev.add_callback(lambda _ev: fn())
        return ev

    def defer(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` one kernel event later at the current instant.

        Equivalent in dispatch position to ``schedule(0.0, fn)`` — the
        event joins the current instant's FIFO lane — but without the
        Timeout and callback-list overhead."""
        self._fifo.append(_Hop(self, fn))

    def all_of(self, events) -> Event:
        """An event that fires when every event in ``events`` has fired.

        Once the combined event triggers (first failure, or last
        success), its callbacks are detached from every still-pending
        input, so waiting on long-lived events in a retry loop does not
        accumulate dead closures on them.
        """
        events = list(events)
        done = self.event()
        if not events:
            done.succeed([])
            return done
        values: List[Any] = [None] * len(events)
        remaining = [len(events)]
        cbs: List[Callable[[Event], None]] = []

        def make_cb(i):
            def cb(ev: Event):
                if done._triggered:
                    return
                if ev._exc is not None:
                    # Fail without touching ev._value: a failed event
                    # has no value to collect.
                    done.fail(ev._exc)
                    _detach(events, cbs)
                    return
                values[i] = ev._value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(values)

            return cb

        for i, ev in enumerate(events):
            cb = make_cb(i)
            cbs.append(cb)
            ev.add_callback(cb)
        if done._triggered:
            # An already-dispatched input failed the combination while
            # callbacks were still being attached.
            _detach(events, cbs)
        return done

    def any_of(self, events) -> Event:
        """An event that fires when the first of ``events`` fires.

        The shared callback removes itself from every losing input the
        moment a winner triggers: watchdog/retry patterns that race a
        fresh event against the same long-lived one on every iteration
        would otherwise grow that event's callback list without bound.
        """
        events = list(events)
        done = self.event()

        def cb(e: Event):
            if done._triggered:
                return
            if e._exc is not None:
                done.fail(e._exc)
            else:
                done.succeed(e._value)
            _detach(events, [cb] * len(events))

        for ev in events:
            ev.add_callback(cb)
        if done._triggered:
            _detach(events, [cb] * len(events))
        return done

    # -- execution ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time passes ``until``.

        Returns the simulation time when execution stopped.  Raises the
        first uncaught process exception, if any process crashed.
        """
        # Locals hoisted out of the dispatch loop: attribute lookups on
        # self are a measurable fraction of an event dispatch, and the
        # hook/crash lists are mutated in place (never rebound), so the
        # local bindings stay live.
        fifo = self._fifo
        pages = self._pages
        times = self._times
        heappop = heapq.heappop
        hooks = self._slice_hooks
        crashed = self._crashed
        dispatched = 0
        try:
            while True:
                if fifo:
                    if until is not None and self._now > until:
                        break
                    ev = fifo.popleft()
                else:
                    if not times:
                        break
                    when = times[0]
                    if until is not None and when > until:
                        break
                    heappop(times)
                    # Slice hooks fire only here, on time advance:
                    # within an instant ``next_at > now`` already holds
                    # (the old per-pop check was a no-op there).
                    if hooks:
                        for hook in hooks:
                            while hook.next_at <= when:
                                self._now = hook.next_at
                                hook.fn(hook.next_at)
                                hook.next_at += hook.width
                    self._now = when
                    page = pages.pop(when)
                    if len(page) == 1:
                        ev = page[0]
                    else:
                        fifo.extend(page)
                        ev = fifo.popleft()
                dispatched += 1
                ev._dispatch()
                if crashed:
                    _proc, err = crashed[0]
                    raise err
            if until is not None:
                # Horizon-bounded run: fire the boundaries between the
                # last dispatched event and ``until`` (a profiled run
                # would otherwise under-report the tail window and
                # break the sum-equals-wall invariant), then stop the
                # clock exactly at the horizon.
                if hooks:
                    for hook in hooks:
                        while hook.next_at <= until:
                            self._now = hook.next_at
                            hook.fn(hook.next_at)
                            hook.next_at += hook.width
                if until > self._now:
                    self._now = until
            return self._now
        finally:
            self.events_dispatched += dispatched

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if self._fifo:
            return self._now
        return self._times[0] if self._times else float("inf")

    # -- kernel internals ----------------------------------------------------

    def _push_triggered(self, ev: Event) -> None:
        self._fifo.append(ev)

    def _schedule_at(self, when: float, ev: Event) -> None:
        if when <= self._now:
            self._fifo.append(ev)
            return
        page = self._pages.get(when)
        if page is None:
            self._pages[when] = [ev]
            heapq.heappush(self._times, when)
        else:
            page.append(ev)

    def _note_crash(self, proc: Process, err: BaseException) -> None:
        self._crashed.append((proc, err))
