"""Structured event tracing for simulations.

A :class:`Tracer` collects timestamped, categorized events from any
instrumented component (the SVM protocol emits faults, fetches,
flushes, lock and barrier events).  Useful to debug a protocol
schedule, to build timelines, or to assert fine-grained behaviour in
tests without threading counters everywhere.

    tracer = Tracer(categories={"fetch", "lock"})
    proto = HLRCProtocol(machine, GENIMA, tracer=tracer)
    ...
    print(tracer.to_text(limit=50))
    # count() matches one exact category; count_prefix() aggregates a
    # dotted family the way filter() does:
    assert tracer.count("fetch.retry") == 0
    assert tracer.count_prefix("fetch") == len(tracer.filter("fetch"))
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``seq`` is the tracer-assigned record order: a monotonically
    increasing sequence number that gives events a stable total order
    even when several fire at the same simulated instant (the engine
    dispatches same-time events in scheduling order, so record order
    *is* causal order within an instant).
    """

    t: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.t:12.2f} #{self.seq:06d}] {self.category:20s} {parts}"

    def to_json(self) -> str:
        """One-line canonical JSON (stable key order) for this event."""
        import json
        return json.dumps(
            {"seq": self.seq, "t": self.t, "category": self.category,
             "fields": self.fields},
            sort_keys=True, separators=(",", ":"))


class Tracer:
    """Bounded, filterable event recorder.

    ``categories`` filters at record time on the *prefix* before the
    first dot (``"fetch"`` admits ``"fetch.retry"``); None records
    everything.  ``capacity`` bounds memory (oldest events drop);
    counts are kept for all admitted events regardless.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 capacity: Optional[int] = 100_000):
        self.categories = set(categories) if categories is not None \
            else None
        self._events: deque = deque(maxlen=capacity)
        self._counts: Counter = Counter()
        self._seq = 0
        #: category -> admission decision memo; ``wants`` is on the
        #: per-event hot path and the prefix split is pure overhead
        #: after the first sighting of a category.  Depends only on
        #: ``categories``, so it survives :meth:`clear`.
        self._admit: dict = {}

    # ------------------------------------------------------------- record

    def wants(self, category: str) -> bool:
        if self.categories is None:
            return True
        admit = self._admit.get(category)
        if admit is None:
            admit = category.split(".", 1)[0] in self.categories
            self._admit[category] = admit
        return admit

    def record(self, t: float, category: str, **fields) -> None:
        # Fast path: a no-sink tracer (``categories=()``) or a filtered
        # category returns before touching counters or allocating a
        # TraceEvent — the memo makes the rejection one dict probe.
        categories = self.categories
        if categories is not None:
            admit = self._admit.get(category)
            if admit is None:
                admit = category.split(".", 1)[0] in categories
                self._admit[category] = admit
            if not admit:
                return
        self._counts[category] += 1
        self._seq += 1
        self._events.append(TraceEvent(t=t, category=category,
                                       fields=fields, seq=self._seq))

    #: hot-path alias: instrumented components may hold a bound
    #: ``tracer.emit`` reference; it shares ``record``'s fast path.
    emit = record

    # -------------------------------------------------------------- query

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def filter(self, category: str) -> List[TraceEvent]:
        """Events whose category equals or starts with ``category``."""
        return [e for e in self._events
                if e.category == category
                or e.category.startswith(category + ".")]

    def count(self, category: str) -> int:
        """Total admitted events for an *exact* category.

        ``count("fetch")`` does **not** include ``fetch.retry``; use
        :meth:`count_prefix` for family totals.
        """
        return self._counts[category]

    def count_prefix(self, category: str) -> int:
        """Total admitted events whose category equals ``category`` or
        is a dot-qualified refinement of it — the same match rule as
        :meth:`filter`, but counting all admitted events (including
        ones a bounded ``capacity`` has already dropped)."""
        prefix = category + "."
        return self._counts[category] + sum(
            n for c, n in self._counts.items() if c.startswith(prefix))

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def between(self, t0: float, t1: float) -> List[TraceEvent]:
        return [e for e in self._events if t0 <= e.t <= t1]

    def to_text(self, limit: Optional[int] = None) -> str:
        events = self.events
        if limit is not None:
            events = events[-limit:]
        return "\n".join(str(e) for e in events)

    def clear(self) -> None:
        self._events.clear()
        self._counts.clear()
        self._seq = 0

    # ------------------------------------------------------------- export

    def to_jsonl(self) -> str:
        """All retained events as canonical JSON lines.

        Two runs of the same deterministic simulation must produce
        byte-identical streams; the determinism regression tests (and
        ``repro check``) rely on this.
        """
        return "\n".join(e.to_json() for e in self._events)

    def to_chrome_trace(self, rank_field: str = "rank") -> List[dict]:
        """Events in Chrome tracing (``chrome://tracing`` / Perfetto)
        JSON format.

        ``span.begin``/``span.end`` records (see
        :mod:`repro.sim.spans`) become duration events (``ph: B/E``)
        and ``span.flow``/``span.wake`` become flow events
        (``ph: s/f``), so a spanned run renders as nested slices with
        causal arrows.  Every other category stays an instant event
        (``ph: i``) on its rank's row.  Rows: ranks first (tid ==
        rank, shared with ``r<k>`` span tracks), then the remaining
        span tracks, then one dedicated row for instant events that
        carry no ``rank_field`` (previously these collided with rank
        0).  Chrome metadata events (``ph: M``) label the process and
        every row."""
        import re
        span_cats = {"span.begin", "span.end", "span.flow", "span.wake"}
        events = list(self._events)

        # -- pre-pass: discover rows and id->name maps
        ranks: set = set()
        tracks: set = set()
        unranked = False
        flow_kind: Dict[Any, str] = {}
        span_name: Dict[Any, str] = {}
        for e in events:
            if e.category in span_cats:
                track = e.fields.get("track")
                if isinstance(track, str):
                    tracks.add(track)
                if e.category == "span.flow":
                    flow_kind[e.fields.get("fid")] = \
                        e.fields.get("kind", "flow")
                elif e.category == "span.begin":
                    span_name[e.fields.get("sid")] = \
                        e.fields.get("name", "span")
            else:
                rank = e.fields.get(rank_field)
                if isinstance(rank, int) and not isinstance(rank, bool):
                    ranks.add(rank)
                else:
                    unranked = True

        order = {"r": 0, "h": 1, "ni": 2, "b": 3}

        def track_key(tr: str):
            m = re.fullmatch(r"([a-z]+)(\d+)", tr)
            if m:
                return (order.get(m.group(1), 4), m.group(1),
                        int(m.group(2)))
            return (5, tr, 0)

        for tr in tracks:                  # r<k> tracks share rank rows
            m = re.fullmatch(r"r(\d+)", tr)
            if m:
                ranks.add(int(m.group(1)))
        tid_of: Dict[Any, int] = {}
        next_tid = (max(ranks) + 1) if ranks else 0
        for tr in sorted(tracks, key=track_key):
            m = re.fullmatch(r"r(\d+)", tr)
            if m:
                tid_of[tr] = int(m.group(1))
            else:
                tid_of[tr] = next_tid
                next_tid += 1
        shared_tid = next_tid              # rank-less instant events

        # -- metadata: label the process and every row
        out: List[dict] = [{"name": "process_name", "ph": "M", "pid": 1,
                            "args": {"name": "repro"}}]
        for r in sorted(ranks):
            out.append({"name": "thread_name", "ph": "M", "pid": 1,
                        "tid": r, "args": {"name": f"rank {r}"}})
        for tr in sorted(tracks, key=track_key):
            if re.fullmatch(r"r(\d+)", tr):
                continue                   # labeled as its rank above
            out.append({"name": "thread_name", "ph": "M", "pid": 1,
                        "tid": tid_of[tr], "args": {"name": tr}})
        if unranked:
            out.append({"name": "thread_name", "ph": "M", "pid": 1,
                        "tid": shared_tid, "args": {"name": "(events)"}})

        # -- the events themselves, in trace order
        for e in events:
            f = e.fields
            if e.category in span_cats:
                tid = tid_of.get(f.get("track"), shared_tid)
                if e.category == "span.begin":
                    out.append({"name": f.get("name", "span"), "ph": "B",
                                "ts": e.t, "pid": 1, "tid": tid,
                                "args": dict(f)})
                    link = f.get("link")
                    if link is not None:   # arrow into the new slice
                        out.append({"name": flow_kind.get(link, "flow"),
                                    "ph": "f", "bp": "e", "id": link,
                                    "cat": "flow", "ts": e.t, "pid": 1,
                                    "tid": tid})
                elif e.category == "span.end":
                    out.append({"name": span_name.get(f.get("sid"),
                                                      "span"),
                                "ph": "E", "ts": e.t, "pid": 1,
                                "tid": tid, "args": dict(f)})
                elif e.category == "span.flow":
                    out.append({"name": f.get("kind", "flow"), "ph": "s",
                                "id": f.get("fid"), "cat": "flow",
                                "ts": e.t, "pid": 1, "tid": tid,
                                "args": dict(f)})
                else:                      # span.wake
                    out.append({"name": flow_kind.get(f.get("fid"),
                                                      "flow"),
                                "ph": "f", "bp": "e",
                                "id": f.get("fid"), "cat": "flow",
                                "ts": e.t, "pid": 1, "tid": tid,
                                "args": dict(f)})
            else:
                rank = f.get(rank_field)
                has_rank = (isinstance(rank, int)
                            and not isinstance(rank, bool))
                out.append({"name": e.category, "ph": "i", "ts": e.t,
                            "pid": 1,
                            "tid": rank if has_rank else shared_tid,
                            "s": "t", "args": dict(f)})
        return out

    def save_chrome_trace(self, path, rank_field: str = "rank") -> None:
        """Write the Chrome-tracing JSON to ``path``."""
        import json
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(rank_field=rank_field), fh)
