"""Structured event tracing for simulations.

A :class:`Tracer` collects timestamped, categorized events from any
instrumented component (the SVM protocol emits faults, fetches,
flushes, lock and barrier events).  Useful to debug a protocol
schedule, to build timelines, or to assert fine-grained behaviour in
tests without threading counters everywhere.

    tracer = Tracer(categories={"fetch", "lock"})
    proto = HLRCProtocol(machine, GENIMA, tracer=tracer)
    ...
    print(tracer.to_text(limit=50))
    # count() matches one exact category; count_prefix() aggregates a
    # dotted family the way filter() does:
    assert tracer.count("fetch.retry") == 0
    assert tracer.count_prefix("fetch") == len(tracer.filter("fetch"))

Storage is **columnar** by default: an admitted record appends a float
timestamp to an ``array('d')``, an interned category id to an
``array('H')`` and the field dict to a parallel list — no
:class:`TraceEvent` object, no per-record counter update.  Sequence
numbers are implicit (``seq = dropped + index + 1``), per-category
counts are folded lazily from the id columns, and :class:`TraceEvent`
rows are materialized only on query, so ``to_jsonl()`` (and everything
the sanitizer/critpath readers see) is byte-identical to the historical
one-object-per-record sink.  That legacy sink is still available as
``Tracer(sink="tuples")``; the golden regression tests compare the two
bytewise on a full ladder cell.

``flush()`` seals the mutable tail into a frozen segment; the profiler
calls it once per time slice so a long traced run grows a list of
immutable column blocks instead of one ever-reallocating array.
"""

from __future__ import annotations

from array import array
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["TraceEvent", "Tracer"]

#: one sealed column block: (timestamps, category ids, field dicts)
_Segment = Tuple[array, array, List[Dict[str, Any]]]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``seq`` is the tracer-assigned record order: a monotonically
    increasing sequence number that gives events a stable total order
    even when several fire at the same simulated instant (the engine
    dispatches same-time events in scheduling order, so record order
    *is* causal order within an instant).
    """

    t: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.t:12.2f} #{self.seq:06d}] {self.category:20s} {parts}"

    def to_json(self) -> str:
        """One-line canonical JSON (stable key order) for this event."""
        import json
        return json.dumps(
            {"seq": self.seq, "t": self.t, "category": self.category,
             "fields": self.fields},
            sort_keys=True, separators=(",", ":"))


class Tracer:
    """Bounded, filterable event recorder (columnar storage).

    ``categories`` filters at record time on the *prefix* before the
    first dot (``"fetch"`` admits ``"fetch.retry"``); None records
    everything.  ``capacity`` bounds memory (oldest events drop);
    counts are kept for all admitted events regardless.  ``sink``
    selects the storage engine: ``"columnar"`` (default) or
    ``"tuples"`` (the legacy one-TraceEvent-per-record deque, kept for
    bytewise cross-validation).
    """

    def __new__(cls, categories: Optional[Iterable[str]] = None,
                capacity: Optional[int] = 100_000,
                sink: str = "columnar"):
        if sink not in ("columnar", "tuples"):
            raise ValueError(f"unknown trace sink {sink!r}")
        if cls is Tracer and sink == "tuples":
            return object.__new__(_TupleTracer)
        return object.__new__(cls)

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 capacity: Optional[int] = 100_000,
                 sink: str = "columnar"):
        self.categories = set(categories) if categories is not None \
            else None
        self.capacity = capacity
        #: category -> admission decision memo; ``wants`` is on the
        #: per-event hot path and the prefix split is pure overhead
        #: after the first sighting of a category.  Depends only on
        #: ``categories``, so it survives :meth:`clear`.
        self._admit: dict = {}
        #: interned category table: id -> name and name -> id.  Ids are
        #: append-ordered and survive :meth:`clear` (they never leak
        #: into exported output, only into the id columns).
        self._cats: List[str] = []
        self._cid: Dict[str, int] = {}
        self._segs: List[_Segment] = []      # sealed column blocks
        self._ts: array = array("d")         # active timestamps
        self._cids: array = array("H")       # active category ids
        self._fds: List[Dict[str, Any]] = []  # active field dicts
        self._seq = 0                        # total admitted ever
        self._dropped = 0                    # admitted but evicted
        self._dropped_counts: Counter = Counter()
        self._counts_memo: Optional[Tuple[int, Counter]] = None
        # Eviction is amortized: the record path only checks the active
        # block's length against this threshold; a query trims exactly.
        self._trim_at = (max(2 * capacity, 1)
                         if capacity is not None else float("inf"))

    # ------------------------------------------------------------- record

    def wants(self, category: str) -> bool:
        if self.categories is None:
            return True
        admit = self._admit.get(category)
        if admit is None:
            admit = category.split(".", 1)[0] in self.categories
            self._admit[category] = admit
        return admit

    def record(self, t: float, category: str, **fields) -> None:
        # Fast path: a no-sink tracer (``categories=()``) or a filtered
        # category returns before touching any storage — the memo makes
        # the rejection one dict probe.  An admitted record is three
        # appends and an intern probe; counts and TraceEvent objects
        # are deferred to query time.
        categories = self.categories
        if categories is not None:
            admit = self._admit.get(category)
            if admit is None:
                admit = category.split(".", 1)[0] in categories
                self._admit[category] = admit
            if not admit:
                return
        cid = self._cid.get(category)
        if cid is None:
            cid = len(self._cats)
            self._cats.append(category)
            self._cid[category] = cid
        self._seq += 1
        self._ts.append(t)
        self._cids.append(cid)
        fds = self._fds
        fds.append(fields)
        if len(fds) >= self._trim_at:
            self._seal()
            self._trim()

    #: hot-path alias: instrumented components may hold a bound
    #: ``tracer.emit`` reference; it shares ``record``'s fast path.
    emit = record

    # ------------------------------------------------- columnar internals

    def _seal(self) -> None:
        """Freeze the active block into the segment list."""
        if self._fds:
            self._segs.append((self._ts, self._cids, self._fds))
            self._ts = array("d")
            self._cids = array("H")
            self._fds = []

    def _retained(self) -> int:
        return (sum(len(s[2]) for s in self._segs) + len(self._fds))

    def _trim(self) -> None:
        """Evict oldest records until ``capacity`` holds.

        Matches ``deque(maxlen=capacity)`` semantics exactly: the
        retained window is always the last ``capacity`` admitted
        records.  Evicted categories fold into ``_dropped_counts`` so
        :meth:`count` keeps covering every admitted record.
        """
        cap = self.capacity
        if cap is None:
            return
        excess = self._retained() - cap
        if excess <= 0:
            return
        self._seal()
        segs = self._segs
        cats = self._cats
        folded: Counter = Counter()
        while excess > 0 and segs:
            ts, cids, fds = segs[0]
            n = len(fds)
            if n <= excess:
                folded.update(cids)
                segs.pop(0)
                excess -= n
                self._dropped += n
            else:
                folded.update(cids[:excess])
                segs[0] = (ts[excess:], cids[excess:], fds[excess:])
                self._dropped += excess
                excess = 0
        for cid, n in folded.items():
            self._dropped_counts[cats[cid]] += n
        self._counts_memo = None

    def flush(self) -> None:
        """Seal the active block (called by the profiler per slice)."""
        self._trim()
        self._seal()

    def _rows(self) -> Iterator[Tuple[int, float, str, Dict[str, Any]]]:
        """Yield ``(seq, t, category, fields)`` for retained records."""
        self._trim()
        seq = self._dropped
        cats = self._cats
        for ts, cids, fds in self._segs:
            for i in range(len(fds)):
                seq += 1
                yield seq, ts[i], cats[cids[i]], fds[i]
        ts, cids, fds = self._ts, self._cids, self._fds
        for i in range(len(fds)):
            seq += 1
            yield seq, ts[i], cats[cids[i]], fds[i]

    def _total_counts(self) -> Counter:
        memo = self._counts_memo
        if memo is not None and memo[0] == self._seq:
            return memo[1]
        by_cid: Counter = Counter()
        for _ts, cids, _fds in self._segs:
            by_cid.update(cids)
        by_cid.update(self._cids)
        cats = self._cats
        total: Counter = Counter()
        for cid, n in by_cid.items():
            total[cats[cid]] = n
        total.update(self._dropped_counts)
        self._counts_memo = (self._seq, total)
        return total

    # -------------------------------------------------------------- query

    @property
    def events(self) -> List[TraceEvent]:
        """Retained records, lazily materialized as :class:`TraceEvent`."""
        return [TraceEvent(t=t, category=c, fields=f, seq=s)
                for s, t, c, f in self._rows()]

    def filter(self, category: str) -> List[TraceEvent]:
        """Events whose category equals or starts with ``category``."""
        prefix = category + "."
        return [TraceEvent(t=t, category=c, fields=f, seq=s)
                for s, t, c, f in self._rows()
                if c == category or c.startswith(prefix)]

    def count(self, category: str) -> int:
        """Total admitted events for an *exact* category.

        ``count("fetch")`` does **not** include ``fetch.retry``; use
        :meth:`count_prefix` for family totals.
        """
        return self._total_counts()[category]

    def count_prefix(self, category: str) -> int:
        """Total admitted events whose category equals ``category`` or
        is a dot-qualified refinement of it — the same match rule as
        :meth:`filter`, but counting all admitted events (including
        ones a bounded ``capacity`` has already dropped)."""
        counts = self._total_counts()
        prefix = category + "."
        return counts[category] + sum(
            n for c, n in counts.items() if c.startswith(prefix))

    def counts(self) -> Dict[str, int]:
        return dict(self._total_counts())

    def between(self, t0: float, t1: float) -> List[TraceEvent]:
        return [TraceEvent(t=t, category=c, fields=f, seq=s)
                for s, t, c, f in self._rows() if t0 <= t <= t1]

    def to_text(self, limit: Optional[int] = None) -> str:
        events = self.events
        if limit is not None:
            events = events[-limit:]
        return "\n".join(str(e) for e in events)

    def clear(self) -> None:
        self._segs = []
        self._ts = array("d")
        self._cids = array("H")
        self._fds = []
        self._seq = 0
        self._dropped = 0
        self._dropped_counts = Counter()
        self._counts_memo = None

    # ------------------------------------------------------------- export

    def to_jsonl(self) -> str:
        """All retained events as canonical JSON lines.

        Two runs of the same deterministic simulation must produce
        byte-identical streams; the determinism regression tests (and
        ``repro check``) rely on this.  Serialized straight from the
        columns — same bytes as :meth:`TraceEvent.to_json` per row.
        """
        import json
        dumps = json.dumps
        return "\n".join(
            dumps({"seq": s, "t": t, "category": c, "fields": f},
                  sort_keys=True, separators=(",", ":"))
            for s, t, c, f in self._rows())

    def to_chrome_trace(self, rank_field: str = "rank") -> List[dict]:
        """Events in Chrome tracing (``chrome://tracing`` / Perfetto)
        JSON format.

        ``span.begin``/``span.end`` records (see
        :mod:`repro.sim.spans`) become duration events (``ph: B/E``)
        and ``span.flow``/``span.wake`` become flow events
        (``ph: s/f``), so a spanned run renders as nested slices with
        causal arrows.  Every other category stays an instant event
        (``ph: i``) on its rank's row.  Rows: ranks first (tid ==
        rank, shared with ``r<k>`` span tracks), then the remaining
        span tracks, then one dedicated row for instant events that
        carry no ``rank_field`` (previously these collided with rank
        0).  Chrome metadata events (``ph: M``) label the process and
        every row."""
        import re
        span_cats = {"span.begin", "span.end", "span.flow", "span.wake"}
        events = self.events

        # -- pre-pass: discover rows and id->name maps
        ranks: set = set()
        tracks: set = set()
        unranked = False
        flow_kind: Dict[Any, str] = {}
        span_name: Dict[Any, str] = {}
        for e in events:
            if e.category in span_cats:
                track = e.fields.get("track")
                if isinstance(track, str):
                    tracks.add(track)
                if e.category == "span.flow":
                    flow_kind[e.fields.get("fid")] = \
                        e.fields.get("kind", "flow")
                elif e.category == "span.begin":
                    span_name[e.fields.get("sid")] = \
                        e.fields.get("name", "span")
            else:
                rank = e.fields.get(rank_field)
                if isinstance(rank, int) and not isinstance(rank, bool):
                    ranks.add(rank)
                else:
                    unranked = True

        order = {"r": 0, "h": 1, "ni": 2, "b": 3}

        def track_key(tr: str):
            m = re.fullmatch(r"([a-z]+)(\d+)", tr)
            if m:
                return (order.get(m.group(1), 4), m.group(1),
                        int(m.group(2)))
            return (5, tr, 0)

        for tr in tracks:                  # r<k> tracks share rank rows
            m = re.fullmatch(r"r(\d+)", tr)
            if m:
                ranks.add(int(m.group(1)))
        tid_of: Dict[Any, int] = {}
        next_tid = (max(ranks) + 1) if ranks else 0
        for tr in sorted(tracks, key=track_key):
            m = re.fullmatch(r"r(\d+)", tr)
            if m:
                tid_of[tr] = int(m.group(1))
            else:
                tid_of[tr] = next_tid
                next_tid += 1
        shared_tid = next_tid              # rank-less instant events

        # -- metadata: label the process and every row
        out: List[dict] = [{"name": "process_name", "ph": "M", "pid": 1,
                            "args": {"name": "repro"}}]
        for r in sorted(ranks):
            out.append({"name": "thread_name", "ph": "M", "pid": 1,
                        "tid": r, "args": {"name": f"rank {r}"}})
        for tr in sorted(tracks, key=track_key):
            if re.fullmatch(r"r(\d+)", tr):
                continue                   # labeled as its rank above
            out.append({"name": "thread_name", "ph": "M", "pid": 1,
                        "tid": tid_of[tr], "args": {"name": tr}})
        if unranked:
            out.append({"name": "thread_name", "ph": "M", "pid": 1,
                        "tid": shared_tid, "args": {"name": "(events)"}})

        # -- the events themselves, in trace order
        for e in events:
            f = e.fields
            if e.category in span_cats:
                tid = tid_of.get(f.get("track"), shared_tid)
                if e.category == "span.begin":
                    out.append({"name": f.get("name", "span"), "ph": "B",
                                "ts": e.t, "pid": 1, "tid": tid,
                                "args": dict(f)})
                    link = f.get("link")
                    if link is not None:   # arrow into the new slice
                        out.append({"name": flow_kind.get(link, "flow"),
                                    "ph": "f", "bp": "e", "id": link,
                                    "cat": "flow", "ts": e.t, "pid": 1,
                                    "tid": tid})
                elif e.category == "span.end":
                    out.append({"name": span_name.get(f.get("sid"),
                                                      "span"),
                                "ph": "E", "ts": e.t, "pid": 1,
                                "tid": tid, "args": dict(f)})
                elif e.category == "span.flow":
                    out.append({"name": f.get("kind", "flow"), "ph": "s",
                                "id": f.get("fid"), "cat": "flow",
                                "ts": e.t, "pid": 1, "tid": tid,
                                "args": dict(f)})
                else:                      # span.wake
                    out.append({"name": flow_kind.get(f.get("fid"),
                                                      "flow"),
                                "ph": "f", "bp": "e",
                                "id": f.get("fid"), "cat": "flow",
                                "ts": e.t, "pid": 1, "tid": tid,
                                "args": dict(f)})
            else:
                rank = f.get(rank_field)
                has_rank = (isinstance(rank, int)
                            and not isinstance(rank, bool))
                out.append({"name": e.category, "ph": "i", "ts": e.t,
                            "pid": 1,
                            "tid": rank if has_rank else shared_tid,
                            "s": "t", "args": dict(f)})
        return out

    def save_chrome_trace(self, path, rank_field: str = "rank") -> None:
        """Write the Chrome-tracing JSON to ``path``."""
        import json
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(rank_field=rank_field), fh)


class _TupleTracer(Tracer):
    """The legacy sink: one :class:`TraceEvent` per record in a deque.

    Construct via ``Tracer(sink="tuples")``.  Kept as the
    cross-validation reference for the columnar sink — the golden
    tests assert both produce byte-identical ``to_jsonl()`` on a full
    ladder cell — and for any external code that pokes at a live
    ``events`` list while recording.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 capacity: Optional[int] = 100_000,
                 sink: str = "tuples"):
        self.categories = set(categories) if categories is not None \
            else None
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._counts: Counter = Counter()
        self._seq = 0
        self._admit = {}

    def record(self, t: float, category: str, **fields) -> None:
        categories = self.categories
        if categories is not None:
            admit = self._admit.get(category)
            if admit is None:
                admit = category.split(".", 1)[0] in categories
                self._admit[category] = admit
            if not admit:
                return
        self._counts[category] += 1
        self._seq += 1
        self._events.append(TraceEvent(t=t, category=category,
                                       fields=fields, seq=self._seq))

    emit = record

    def flush(self) -> None:
        pass

    def _rows(self) -> Iterator[Tuple[int, float, str, Dict[str, Any]]]:
        for e in self._events:
            yield e.seq, e.t, e.category, e.fields

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def count(self, category: str) -> int:
        return self._counts[category]

    def count_prefix(self, category: str) -> int:
        prefix = category + "."
        return self._counts[category] + sum(
            n for c, n in self._counts.items() if c.startswith(prefix))

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def clear(self) -> None:
        self._events.clear()
        self._counts.clear()
        self._seq = 0

    def to_jsonl(self) -> str:
        return "\n".join(e.to_json() for e in self._events)
