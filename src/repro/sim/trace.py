"""Structured event tracing for simulations.

A :class:`Tracer` collects timestamped, categorized events from any
instrumented component (the SVM protocol emits faults, fetches,
flushes, lock and barrier events).  Useful to debug a protocol
schedule, to build timelines, or to assert fine-grained behaviour in
tests without threading counters everywhere.

    tracer = Tracer(categories={"fetch", "lock"})
    proto = HLRCProtocol(machine, GENIMA, tracer=tracer)
    ...
    print(tracer.to_text(limit=50))
    assert tracer.count("fetch.retry") == 0
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``seq`` is the tracer-assigned record order: a monotonically
    increasing sequence number that gives events a stable total order
    even when several fire at the same simulated instant (the engine
    dispatches same-time events in scheduling order, so record order
    *is* causal order within an instant).
    """

    t: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.t:12.2f} #{self.seq:06d}] {self.category:20s} {parts}"

    def to_json(self) -> str:
        """One-line canonical JSON (stable key order) for this event."""
        import json
        return json.dumps(
            {"seq": self.seq, "t": self.t, "category": self.category,
             "fields": self.fields},
            sort_keys=True, separators=(",", ":"))


class Tracer:
    """Bounded, filterable event recorder.

    ``categories`` filters at record time on the *prefix* before the
    first dot (``"fetch"`` admits ``"fetch.retry"``); None records
    everything.  ``capacity`` bounds memory (oldest events drop);
    counts are kept for all admitted events regardless.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 capacity: Optional[int] = 100_000):
        self.categories = set(categories) if categories is not None \
            else None
        self._events: deque = deque(maxlen=capacity)
        self._counts: Counter = Counter()
        self._seq = 0

    # ------------------------------------------------------------- record

    def wants(self, category: str) -> bool:
        if self.categories is None:
            return True
        return category.split(".", 1)[0] in self.categories

    def record(self, t: float, category: str, **fields) -> None:
        if not self.wants(category):
            return
        self._counts[category] += 1
        self._seq += 1
        self._events.append(TraceEvent(t=t, category=category,
                                       fields=fields, seq=self._seq))

    # -------------------------------------------------------------- query

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def filter(self, category: str) -> List[TraceEvent]:
        """Events whose category equals or starts with ``category``."""
        return [e for e in self._events
                if e.category == category
                or e.category.startswith(category + ".")]

    def count(self, category: str) -> int:
        """Total admitted events for an exact category."""
        return self._counts[category]

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def between(self, t0: float, t1: float) -> List[TraceEvent]:
        return [e for e in self._events if t0 <= e.t <= t1]

    def to_text(self, limit: Optional[int] = None) -> str:
        events = self.events
        if limit is not None:
            events = events[-limit:]
        return "\n".join(str(e) for e in events)

    def clear(self) -> None:
        self._events.clear()
        self._counts.clear()
        self._seq = 0

    # ------------------------------------------------------------- export

    def to_jsonl(self) -> str:
        """All retained events as canonical JSON lines.

        Two runs of the same deterministic simulation must produce
        byte-identical streams; the determinism regression tests (and
        ``repro check``) rely on this.
        """
        return "\n".join(e.to_json() for e in self._events)

    def to_chrome_trace(self, rank_field: str = "rank") -> List[dict]:
        """Events in Chrome tracing (``chrome://tracing`` /  Perfetto)
        instant-event format; load the JSON list to see the protocol
        timeline per rank.  Events without a ``rank_field`` land on a
        shared row (tid 0)."""
        out = []
        for e in self._events:
            out.append({
                "name": e.category,
                "ph": "i",             # instant event
                "ts": e.t,              # already microseconds
                "pid": 1,
                "tid": int(e.fields.get(rank_field, 0)),
                "s": "t",
                "args": dict(e.fields),
            })
        return out

    def save_chrome_trace(self, path, rank_field: str = "rank") -> None:
        """Write the Chrome-tracing JSON to ``path``."""
        import json
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(rank_field=rank_field), fh)
