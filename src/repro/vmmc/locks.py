"""NI locks: mutual exclusion implemented in network-interface firmware.

Section 2, "Network interface locks": every lock has a static home; the
home NI maintains the tail of a distributed waiter list; requests are
forwarded to the last owner, whose NI grants the lock when its host has
released it.  *No host processor other than the requester is involved*,
and lock traffic never enters the NI-to-host delivery FIFO, so it
cannot get stuck behind data packets (the Water-nsquared fix).

A protocol-managed timestamp travels with the lock as an opaque payload
("the network interface does not need to perform any interpretation or
operations on this timestamp").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional

from ..hw import Message
from ..hw.packet import Packet
from ..sim.spans import nic_track
from .api import VMMC

__all__ = ["NILockManager"]

#: wire sizes: acquire/forward are one-word control ops; grants carry
#: the protocol timestamp.
ACQUIRE_BYTES = 16
FORWARD_BYTES = 16
GRANT_BYTES = 64


class _Token:
    """Per-lock state kept in one NI's memory."""

    __slots__ = ("present", "held", "ts", "pending")

    def __init__(self):
        self.present = False
        self.held = False           # host currently inside the lock
        self.ts: Any = None          # opaque protocol timestamp
        #: chain successors whose forwards have reached this NI; FIFO
        #: (forwards all come from the home, in order).
        self.pending: deque = deque()


class NILockManager:
    """Firmware lock queues across all NIs of one machine."""

    def __init__(self, vmmc: VMMC, num_locks: int,
                 home_fn: Optional[Callable[[int], int]] = None,
                 tracer=None, spans=None):
        self.vmmc = vmmc
        self.machine = vmmc.machine
        self.sim = vmmc.sim
        self.config = vmmc.config
        #: optional repro.sim.Tracer receiving ``nilock.*`` events.
        self.tracer = tracer
        #: optional repro.sim.SpanTracer: lock_req/lock_fwd/lock_grant
        #: flows ride the messages' ``span_flow`` so the requester's
        #: wait links causally through home and owner NIs.
        self.spans = spans
        self.num_locks = num_locks
        nodes = self.config.nodes
        self._home_fn = home_fn or (lambda lock_id: lock_id % nodes)
        # Home-side list tails: tail[lock] = last requester node.
        self._tail: Dict[int, int] = {}
        # Per-NI token state: tokens[node][lock].
        self._tokens = [dict() for _ in range(nodes)]
        # Host-side waiters per (node, lock): FIFO of pending events.
        self._host_waiters: Dict[tuple, deque] = {}
        for nic in self.machine.nics:
            nic.fw_handlers["lock_op"] = self._fw_lock_op
        vmmc.lock_manager = self
        # Statistics.
        self.acquires = 0
        self.remote_grants = 0
        self.local_grants = 0

    def _trace(self, category: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.record(self.sim.now, category, **fields)

    def wait_depths(self) -> list:
        """Per-node lock wait depth: host ranks blocked on a doorbell
        at the node plus remote requesters chained behind the node's
        NI-held tokens — one pass over the shared wait structures (the
        telemetry vector probe)."""
        out = [0] * self.config.nodes
        for (node, _lock), waiters in self._host_waiters.items():
            out[node] += len(waiters)
        for node, tokens in enumerate(self._tokens):
            for tok in tokens.values():
                out[node] += len(tok.pending)
        return out

    def register_probes(self, sampler) -> None:
        """Join a TimeSeriesSampler (repro.obs.timeseries)."""
        sampler.probe_vector("lock.wait_depth", "gauge",
                             self.wait_depths)

    # ------------------------------------------------------------- topology

    def home_of(self, lock_id: int) -> int:
        home = self._home_fn(lock_id)
        if not 0 <= home < self.config.nodes:
            raise ValueError(f"lock {lock_id} home {home} out of range")
        return home

    def _token(self, node: int, lock_id: int) -> _Token:
        return self._tokens[node].setdefault(lock_id, _Token())

    def pending_waiter_node(self, node: int, lock_id: int):
        """Node recorded as next-in-line at ``node``'s NI, or None.

        The protocol's hybrid diff policy reads this at release time:
        when the next waiter is on the same node, no diffs need to be
        computed (Section 2, "Remote Deposit").
        """
        tok = self._tokens[node].get(lock_id)
        if tok is None or not tok.pending:
            return None
        return tok.pending[0]

    def init_lock(self, lock_id: int, ts: Any = None) -> None:
        """Place the token at the lock's home, released, with ``ts``."""
        home = self.home_of(lock_id)
        tok = self._token(home, lock_id)
        tok.present = True
        tok.ts = ts
        self._tail[lock_id] = home

    # ----------------------------------------------------------- host side

    def acquire(self, node: int, lock_id: int,
                track: Optional[str] = None):
        """Generator: acquire ``lock_id`` for a process on ``node``.

        ``track`` names the requester's span track (when spans are
        armed): the request flow originates there and the eventual
        grant's wake lands back on it.

        Returns the protocol timestamp carried by the grant.
        """
        if lock_id not in self._tail:
            self.init_lock(lock_id)
        self.acquires += 1
        self._trace("nilock.acquire", node=node, lock=lock_id)
        cfg = self.config
        ev = self.sim.event()
        wtrack = track if self.spans is not None else None
        self._host_waiters.setdefault((node, lock_id),
                                      deque()).append((ev, wtrack))
        # Doorbell the request into our own NI; the *firmware* decides
        # atomically between a local re-grant ("the last owner keeps
        # the lock until another processor needs it") and the home
        # chain — deciding at the host would race with other local
        # acquirers.
        yield self.sim.timeout(cfg.post_overhead_us)
        yield from self._lanai_op(node, self._acquire_doorbell,
                                  node, lock_id, wtrack)
        ts = yield ev
        yield self.sim.timeout(cfg.notify_us)
        return ts

    def _acquire_doorbell(self, node: int, lock_id: int,
                          track: Optional[str] = None) -> None:
        """Firmware decision for a host acquire request."""
        tok = self._token(node, lock_id)
        home = self.home_of(lock_id)
        sp = self.spans if track is not None else None
        if tok.present and not tok.held and not tok.pending:
            self._grant(node, lock_id, node, src_track=track)
        elif home == node:
            self._home_acquire(node, lock_id, node, src_track=track)
        else:
            fid = sp.flow(track, "lock_req", "lock", lock=lock_id) \
                if sp is not None else None
            msg = Message(src=node, dst=home, size=ACQUIRE_BYTES,
                          kind="lock_op", deliver_to_host=False,
                          span_flow=fid,
                          payload=("acquire", lock_id, node))
            self.machine.nics[node].fw_send(msg)

    def release(self, node: int, lock_id: int, ts: Any = None,
                track: Optional[str] = None):
        """Generator: release ``lock_id``, storing ``ts`` in the NI.

        A purely local NI operation; if a waiter is queued at this NI
        the firmware hands the lock over immediately.
        """
        yield self.sim.timeout(self.config.post_overhead_us)
        yield from self._lanai_op(node, self._do_release, node, lock_id,
                                  ts, track if self.spans is not None
                                  else None)

    def _lanai_op(self, node: int, fn, *args):
        """Run a firmware action on ``node``'s LANai (host doorbell)."""
        nic = self.machine.nics[node]
        yield from nic.lanai.use(self.config.ni_lock_op_us)
        fn(*args)

    # -------------------------------------------------------- firmware side

    def _fw_lock_op(self, pkt: Packet):
        """Receive-path firmware handler for lock packets."""
        op = pkt.message.payload
        flow = pkt.message.span_flow
        node = pkt.dst

        def run():
            yield self.sim.timeout(self.config.ni_lock_op_us)
            kind = op[0]
            if kind == "acquire":
                _k, lock_id, requester = op
                self._home_acquire(node, lock_id, requester)
            elif kind == "forward":
                _k, lock_id, requester = op
                self._owner_forward(node, lock_id, requester)
            elif kind == "grant":
                _k, lock_id, ts = op
                self._arrive_grant(node, lock_id, ts, fid=flow)
            else:
                raise ValueError(f"unknown lock op {kind!r}")

        return run()

    def _home_acquire(self, home: int, lock_id: int, requester: int,
                      src_track: Optional[str] = None) -> None:
        """Home NI: append ``requester`` to the distributed list.

        ``src_track`` is set only when invoked straight from the local
        acquire doorbell; on the receive path the recv loop's ``ni.fw``
        span is open on this NI's track and serves as the flow source.
        """
        if lock_id not in self._tail:
            self.init_lock(lock_id)
        prev = self._tail[lock_id]
        self._tail[lock_id] = requester
        self._trace("nilock.chain", home=home, lock=lock_id,
                    requester=requester, prev=prev)
        if prev == home:
            self._owner_forward(home, lock_id, requester,
                                src_track=src_track)
        else:
            sp = self.spans
            fid = sp.flow(src_track or nic_track(home), "lock_fwd",
                          "lock", lock=lock_id) \
                if sp is not None else None
            msg = Message(src=home, dst=prev, size=FORWARD_BYTES,
                          kind="lock_op", deliver_to_host=False,
                          span_flow=fid,
                          payload=("forward", lock_id, requester))
            self.machine.nics[home].fw_send(msg)

    def _owner_forward(self, owner: int, lock_id: int, requester: int,
                       src_track: Optional[str] = None) -> None:
        """Last-owner NI: grant now or remember the waiter."""
        tok = self._token(owner, lock_id)
        if tok.present and not tok.held and not tok.pending:
            self._grant(owner, lock_id, requester, src_track=src_track)
        else:
            tok.pending.append(requester)
            self._trace("nilock.wait", node=owner, lock=lock_id,
                        requester=requester, queue=tuple(tok.pending))

    def _do_release(self, node: int, lock_id: int, ts: Any,
                    track: Optional[str] = None) -> None:
        tok = self._token(node, lock_id)
        if not (tok.present and tok.held):
            raise AssertionError(
                f"release of lock {lock_id} not held at node {node}")
        tok.held = False
        tok.ts = ts
        self._trace("nilock.release", node=node, lock=lock_id,
                    queue=tuple(tok.pending))
        if tok.pending:
            queue = tuple(tok.pending)
            self._grant(node, lock_id, tok.pending.popleft(), queue=queue,
                        src_track=track)

    def _grant(self, owner: int, lock_id: int, requester: int,
               queue: tuple = (), src_track: Optional[str] = None) -> None:
        tok = self._token(owner, lock_id)
        ts = tok.ts
        # ``queue`` is the NI's waiter list at the grant decision (the
        # granted requester at its head, if it was queued): the
        # sanitizer replays it to prove FIFO transfer.
        self._trace("nilock.grant", node=owner, lock=lock_id,
                    requester=requester, queue=queue,
                    present=tok.present, held=tok.held)
        sp = self.spans
        # The grant flow originates wherever the decision ran: the
        # releaser's/acquirer's own track for doorbell-driven grants,
        # this NI's firmware lane for receive-path grants.
        fid = sp.flow(src_track or nic_track(owner), "lock_grant",
                      "lock", lock=lock_id) if sp is not None else None
        if requester == owner:
            # Same-node handoff: token stays put.
            self.local_grants += 1
            self._arrive_grant(owner, lock_id, ts, fid=fid)
            return
        tok.present = False
        tok.ts = None
        self.remote_grants += 1
        msg = Message(src=owner, dst=requester, size=GRANT_BYTES,
                      kind="lock_op", deliver_to_host=False,
                      span_flow=fid,
                      payload=("grant", lock_id, ts))
        self.machine.nics[owner].fw_send(msg)

    def _arrive_grant(self, node: int, lock_id: int, ts: Any,
                      fid: Optional[int] = None) -> None:
        tok = self._token(node, lock_id)
        tok.present = True
        tok.held = True
        tok.ts = ts
        self._trace("nilock.granted", node=node, lock=lock_id)
        waiters = self._host_waiters.get((node, lock_id))
        if not waiters:
            raise AssertionError(
                f"grant of lock {lock_id} at node {node} with no waiter")
        ev, wtrack = waiters.popleft()
        if self.spans is not None:
            self.spans.wake(fid, wtrack, lock=lock_id)
        ev.succeed(ts)
