"""VMMC communication layer: remote deposit, remote fetch, NI locks."""

from .api import ExportTable, VMMC
from .locks import NILockManager
from .monitor import PerfMonitor, StageRatios

__all__ = [
    "VMMC",
    "ExportTable",
    "NILockManager",
    "PerfMonitor",
    "StageRatios",
]
