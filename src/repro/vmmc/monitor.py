"""Firmware performance monitor (Section 3.1 / Section 4).

The paper's VMMC monitor gathers network packet-level data in the NI
firmware and divides the sender-to-receiver path into four stages:

* **SourceLatency** — send request visible in the NI request queue
  until the packet's data is DMA'd into NI memory,
* **LANaiLatency** — until the NI has inserted the packet into the
  network,
* **NetLatency** — end of SourceLatency until the receiving NI holds
  the last word,
* **DestLatency** — arrival at the destination NI until the DMA into
  host memory completes (or, for firmware-consumed packets, until the
  firmware has finished with them).

Tables 3 and 4 report, per application, the ratio of the *average* time
a packet spends in each stage to the *uncontended* time for that stage,
split into small (<= 256 B) and large packets.  This module reproduces
those measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hw import Machine
from ..hw.packet import Packet
from ..sim import RunningStat

__all__ = ["PerfMonitor", "StageRatios"]

STAGES = ("source", "lanai", "net", "dest")


@dataclass
class StageRatios:
    """Mean contention ratios per stage, one Tables-3/4 cell group."""

    source: float
    lanai: float
    net: float
    dest: float
    packets: int

    def as_dict(self) -> Dict[str, float]:
        return {"source": self.source, "lanai": self.lanai,
                "net": self.net, "dest": self.dest}


class PerfMonitor:
    """Attachable packet-level monitor over every NI in the machine."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.config = machine.config
        self._ratios = {
            size_class: {stage: RunningStat() for stage in STAGES}
            for size_class in ("small", "large")
        }
        self.packets_by_kind: Dict[str, int] = {}
        self.bytes_by_kind: Dict[str, int] = {}
        for nic in machine.nics:
            nic.on_packet_done = self.record

    # ---------------------------------------------------------------- record

    def record(self, pkt: Packet) -> None:
        cfg = self.config
        size_class = "small" if pkt.is_small else "large"
        stats = self._ratios[size_class]
        self.packets_by_kind[pkt.kind] = \
            self.packets_by_kind.get(pkt.kind, 0) + 1
        self.bytes_by_kind[pkt.kind] = \
            self.bytes_by_kind.get(pkt.kind, 0) + pkt.size

        fw_consumed = not pkt.message.deliver_to_host
        # Firmware-origin control packets (lock grants/forwards) have no
        # host DMA at the source; their source stage is not comparable.
        if not (pkt.fw_origin and fw_consumed):
            src_ref = cfg.src_uncontended_us(pkt.size)
            self._add(stats["source"], pkt.source_latency, src_ref)
        self._add(stats["lanai"], pkt.lanai_latency,
                  cfg.lanai_uncontended_us(pkt.size))
        self._add(stats["net"], pkt.net_latency,
                  cfg.net_uncontended_us(pkt.size))
        if fw_consumed:
            fw_cost = cfg.ni_lock_op_us if pkt.kind == "lock_op" \
                else cfg.ni_fetch_setup_us
            dest_ref = cfg.ni_proc_us + fw_cost
        else:
            dest_ref = cfg.dest_uncontended_us(pkt.size)
        self._add(stats["dest"], pkt.dest_latency, dest_ref)

    @staticmethod
    def _add(stat: RunningStat, actual: float, reference: float) -> None:
        if reference > 0 and actual >= 0:
            stat.add(actual / reference)

    # ---------------------------------------------------------------- report

    def ratios(self, size_class: str) -> StageRatios:
        """Mean per-stage contention ratios for small or large packets."""
        if size_class not in self._ratios:
            raise ValueError(f"size_class must be 'small' or 'large'")
        stats = self._ratios[size_class]
        return StageRatios(
            source=stats["source"].mean,
            lanai=stats["lanai"].mean,
            net=stats["net"].mean,
            dest=stats["dest"].mean,
            packets=max(s.count for s in stats.values()) if stats else 0,
        )

    @property
    def total_packets(self) -> int:
        return sum(self.packets_by_kind.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())
