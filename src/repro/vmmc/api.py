"""VMMC: protected, reliable, user-level communication (Section 3.1).

The layer the paper builds on plus the two extensions it adds:

* **remote deposit** (stock VMMC) — explicit sends whose data lands at
  specified destination virtual addresses without involving the remote
  host processor; there is *no receive operation*.
* **remote fetch** (extension, in NI firmware) — pull contiguous data
  from exported remote memory; ~110 us for a 4 KB page.
* **NI locks** (extension, :mod:`repro.vmmc.locks`) — mutual exclusion
  queues maintained entirely by the NIs.

All host-side operations are generators meant to be driven from a
simulated process (``yield from vmmc.send(...)``).  Sends are
asynchronous: the sender pays only the ~2 us post overhead unless the
NI post queue is full, in which case the post blocks until it drains —
a first-order effect in the paper's analysis.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..hw import Machine, Message
from ..hw.packet import Packet
from ..sim.spans import nic_track

__all__ = ["VMMC", "ExportTable"]


class ExportTable:
    """Which (node, region) pairs are exported for remote access.

    The paper's scalability point for remote fetch (Section 2): with
    deposit-only page transfer every node must export *all* shared
    pages; with remote fetch each node exports only the pages it homes.
    This table lets tests assert that property; enforcement is optional
    (``strict``).
    """

    def __init__(self, strict: bool = False):
        self.strict = strict
        self._exports: Dict[int, set] = {}

    def export(self, node: int, region: Any) -> None:
        self._exports.setdefault(node, set()).add(region)

    def is_exported(self, node: int, region: Any) -> bool:
        return region in self._exports.get(node, set())

    def exported_count(self, node: int) -> int:
        return len(self._exports.get(node, set()))

    def check(self, node: int, region: Any) -> None:
        if self.strict and not self.is_exported(node, region):
            raise PermissionError(
                f"region {region!r} not exported by node {node}")


class VMMC:
    """One communication-layer instance spanning the whole machine."""

    #: message kinds consumed by NI firmware (never delivered to host).
    FW_KINDS = ("fetch_req", "lock_op")

    def __init__(self, machine: Machine, spans=None):
        self.machine = machine
        self.sim = machine.sim
        self.config = machine.config
        #: optional repro.sim.SpanTracer for causal fetch spans.
        self.spans = spans
        self.exports = ExportTable()
        self._delivery_handlers: Dict[str, Callable[[Packet], None]] = {}
        # Wire firmware handlers and delivery dispatch on every NIC.
        for nic in machine.nics:
            nic.fw_handlers["fetch_req"] = self._fw_fetch_req
            nic.on_delivery = self._dispatch_delivery
        # Filled in by NILockManager when locks are enabled.
        self.lock_manager = None
        # Counters.
        self.messages_sent = 0
        self.bytes_sent = 0
        self.fetches = 0
        machine.metrics.register_gauges("vmmc", self, "messages_sent",
                                        "bytes_sent", "fetches")

    # -------------------------------------------------------------- dispatch

    def register_delivery_handler(self, kind: str,
                                  fn: Callable[[Packet], None]) -> None:
        """Run ``fn(packet)`` whenever a ``kind`` packet lands in host
        memory.  This is how the SVM layer sees incoming requests (and,
        in the Base protocol, decides to take an interrupt)."""
        self._delivery_handlers[kind] = fn

    def _dispatch_delivery(self, pkt: Packet) -> None:
        fn = self._delivery_handlers.get(pkt.kind)
        if fn is not None:
            fn(pkt)

    # ------------------------------------------------------------------ send

    def send(self, src: int, dst: int, size: int, kind: str = "deposit",
             payload: Any = None, await_delivery: bool = False,
             on_delivered: Optional[Callable[[Message], None]] = None,
             extra_lanai_us: float = 0.0):
        """Generator: remote deposit of ``size`` bytes from ``src`` to
        ``dst`` (node ids).

        Asynchronous by default: completes once the descriptor is
        accepted by the NI (post overhead ~2 us; longer only when the
        post queue is full).  ``await_delivery=True`` turns it into a
        synchronous send that completes when the data has been DMA'd
        into the destination host's memory.

        Returns the :class:`Message`.
        """
        cfg = self.config
        self.messages_sent += 1
        self.bytes_sent += size
        if src == dst:
            # In-node deposit: a memcpy, no NI involvement.
            yield self.sim.timeout(cfg.post_overhead_us
                                   + size / cfg.host_memcpy_mbps)
            msg = Message(src=src, dst=dst, size=size, kind=kind,
                          payload=payload)
            if on_delivered is not None:
                on_delivered(msg)
            if await_delivery:
                # Synchronous deposits pay the completion notification
                # on the local path too, matching the remote path.
                yield self.sim.timeout(cfg.notify_us)
            return msg

        msg = Message(src=src, dst=dst, size=size, kind=kind,
                      payload=payload,
                      deliver_to_host=kind not in self.FW_KINDS,
                      on_delivered=on_delivered,
                      extra_src_lanai_us=extra_lanai_us,
                      extra_dst_lanai_us=extra_lanai_us)
        delivered = self.sim.event()
        prev_cb = msg.on_delivered

        def _delivered(m):
            if prev_cb is not None:
                prev_cb(m)
            delivered.succeed(m)

        msg.on_delivered = _delivered
        # Post overhead on the host CPU, then block until the post
        # queue accepts the descriptor.
        yield self.sim.timeout(cfg.post_overhead_us)
        yield self.machine.nics[src].post(msg)
        if await_delivery:
            yield delivered
            yield self.sim.timeout(cfg.notify_us)
        return msg

    def send_multicast(self, src: int, dsts, size: int,
                       kind: str = "deposit", payload: Any = None,
                       extra_src_lanai_us: float = 0.0,
                       on_packet_delivered=None, on_delivered=None):
        """Generator: one post, one source DMA, one packet per
        destination — the Section 5 NI multicast/broadcast extension.

        ``on_packet_delivered(packet)`` fires as each copy lands
        (``packet.dst`` identifies the receiver); ``on_delivered`` when
        the last copy has landed.
        """
        dsts = tuple(d for d in dsts if d != src)
        if not dsts:
            raise ValueError("multicast needs at least one destination")
        # Accounting is per destination packet stream (the convention
        # documented in repro.sim.stats): a multicast to k destinations
        # counts like k unicast sends even though only one descriptor
        # is posted and one source DMA happens.
        self.messages_sent += len(dsts)
        self.bytes_sent += size * len(dsts)
        msg = Message(src=src, dst=dsts[0], size=size, kind=kind,
                      payload=payload, multicast_dsts=dsts,
                      extra_src_lanai_us=extra_src_lanai_us,
                      on_delivered=on_delivered,
                      on_packet_delivered=on_packet_delivered)
        yield self.sim.timeout(self.config.post_overhead_us)
        yield self.machine.nics[src].post(msg)
        return msg

    # ----------------------------------------------------------------- fetch

    def fetch(self, src: int, dst: int, size: int,
              payload: Any = None,
              on_served: Optional[Callable[[], Any]] = None,
              track: Optional[str] = None):
        """Generator: remote fetch of ``size`` bytes of ``dst``'s memory
        into ``src``'s memory (the extension of Section 2).

        The request is a one-word message consumed by the destination
        NI's firmware, which DMAs the data out of host memory and sends
        it back — no destination host processor involvement.  Completes
        when the reply lands at ``src``.  ``on_served`` (if given) runs
        at the destination NI at service time and its return value is
        attached to the reply as ``payload`` — protocol layers use it to
        snapshot e.g. the page's timestamp at the moment it was read.

        ``track`` names the caller's span track: when spans are armed
        the fetch is recorded as a span with a request flow into the
        serving NI and a reply flow back.

        Returns the reply :class:`Message`.
        """
        if src == dst:
            raise ValueError("fetch from own node must be handled locally")
        self.fetches += 1
        done = self.sim.event()
        sp = self.spans if track is not None else None
        sid = sp.begin("vmmc.fetch", track, bucket="data",
                       dst=dst) if sp is not None else None
        fid = sp.flow_from(sid, "fetch_req", "data") \
            if sp is not None else None
        request = Message(
            src=src, dst=dst, size=8, kind="fetch_req",
            deliver_to_host=False, span_flow=fid,
            payload=_FetchState(size=size, requester=src, user=payload,
                                on_served=on_served, done=done,
                                track=track),
        )
        yield self.sim.timeout(self.config.post_overhead_us)
        yield self.machine.nics[src].post(request)
        reply = yield done
        yield self.sim.timeout(self.config.notify_us)
        if sp is not None:
            sp.end(sid)
        return reply

    def _fw_fetch_req(self, pkt: Packet):
        """Destination-NI firmware service of a remote fetch request.

        Runs on the LANai: a short setup, then an autonomous DMA read of
        host memory and a firmware-originated reply.  The recv loop is
        only held for the setup, so back-to-back fetches pipeline.
        """
        nic = self.machine.nics[pkt.dst]
        state: _FetchState = pkt.message.payload

        def serve():
            served_value = state.on_served() if state.on_served else None
            sp = self.spans if state.track is not None else None
            # The recv loop's ni.fw span is still open here, so the
            # reply flow's source is the firmware service itself.
            rfid = sp.flow(nic_track(pkt.dst), "fetch_reply", "data") \
                if sp is not None else None

            def reply_done(m):
                if sp is not None:
                    sp.wake(rfid, state.track)
                state.done.succeed(m)

            reply = Message(
                src=pkt.dst, dst=state.requester, size=state.size,
                kind="fetch_reply", payload=served_value,
                on_delivered=reply_done,
            )
            nic.fw_send(reply, read_host_bytes=True)

        def setup():
            yield self.sim.timeout(self.config.ni_fetch_setup_us)
            serve()

        return setup()


class _FetchState:
    """Book-keeping carried by a fetch request packet."""

    __slots__ = ("size", "requester", "user", "on_served", "done",
                 "track")

    def __init__(self, size, requester, user, on_served, done,
                 track=None):
        self.size = size
        self.requester = requester
        self.user = user
        self.on_served = on_served
        self.done = done
        self.track = track
