"""A hardware cache-coherent DSM yardstick (the SGI Origin 2000 role).

Figures 1 and 4 and Table 5 compare the SVM system against a
hardware-coherent machine.  This backend runs the *same* application
op-streams with hardware-DSM costs: cache-line (128 B) coherence
granularity, sub-microsecond remote misses with multiple outstanding
misses overlapped, hardware locks and fast barriers.  It is a cost
model, not a directory-protocol simulator — its only job is to place
the hardware bars where the paper places them: far above Base SVM and
still above GeNIMA for most applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..sim import Resource, Simulator
from ..runtime.context import Backend

__all__ = ["HWDSMConfig", "HWDSMBackend"]


@dataclass(frozen=True)
class HWDSMConfig:
    """Cost parameters of the hardware-coherent machine."""

    nprocs: int = 16
    cache_line: int = 128
    page_size: int = 4096
    #: latency of one remote line miss (directory + network round trip).
    line_miss_us: float = 0.9
    #: effective overlap of outstanding misses (OoO + prefetch).
    miss_overlap: float = 4.0
    #: fraction of a re-read page's lines that actually miss.
    reread_miss_fraction: float = 0.35
    #: lock acquire/release overhead (LL/SC + directory).
    lock_op_us: float = 1.5
    #: per-process barrier overhead (tree barrier).
    barrier_op_us: float = 4.0
    #: memory-bus dilation per extra active processor (small: the
    #: Origin has two processors per node and much more bandwidth).
    bus_contention_factor: float = 0.008
    procs_per_node: int = 2

    @property
    def lines_per_page(self) -> int:
        return self.page_size // self.cache_line


class _Region:
    """Shared region with per-page version counters."""

    __slots__ = ("name", "n_pages", "version")

    def __init__(self, name: str, n_pages: int):
        self.name = name
        self.n_pages = n_pages
        self.version = [0] * n_pages

    def check(self, index: int) -> None:
        if not 0 <= index < self.n_pages:
            raise IndexError(
                f"page {index} outside region {self.name!r}")


class HWDSMBackend(Backend):
    """Runs application op-streams under hardware-DSM costs."""

    def __init__(self, config: Optional[HWDSMConfig] = None,
                 sim: Optional[Simulator] = None):
        self.config = config or HWDSMConfig()
        self.sim = sim or Simulator()
        self._regions: Dict[str, _Region] = {}
        #: per (rank, region, page): version this processor last pulled.
        self._seen: Dict[Tuple[int, str, int], int] = {}
        self._locks: Dict[int, Resource] = {}
        self._flags: Dict[int, dict] = {}
        self._barrier_epoch = 0
        self._barrier_count = 0
        self._barrier_event = self.sim.event()
        # Statistics.
        self.line_misses = 0
        self.lock_ops = 0
        self.barriers = 0

    @property
    def nprocs(self) -> int:
        return self.config.nprocs

    # ------------------------------------------------------------- regions

    def allocate(self, name, n_pages, home_policy="blocked", home_fn=None):
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        region = _Region(name, n_pages)
        self._regions[name] = region
        return region

    # ----------------------------------------------------------------- ops

    def op_compute(self, rank, us, bus_intensity):
        cfg = self.config

        def gen():
            extra = cfg.bus_contention_factor * bus_intensity \
                * (cfg.procs_per_node - 1)
            yield self.sim.timeout(us * (1.0 + extra))

        return gen()

    def _miss_cost(self, rank: int, region: _Region,
                   pages: Iterable[int]) -> float:
        cfg = self.config
        lines = 0.0
        for p in pages:
            region.check(p)
            key = (rank, region.name, p)
            seen = self._seen.get(key, -1)
            current = region.version[p]
            if seen < 0:
                lines += cfg.lines_per_page  # cold: whole page streams in
            elif seen < current:
                lines += cfg.lines_per_page * cfg.reread_miss_fraction
            self._seen[key] = current
        self.line_misses += int(lines)
        return lines * cfg.line_miss_us / cfg.miss_overlap

    def op_read(self, rank, region, pages):
        cost = self._miss_cost(rank, region, pages)

        def gen():
            if cost > 0:
                yield self.sim.timeout(cost)

        return gen()

    def op_write(self, rank, region, pages, runs_per_page, bytes_per_page):
        pages = list(pages)
        cost = self._miss_cost(rank, region, pages)
        for p in pages:
            region.version[p] += 1
            # The writer's own copy stays current.
            self._seen[(rank, region.name, p)] = region.version[p]

        def gen():
            if cost > 0:
                yield self.sim.timeout(cost)

        return gen()

    # -- locks -------------------------------------------------------------

    def _lock_res(self, lock_id: int) -> Resource:
        res = self._locks.get(lock_id)
        if res is None:
            res = Resource(self.sim, 1, name=f"hwlock{lock_id}")
            self._locks[lock_id] = res
        return res

    def op_lock(self, rank, lock_id):
        res = self._lock_res(lock_id)
        self.lock_ops += 1

        def gen():
            yield self.sim.timeout(self.config.lock_op_us)
            yield res.request()

        return gen()

    def op_unlock(self, rank, lock_id):
        res = self._lock_res(lock_id)

        def gen():
            yield self.sim.timeout(self.config.lock_op_us)
            res.release()

        return gen()

    # -- flags -------------------------------------------------------------

    def _flag(self, flag_id: int) -> dict:
        flag = self._flags.get(flag_id)
        if flag is None:
            flag = {"version": 0, "waiters": [], "consumed": {}}
            self._flags[flag_id] = flag
        return flag

    def op_release_flag(self, rank, flag_id):
        flag = self._flag(flag_id)

        def gen():
            yield self.sim.timeout(self.config.lock_op_us)
            flag["version"] += 1
            version = flag["version"]
            still = []
            for want, ev in flag["waiters"]:
                if version >= want:
                    ev.succeed()
                else:
                    still.append((want, ev))
            flag["waiters"] = still

        return gen()

    def op_acquire_flag(self, rank, flag_id):
        flag = self._flag(flag_id)

        def gen():
            want = flag["consumed"].get(rank, 0) + 1
            if flag["version"] < want:
                ev = self.sim.event()
                flag["waiters"].append((want, ev))
                yield ev
            flag["consumed"][rank] = want
            yield self.sim.timeout(self.config.lock_op_us)

        return gen()

    # -- barrier --------------------------------------------------------------

    def op_barrier(self, rank):
        def gen():
            yield self.sim.timeout(self.config.barrier_op_us)
            self._barrier_count += 1
            if self._barrier_count == self.config.nprocs:
                self._barrier_count = 0
                self._barrier_epoch += 1
                self.barriers += 1
                event, self._barrier_event = \
                    self._barrier_event, self.sim.event()
                event.succeed()
            else:
                yield self._barrier_event

        return gen()
