"""Hardware cache-coherent DSM yardstick (Origin-2000 stand-in)."""

from .origin import HWDSMBackend, HWDSMConfig

__all__ = ["HWDSMBackend", "HWDSMConfig"]
