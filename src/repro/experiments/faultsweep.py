"""Fault sweep: completion time vs. injected packet-loss rate.

Not a paper experiment — a robustness study of the GeNIMA mechanisms
under the imperfect fabric of :mod:`repro.faults`.  For each loss rate
the app runs to completion on the drop-tolerant transport; the table
reports wall time, slowdown relative to the fault-free fabric, and the
recovery traffic (drops, retransmits, duplicate discards).  The
``loss=0`` row runs with ``faults=None``: the genuinely perfect
crossbar, not merely a lossless lossy fabric (acks and watchdogs are
absent too, so it is the true zero-overhead baseline).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..hw import FaultConfig, MachineConfig
from .cache import ExperimentCache
from .reporting import format_table

__all__ = ["compute_faultsweep", "render_faultsweep", "DEFAULT_LOSS_RATES"]

DEFAULT_LOSS_RATES = (0.0, 0.01, 0.02, 0.05, 0.1)

#: width of the ASCII slowdown bar in the rendered table.
_BAR_WIDTH = 30


def compute_faultsweep(app_name: str, features,
                       loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
                       seed: int = 1,
                       config: Optional[MachineConfig] = None,
                       jitter_us: float = 0.0,
                       cache: Optional[ExperimentCache] = None) -> List[Dict]:
    """Run ``app_name`` under ``features`` across ``loss_rates``.

    Each loss rate is an independent grid cell, so a parallel/persistent
    ``cache`` fans the sweep out and memoizes it; rows come back in
    ``loss_rates`` order regardless of completion order.
    """
    base = config or MachineConfig()
    if cache is None:
        cache = ExperimentCache(config=base)

    def cfg_for(loss: float) -> MachineConfig:
        if loss == 0.0 and jitter_us == 0.0:
            return base.scaled(faults=None)
        return base.scaled(faults=FaultConfig(
            loss=loss, jitter_us=jitter_us, seed=seed))

    specs = [cache.spec_svm(app_name, features, config=cfg_for(loss))
             for loss in loss_rates]
    cache.warm(specs)
    rows: List[Dict] = []
    for loss, spec in zip(loss_rates, specs):
        result = cache.cell(spec)
        rows.append({
            "loss": loss,
            "time_us": result.time_us,
            "drops": result.stats.get("packets_dropped", 0),
            "retransmits": result.stats.get("retransmits", 0),
            "dup_discards": result.stats.get("dup_discards", 0),
        })
    return rows


def render_faultsweep(rows: List[Dict], app_name: str,
                      protocol_name: str) -> str:
    """Table + ASCII plot of completion time vs. loss rate."""
    baseline = rows[0]["time_us"] if rows else 1.0
    worst = max((r["time_us"] / baseline for r in rows), default=1.0)
    table_rows = []
    for r in rows:
        slowdown = r["time_us"] / baseline
        bar = "#" * max(1, round(_BAR_WIDTH * slowdown / worst))
        table_rows.append((
            f"{r['loss']:.3f}",
            f"{r['time_us'] / 1000:.1f}",
            f"{slowdown:5.2f}x",
            str(r["drops"]),
            str(r["retransmits"]),
            str(r["dup_discards"]),
            bar,
        ))
    return format_table(
        ["Loss", "Time (ms)", "Slowdown", "Drops", "Retx",
         "DupDisc", "Time vs loss"],
        table_rows,
        title=(f"{app_name} / {protocol_name}: completion time vs. "
               f"packet loss"))
