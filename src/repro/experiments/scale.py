"""Datacenter-scale scaling curves: speedup vs nodes vs topology.

The paper stops at 8 nodes on one Myrinet switch; Section 5 asks "how
the performance and bottlenecks scale with system size".  This driver
answers at datacenter scale: a strong-scaling sweep of one datacenter
workload over node counts up to 1024, crossed with fabric topologies
(crossbar / fat-tree / dragonfly) and protocol rungs (Base vs GeNIMA).

Strong scaling needs fixed total work: :func:`scale_params` sizes each
workload so the aggregate request count (or aggregate gradient
compute) is constant while the per-rank share shrinks with the
machine.  Open-loop generators are paced *fast* (deterministic 1
request/us) so runs measure service capacity, not the arrival
schedule.  The speedup baseline is the uniprocessor run of the same
total work (the paper's methodology: sequential, no SVM library).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..hw import MachineConfig
from ..svm import BASE, GENIMA
from .cache import CACHE, ExperimentCache
from .reporting import format_table

__all__ = ["SCALE_NODES", "SCALE_TOPOLOGIES", "SCALE_TELEMETRY_US",
           "scale_params", "compute_scale", "render_scale"]

#: default node counts of the scaling sweep.
SCALE_NODES = (4, 16, 64, 256, 1024)

#: default fabric models to cross the sweep with.
SCALE_TOPOLOGIES = ("crossbar", "fat-tree")

#: total work held fixed across node counts.
TOTAL_REQUESTS = 2048
TOTAL_COMPUTE_US = 400_000.0


def scale_params(app_name: str, nprocs: int, seed: int = 0) -> Dict:
    """Constructor params sizing ``app_name`` for fixed total work.

    ``nprocs = 1`` gives the sequential-baseline sizing: the whole
    request stream (or the whole gradient computation) on one rank.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    if app_name == "KVStore":
        # Service-compute-heavy requests spread over many shards: the
        # sweep measures how fabric latency and shard-lock contention
        # erode capacity, not the (constant) page-fetch floor.
        return dict(shards=max(16, nprocs),
                    requests_per_rank=max(TOTAL_REQUESTS // nprocs, 1),
                    arrivals="deterministic", rate_per_us=1.0,
                    service_us=100.0, hot_fraction=0.25, hot_shards=4,
                    seed=seed)
    if app_name == "ParamServer":
        return dict(param_pages=256, steps=4, fetch_fanout=8,
                    compute_us=TOTAL_COMPUTE_US / nprocs, seed=seed)
    if app_name == "OpenLoop":
        return dict(pages=256,
                    requests_per_rank=max(TOTAL_REQUESTS // nprocs, 1),
                    arrivals="deterministic", rate_per_us=1.0,
                    service_us=100.0, seed=seed)
    raise ValueError(f"no scaling recipe for app {app_name!r} "
                     "(one of KVStore, ParamServer, OpenLoop)")


#: default telemetry sampling cadence of the scale sweep (us of sim
#: time per sample).  The sampler is an engine-hook observer, so the
#: sampled cells' schedules — and times — match unsampled runs.
SCALE_TELEMETRY_US = 1000.0


def compute_scale(app_name: str = "KVStore",
                  node_counts: Sequence[int] = SCALE_NODES,
                  topologies: Sequence[str] = SCALE_TOPOLOGIES,
                  feature_sets: Iterable = (BASE, GENIMA),
                  procs_per_node: int = 1,
                  cache: Optional[ExperimentCache] = None,
                  seed: int = 0,
                  telemetry_us: Optional[float] = SCALE_TELEMETRY_US
                  ) -> List[Dict]:
    """The scaling grid: one row per (topology, protocol, nodes).

    With ``telemetry_us`` set (the default) every SVM cell runs with a
    :class:`~repro.obs.TimeSeriesSampler` attached, and each row
    carries a ``telemetry`` digest — peak NI queue depth plus
    queue-depth and page-fault skew ratios — so the scaling curves
    explain *where* capacity went, not just that it did.
    """
    from ..obs import telemetry_brief
    cache = cache or CACHE
    feature_sets = list(feature_sets)
    seq_spec = cache.spec_seq(app_name, **scale_params(app_name, 1,
                                                       seed=seed))
    specs = [seq_spec]
    grid = []
    for topo in topologies:
        for feats in feature_sets:
            for nodes in node_counts:
                config = cache.config.scaled(
                    nodes=nodes, procs_per_node=procs_per_node,
                    topology=topo)
                spec = cache.spec_svm(
                    app_name, feats, config=config,
                    telemetry_us=telemetry_us,
                    **scale_params(app_name, config.total_procs,
                                   seed=seed))
                specs.append(spec)
                grid.append((topo, feats, nodes, config, spec))
    cache.warm(specs)
    seq = cache.cell(seq_spec)
    rows = []
    for topo, feats, nodes, config, spec in grid:
        result = cache.cell(spec)
        rows.append({
            "app": app_name,
            "topology": topo,
            "protocol": feats.name,
            "nodes": nodes,
            "procs": config.total_procs,
            "time_us": result.time_us,
            "seq_time_us": seq.time_us,
            "speedup": seq.time_us / result.time_us,
            "telemetry": telemetry_brief(result.telemetry),
        })
    return rows


def _skew_label(row: Optional[Dict]) -> str:
    """Compact queue-skew annotation for one scale row ("-" when the
    cell was unsampled; "inf" when the median node is idle)."""
    telemetry = (row or {}).get("telemetry")
    if not telemetry:
        return "-"
    ratio = telemetry.get("queue_skew")
    if ratio is None:
        return "inf"
    return f"{ratio:.1f}x"


def render_scale(rows: List[Dict], app_name: str) -> str:
    """One table per topology: nodes down, protocols across (speedup
    plus the telemetry queue-skew digest when cells were sampled)."""
    topologies = sorted({r["topology"] for r in rows})
    protocols = list(dict.fromkeys(r["protocol"] for r in rows))
    sampled = any(r.get("telemetry") for r in rows)
    blocks = []
    for topo in topologies:
        sub = [r for r in rows if r["topology"] == topo]
        nodes = sorted({r["nodes"] for r in sub})
        cell = {(r["nodes"], r["protocol"]): r for r in sub}
        table_rows = []
        for n in nodes:
            entry = [str(n)]
            for proto in protocols:
                r = cell.get((n, proto))
                entry.append(r["speedup"] if r else float("nan"))
                if sampled:
                    entry.append(_skew_label(r))
            table_rows.append(tuple(entry))
        header = ["nodes"]
        for p in protocols:
            header.append(f"{p} speedup")
            if sampled:
                header.append(f"{p} q-skew")
        blocks.append(format_table(
            header, table_rows,
            title=f"Scaling: {app_name} on {topo} "
                  f"(fixed total work)"))
    return "\n\n".join(blocks)
