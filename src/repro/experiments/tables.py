"""Table drivers.

* Table 1 — application statistics: uniprocessor time, overall
  improvement Base -> GeNIMA, data-wait improvement DW -> DW+RF (and,
  in parentheses in the paper, DW -> GeNIMA), lock-time improvement
  DW+RF+DD -> GeNIMA.
* Table 2 — barrier time share (BT), protocol share of barrier time
  (BPT) and mprotect share of total SVM overhead (MT), under GeNIMA.
* Tables 3 & 4 — per-stage contention ratios (average time over
  uncontended time) for small and large packets, Base vs GeNIMA.
* Table 5 — 32-processor speedups (8 nodes x 4), SVM (GeNIMA) vs the
  hardware DSM.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..apps import PAPER_APPS
from ..svm import BASE, DW, DW_RF, DW_RF_DD, GENIMA
from .cache import CACHE, ExperimentCache
from .reporting import format_table

__all__ = [
    "compute_table1", "render_table1",
    "compute_table2", "render_table2",
    "compute_table34", "render_table34",
    "compute_table5", "render_table5",
]


def _improvement(before: float, after: float) -> float:
    """Percent improvement of a time-like metric (positive = better)."""
    if before <= 0:
        return 0.0
    return 100.0 * (before - after) / before


# ------------------------------------------------------------------- Table 1

LADDER = (BASE, DW, DW_RF, DW_RF_DD, GENIMA)


def compute_table1(cache: ExperimentCache = CACHE,
                   apps: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
    apps = apps or PAPER_APPS
    cache.warm([cache.spec_seq(app) for app in apps]
               + [cache.spec_svm(app, feats)
                  for app in apps for feats in LADDER])
    out = {}
    for app in apps:
        seq = cache.seq(app)
        base = cache.svm(app, BASE)
        dw = cache.svm(app, DW)
        rf = cache.svm(app, DW_RF)
        dd = cache.svm(app, DW_RF_DD)
        genima = cache.svm(app, GENIMA)
        out[app] = {
            "uniproc_s": seq.time_us / 1e6,
            # col 4: overall improvement Base -> GeNIMA (speedup gain)
            "overall_pct": 100.0 * (base.time_us / genima.time_us - 1.0),
            # col 5: data wait improvement DW -> DW+RF
            "data_pct": _improvement(dw.mean_breakdown.data,
                                     rf.mean_breakdown.data),
            # (parenthesized in the paper: DW -> GeNIMA)
            "data_pct_genima": _improvement(dw.mean_breakdown.data,
                                            genima.mean_breakdown.data),
            # col 6: lock improvement DW+RF+DD -> GeNIMA
            "lock_pct": _improvement(dd.mean_breakdown.lock,
                                     genima.mean_breakdown.lock),
        }
    return out


def render_table1(data: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for app, v in data.items():
        rows.append((app, v["uniproc_s"], v["overall_pct"],
                     f"{v['data_pct']:.2f} ({v['data_pct_genima']:.2f})",
                     v["lock_pct"]))
    return format_table(
        ["Application", "Uniproc(s)", "Overall(%)", "DataTime(%)",
         "LockTime(%)"],
        rows,
        title=("Table 1: improvements — overall Base->GeNIMA, data wait "
               "DW->DW+RF (DW->GeNIMA), lock DW+RF+DD->GeNIMA"))


# ------------------------------------------------------------------- Table 2

def compute_table2(cache: ExperimentCache = CACHE,
                   apps: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
    apps = apps or PAPER_APPS
    cache.warm([cache.spec_svm(app, GENIMA) for app in apps])
    out = {}
    for app in apps:
        result = cache.svm(app, GENIMA)
        out[app] = {
            "BT": 100.0 * result.barrier_fraction,
            "BPT": 100.0 * result.barrier_protocol_fraction,
            "MT": 100.0 * result.mprotect_fraction,
        }
    return out


def render_table2(data: Dict[str, Dict[str, float]]) -> str:
    rows = [(app, f"{v['BT']:.1f}%", f"{v['BPT']:.0f}%", f"{v['MT']:.1f}%")
            for app, v in data.items()]
    return format_table(
        ["Application", "BT", "BPT", "MT"], rows,
        title=("Table 2: barrier time share (BT), protocol share of "
               "barrier time (BPT), mprotect share of SVM overhead (MT)"))


# -------------------------------------------------------------- Tables 3 & 4

STAGE_NAMES = ("source", "lanai", "net", "dest")


def compute_table34(cache: ExperimentCache = CACHE,
                    apps: Optional[List[str]] = None) -> Dict[str, Dict]:
    """Returns {app: {"small": {"Base": ratios, "GeNIMA": ratios},
    "large": {...}}} with per-stage contention ratios."""
    apps = apps or PAPER_APPS
    cache.warm([cache.spec_svm(app, feats)
                for app in apps for feats in (BASE, GENIMA)])
    out = {}
    for app in apps:
        base = cache.svm(app, BASE)
        genima = cache.svm(app, GENIMA)
        out[app] = {
            "small": {"Base": base.monitor_small,
                      "GeNIMA": genima.monitor_small},
            "large": {"Base": base.monitor_large,
                      "GeNIMA": genima.monitor_large},
        }
    return out


def render_table34(data: Dict[str, Dict], size_class: str) -> str:
    if size_class not in ("small", "large"):
        raise ValueError("size_class must be 'small' or 'large'")
    rows = []
    for app, v in data.items():
        cells = [app]
        for stage in STAGE_NAMES:
            b = v[size_class]["Base"][stage]
            g = v[size_class]["GeNIMA"][stage]
            cells.append(f"{b:.1f}/{g:.1f}")
        rows.append(tuple(cells))
    number = "3" if size_class == "small" else "4"
    return format_table(
        ["Application", "SourceLat", "LANaiLat", "NetLat", "DestLat"],
        rows,
        title=(f"Table {number}: contention ratios (avg/uncontended), "
               f"{size_class} packets, Base/GeNIMA"))


# ------------------------------------------------------------------- Table 5

def compute_table5(cache: ExperimentCache = CACHE,
                   apps: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
    apps = apps or PAPER_APPS
    cache.warm([spec for app in apps
                for spec in (cache.spec_seq(app),
                             cache.spec_svm(app, GENIMA, nodes=8),
                             cache.spec_origin(app, nprocs=32))])
    out = {}
    for app in apps:
        svm32 = cache.svm(app, GENIMA, nodes=8)
        origin32 = cache.origin(app, nprocs=32)
        out[app] = {
            "SVM": cache.speedup(app, svm32),
            "Origin": cache.speedup(app, origin32),
        }
    return out


def render_table5(data: Dict[str, Dict[str, float]]) -> str:
    rows = [(app, v["SVM"], v["Origin"]) for app, v in data.items()]
    return format_table(
        ["Application", "SVM (GeNIMA)", "SGI Origin2000"], rows,
        title="Table 5: speedups on 32 processors")
