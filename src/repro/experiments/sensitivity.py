"""Sensitivity and scaling studies.

* **Interrupt-cost sensitivity** — the paper's premise is that "the
  cost of interrupts used for asynchronous message handling and/or
  protocol processing is one of the most important bottlenecks in
  modern SVM clusters".  If that is what GeNIMA exploits, its advantage
  over Base must grow with the interrupt cost and shrink toward the
  cost of its extra traffic as interrupts become free.  This study
  sweeps ``interrupt_us`` and measures both protocols.

* **Scaling study** — speedups versus processor count (Section 5:
  "we are currently investigating how the performance and bottlenecks
  scale with system size"), at fixed problem size.
"""

from __future__ import annotations

from typing import Dict, List

from ..hw import MachineConfig
from ..runtime import run_sequential, run_svm
from ..svm import BASE, GENIMA
from ..apps import APP_REGISTRY
from .reporting import format_table

__all__ = ["interrupt_cost_sensitivity", "scaling_study",
           "render_sensitivity", "render_scaling"]


def interrupt_cost_sensitivity(
        app_name: str = "Water-nsquared",
        interrupt_costs=(5.0, 20.0, 55.0, 110.0),
        jitter_ratio: float = 0.7) -> List[Dict]:
    """Base vs GeNIMA execution time as interrupts get more expensive.

    ``jitter_ratio`` scales the SMP scheduling jitter with the
    interrupt cost (they move together on real systems).
    """
    cls = APP_REGISTRY[app_name]
    seq = run_sequential(cls())
    rows = []
    for cost in interrupt_costs:
        config = MachineConfig(interrupt_us=cost,
                               sched_jitter_us=cost * jitter_ratio)
        base = run_svm(cls(), BASE, config=config)
        genima = run_svm(cls(), GENIMA, config=config)
        rows.append({
            "interrupt_us": cost,
            "base_speedup": seq.time_us / base.time_us,
            "genima_speedup": seq.time_us / genima.time_us,
            "genima_gain_pct": 100.0 * (base.time_us / genima.time_us - 1),
        })
    return rows


def render_sensitivity(rows: List[Dict], app_name: str) -> str:
    return format_table(
        ["interrupt_us", "Base speedup", "GeNIMA speedup", "gain %"],
        [(r["interrupt_us"], r["base_speedup"], r["genima_speedup"],
          r["genima_gain_pct"]) for r in rows],
        title=f"Sensitivity: GeNIMA's advantage vs interrupt cost "
              f"({app_name})")


def scaling_study(app_name: str = "Water-spatial",
                  node_counts=(1, 2, 4, 8)) -> List[Dict]:
    """Speedup vs processor count for Base and GeNIMA, fixed size."""
    cls = APP_REGISTRY[app_name]
    seq = run_sequential(cls())
    rows = []
    for nodes in node_counts:
        config = MachineConfig(nodes=nodes)
        base = run_svm(cls(), BASE, config=config)
        genima = run_svm(cls(), GENIMA, config=config)
        rows.append({
            "procs": config.total_procs,
            "base_speedup": seq.time_us / base.time_us,
            "genima_speedup": seq.time_us / genima.time_us,
        })
    return rows


def render_scaling(rows: List[Dict], app_name: str) -> str:
    return format_table(
        ["processors", "Base", "GeNIMA"],
        [(r["procs"], r["base_speedup"], r["genima_speedup"])
         for r in rows],
        title=f"Scaling study: speedup vs system size ({app_name})")
