"""Shared run cache for experiment drivers.

Figures 1-4 and Tables 1-2 all consume the same 10 apps x 5 protocols
grid (plus sequential and hardware-DSM baselines); this cache runs each
cell once per process and hands the RunResult to every driver that asks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..hw import MachineConfig
from ..hwdsm import HWDSMConfig
from ..runtime import RunResult, run_hwdsm, run_sequential, run_svm
from ..svm import ProtocolFeatures
from ..apps import APP_REGISTRY

__all__ = ["ExperimentCache", "CACHE"]


class ExperimentCache:
    """Lazily-computed (app, system, nodes) -> RunResult grid."""

    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or MachineConfig()
        self._results: Dict[Tuple, RunResult] = {}

    def _app(self, app_name: str, **params):
        cls = APP_REGISTRY[app_name]
        return cls(**params) if params else cls()

    def svm(self, app_name: str, features: ProtocolFeatures,
            nodes: Optional[int] = None, **params) -> RunResult:
        nodes = nodes or self.config.nodes
        key = ("svm", app_name, features, nodes, tuple(sorted(params.items())))
        if key not in self._results:
            config = self.config.scaled(nodes=nodes)
            self._results[key] = run_svm(self._app(app_name, **params),
                                         features, config=config)
        return self._results[key]

    def seq(self, app_name: str, **params) -> RunResult:
        key = ("seq", app_name, tuple(sorted(params.items())))
        if key not in self._results:
            self._results[key] = run_sequential(
                self._app(app_name, **params), config=self.config)
        return self._results[key]

    def origin(self, app_name: str, nprocs: Optional[int] = None,
               **params) -> RunResult:
        nprocs = nprocs or self.config.total_procs
        key = ("origin", app_name, nprocs, tuple(sorted(params.items())))
        if key not in self._results:
            hw = HWDSMConfig(nprocs=nprocs)
            self._results[key] = run_hwdsm(self._app(app_name, **params),
                                           config=hw)
        return self._results[key]

    def speedup(self, app_name: str, result: RunResult) -> float:
        return self.seq(app_name).time_us / result.time_us


#: process-wide cache used by all experiment drivers and benchmarks.
CACHE = ExperimentCache()
