"""Shared run cache for experiment drivers.

Figures 1-4 and Tables 1-2 all consume the same 10 apps x 5 protocols
grid (plus sequential and hardware-DSM baselines).  The cache keeps a
per-process ``digest -> RunResult`` map and delegates evaluation to
:class:`repro.runtime.parallel.GridExecutor`, which adds two things the
old in-process memo could not:

* **fan-out** — ``jobs > 1`` evaluates missing cells concurrently in a
  spawn worker pool, and :meth:`warm` lets a driver submit its whole
  grid up front instead of faulting cells in one at a time;
* **persistence** — with a :class:`~repro.runtime.parallel.ResultStore`
  attached, results survive the process and are shared across drivers,
  CLI invocations and CI runs, keyed by a content digest that includes
  a fingerprint of the simulator sources.

All keying goes through :func:`repro.runtime.parallel.canonical` via
:class:`~repro.runtime.parallel.CellSpec`: dict- or list-valued app
params canonicalize (sorted, normalized) instead of producing
unhashable or insertion-order-sensitive keys.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..hw import MachineConfig
from ..runtime import RunResult
from ..runtime.parallel import (CellSpec, GridExecutor, ResultStore,
                                code_fingerprint)

__all__ = ["ExperimentCache", "CACHE"]


class ExperimentCache:
    """Lazily-computed ``(kind, app, params, features, config)`` grid.

    ``jobs`` bounds the worker pool used for cache misses (clamped to
    the CPU count unless ``jobs_force``); ``store`` (a
    :class:`~repro.runtime.parallel.ResultStore`) makes the cache
    persistent.  Both default off, which reproduces the old in-process
    memo exactly.  ``executor`` replaces the whole evaluation engine —
    anything with ``map(specs) -> {digest: obj}`` — which is how grids
    route through a `repro serve` daemon
    (:class:`~repro.serve.RemoteExecutor`) without the drivers
    changing at all.
    """

    def __init__(self, config: Optional[MachineConfig] = None,
                 jobs: int = 1, store: Optional[ResultStore] = None,
                 jobs_force: bool = False, executor=None):
        self.config = config or MachineConfig()
        self.executor = executor if executor is not None else \
            GridExecutor(jobs=jobs, store=store, jobs_force=jobs_force)
        self._results: Dict[str, RunResult] = {}

    @property
    def jobs(self) -> int:
        return getattr(self.executor, "jobs", 1)

    @property
    def store(self) -> Optional[ResultStore]:
        return getattr(self.executor, "store", None)

    # ------------------------------------------------------------- specs

    def spec_svm(self, app_name: str, features,
                 nodes: Optional[int] = None,
                 config: Optional[MachineConfig] = None,
                 telemetry_us: Optional[float] = None,
                 **params) -> CellSpec:
        """Cell for one SVM run.  ``config`` overrides the cache's
        machine entirely (fault sweeps); otherwise only ``nodes`` is
        rescaled.  ``telemetry_us`` attaches a TimeSeriesSampler at
        that cadence (the summary rides the cached result)."""
        if config is None:
            config = self.config.scaled(nodes=nodes or self.config.nodes)
        return CellSpec(kind="svm", app=app_name, params=params,
                        features=features, config=config,
                        telemetry_us=telemetry_us)

    def spec_seq(self, app_name: str, **params) -> CellSpec:
        return CellSpec(kind="seq", app=app_name, params=params,
                        config=self.config)

    def spec_origin(self, app_name: str, nprocs: Optional[int] = None,
                    **params) -> CellSpec:
        return CellSpec(kind="origin", app=app_name, params=params,
                        nprocs=nprocs or self.config.total_procs)

    def spec_profile(self, app_name: str, features,
                     config: Optional[MachineConfig] = None,
                     slice_us: float = 1000.0, check: bool = False,
                     **params) -> CellSpec:
        return CellSpec(kind="profile", app=app_name, params=params,
                        features=features, config=config or self.config,
                        slice_us=slice_us, check=check)

    def spec_critpath(self, app_name: str, features,
                      config: Optional[MachineConfig] = None,
                      check: bool = False, **params) -> CellSpec:
        return CellSpec(kind="critpath", app=app_name, params=params,
                        features=features, config=config or self.config,
                        check=check)

    # -------------------------------------------------------- evaluation

    def warm(self, specs: Iterable[CellSpec]) -> None:
        """Evaluate (or load) every missing cell, ``jobs`` at a time.

        Drivers call this with their full grid before reading single
        cells, so misses run concurrently instead of faulting in one
        by one.  Merging is by digest: completion order never reaches
        the results.
        """
        fingerprint = code_fingerprint()
        pending = [spec for spec in specs
                   if spec.digest(fingerprint) not in self._results]
        if pending:
            self._results.update(self.executor.map(pending))

    def cell(self, spec: CellSpec):
        """The value for one cell (evaluating it if needed): a
        :class:`RunResult` for svm/seq/origin cells, a
        :class:`~repro.obs.Profile` or
        :class:`~repro.experiments.CritpathRun` for the others."""
        digest = spec.digest()
        result = self._results.get(digest)
        if result is None:
            result = self.executor.map([spec])[digest]
            self._results[digest] = result
        return result

    # ------------------------------------------------- classic accessors

    def svm(self, app_name: str, features,
            nodes: Optional[int] = None, **params) -> RunResult:
        return self.cell(self.spec_svm(app_name, features, nodes=nodes,
                                       **params))

    def seq(self, app_name: str, **params) -> RunResult:
        return self.cell(self.spec_seq(app_name, **params))

    def origin(self, app_name: str, nprocs: Optional[int] = None,
               **params) -> RunResult:
        return self.cell(self.spec_origin(app_name, nprocs=nprocs,
                                          **params))

    def speedup(self, app_name: str, result: RunResult) -> float:
        return self.seq(app_name).time_us / result.time_us


#: process-wide cache used by all experiment drivers and benchmarks
#: (in-memory only; the CLI builds persistent, parallel caches from
#: ``--jobs``/``--cache-dir``).
CACHE = ExperimentCache()
