"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_float"]


def format_float(value, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    return f"{value:.{digits}f}"


def format_table(headers: Sequence[str], rows: List[Sequence],
                 title: str = "") -> str:
    """Render a fixed-width text table (all experiment output goes
    through this, so bench logs read like the paper's tables)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([c if isinstance(c, str) else format_float(c)
                      for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "  ".join("-" * w for w in widths)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
