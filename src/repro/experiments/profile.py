"""The ``repro profile`` experiment: profiled runs across variants.

One :func:`collect_profile` call runs an application under one
protocol variant with a :class:`~repro.obs.PhaseProfiler` attached and
returns the JSON-ready :class:`~repro.obs.Profile`;
:func:`collect_profiles` sweeps a list of variants (pass Base first to
get the paper's Figure-3 normalization).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..hw import MachineConfig
from ..obs import PhaseProfiler, Profile
from ..runtime import run_svm

__all__ = ["collect_profile", "collect_profiles"]


def collect_profile(app, features, config: Optional[MachineConfig] = None,
                    slice_us: float = 1000.0, check: bool = False) -> Profile:
    """Run ``app`` under ``features`` with profiling; return the profile.

    ``check`` additionally installs the runtime invariant checker, so a
    time-accounting violation raises at the offending rank instead of
    only flagging the profile.
    """
    profiler = PhaseProfiler(slice_us=slice_us)
    result = run_svm(app, features, config=config, profiler=profiler,
                     check=check)
    return profiler.build_profile(result)


def collect_profiles(app_factory, variants: Sequence,
                     config: Optional[MachineConfig] = None,
                     slice_us: float = 1000.0,
                     check: bool = False) -> List[Profile]:
    """Profile ``app_factory()`` under each variant, in order."""
    return [collect_profile(app_factory(), feats, config=config,
                            slice_us=slice_us, check=check)
            for feats in variants]
