"""The ``repro profile`` experiment: profiled runs across variants.

One :func:`collect_profile` call runs an application under one
protocol variant with a :class:`~repro.obs.PhaseProfiler` attached and
returns the JSON-ready :class:`~repro.obs.Profile`;
:func:`collect_profiles` sweeps a list of variants (pass Base first to
get the paper's Figure-3 normalization).  :func:`collect_profiles_grid`
is the same sweep routed through an :class:`~repro.experiments.cache.
ExperimentCache`, so variants fan out across the worker pool and land
in the persistent store; cached profiles decode through
:meth:`~repro.obs.Profile.from_payload` and render byte-identically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..hw import MachineConfig
from ..obs import PhaseProfiler, Profile
from ..runtime import run_svm
from .cache import ExperimentCache

__all__ = ["collect_profile", "collect_profiles", "collect_profiles_grid"]


def collect_profile(app, features, config: Optional[MachineConfig] = None,
                    slice_us: float = 1000.0, check: bool = False) -> Profile:
    """Run ``app`` under ``features`` with profiling; return the profile.

    ``check`` additionally installs the runtime invariant checker, so a
    time-accounting violation raises at the offending rank instead of
    only flagging the profile.
    """
    profiler = PhaseProfiler(slice_us=slice_us)
    result = run_svm(app, features, config=config, profiler=profiler,
                     check=check)
    return profiler.build_profile(result)


def collect_profiles(app_factory, variants: Sequence,
                     config: Optional[MachineConfig] = None,
                     slice_us: float = 1000.0,
                     check: bool = False) -> List[Profile]:
    """Profile ``app_factory()`` under each variant, in order."""
    return [collect_profile(app_factory(), feats, config=config,
                            slice_us=slice_us, check=check)
            for feats in variants]


def collect_profiles_grid(app_name: str, variants: Sequence,
                          cache: ExperimentCache,
                          config: Optional[MachineConfig] = None,
                          slice_us: float = 1000.0,
                          check: bool = False,
                          params: Optional[dict] = None) -> List[Profile]:
    """Profile ``app_name`` under each variant via the grid executor.

    Profiles come back in ``variants`` order whatever the pool's
    completion order; with a store attached they persist like any
    other cell.
    """
    specs = [cache.spec_profile(app_name, feats, config=config,
                                slice_us=slice_us, check=check,
                                **(params or {}))
             for feats in variants]
    cache.warm(specs)
    return [cache.cell(spec) for spec in specs]
