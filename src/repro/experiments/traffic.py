"""Per-application communication traffic profiles.

Breaks a run's traffic down by message kind (the way Section 4 reasons
about the communication layer): how many page fetches, diff runs,
write-notice deposits, lock operations and barrier control words each
protocol sends, and the bytes behind them.  Not a numbered paper
artifact, but the quantity every Section 3.3 argument is about.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hw import MachineConfig
from ..runtime import run_on_backend
from ..runtime.backends import SVMBackend
from ..svm import ProtocolFeatures
from ..apps import APP_REGISTRY
from .reporting import format_table

__all__ = ["traffic_profile", "render_traffic"]


def traffic_profile(app_name: str, features: ProtocolFeatures,
                    config: Optional[MachineConfig] = None) -> Dict[str, Dict]:
    """Run one app/protocol and return packets+bytes by message kind."""
    backend = SVMBackend(config or MachineConfig(), features)
    run_on_backend(APP_REGISTRY[app_name](), backend,
                   system=features.name)
    monitor = backend.monitor
    kinds = sorted(set(monitor.packets_by_kind)
                   | set(monitor.bytes_by_kind))
    return {
        kind: {
            "packets": monitor.packets_by_kind.get(kind, 0),
            "bytes": monitor.bytes_by_kind.get(kind, 0),
        }
        for kind in kinds
    }


def render_traffic(profiles: Dict[str, Dict[str, Dict]],
                   app_name: str) -> str:
    """``profiles`` maps protocol name -> traffic_profile() result."""
    kinds = sorted({k for p in profiles.values() for k in p})
    rows = []
    for kind in kinds:
        row = [kind]
        for name, profile in profiles.items():
            entry = profile.get(kind, {"packets": 0, "bytes": 0})
            row.append(f"{entry['packets']}p/{entry['bytes'] // 1024}KB")
        rows.append(tuple(row))
    return format_table(["kind"] + list(profiles), rows,
                        title=f"Traffic profile by message kind: "
                              f"{app_name}")
