"""Ablations for the design points Section 3.3 discusses in prose.

1. **Head-of-line blocking** (Water-nsquared/DW): lock messages share
   one NI-to-host delivery FIFO with data in every protocol except
   NIL.  We measure lock time with and without NI locks under the same
   eager-invalidation traffic — the isolated version of the paper's
   "control messages stuck behind data" finding.

2. **Post-queue size** (Barnes-spatial/DD): the direct-diff message
   blow-up stalls the host on a full post queue; the paper suggests a
   larger post queue or faster draining as remedies (its NT experiment
   with deeper outgoing pipelining recovered the lost speedup).  We
   sweep the post-queue depth.

3. **Diff scatter** (Barnes-spatial): direct-diff cost against the
   number of modified runs per page — where the packed/direct
   crossover falls.

4. **Eager vs lazy write notices**: message-count and time cost of
   DW's eager broadcast against the Base piggyback, on a lock-heavy
   workload.
"""

from __future__ import annotations

from typing import Dict, List

from ..hw import MachineConfig
from ..runtime import run_sequential, run_svm
from ..svm import BASE, DW, DW_RF_DD, GENIMA, ProtocolFeatures
from ..apps import BarnesSpatial, WaterNsquared
from .reporting import format_table

__all__ = [
    "ablate_hol_blocking",
    "ablate_post_queue",
    "ablate_diff_scatter",
    "ablate_eager_wn",
    "render_ablation",
]


def ablate_hol_blocking(molecules: int = 512) -> List[Dict]:
    """Water-nsquared lock time: DW (locks share the delivery FIFO)
    vs GeNIMA (locks handled in NI firmware)."""
    rows = []
    for feats in (BASE, DW, GENIMA):
        app = WaterNsquared(molecules=molecules, steps=1)
        res = run_svm(app, feats)
        rows.append({
            "protocol": feats.name,
            "lock_ms": res.mean_breakdown.lock / 1000.0,
            "time_ms": res.time_us / 1000.0,
            "messages": res.stats["messages"],
        })
    return rows


def ablate_post_queue(depths=(16, 64, 256),
                      ni_speeds=(5.0, 2.0)) -> List[Dict]:
    """Barnes-spatial under direct diffs: post-queue depth vs NI
    message-handling speed.

    The paper's remedies for the direct-diff blow-up are (i) a larger
    post queue and (iii) faster pipelining of successive messages
    through the NI (their NT experiment with (iii) recovered the lost
    speedup).  In this model the flood binds on per-message NI
    processing, so the pipelining/speed axis is the one that moves the
    result; queue depth alone absorbs bursts but not sustained rate.
    """
    seq = run_sequential(BarnesSpatial())
    rows = []
    for ni_proc in ni_speeds:
        for depth in depths:
            config = MachineConfig(post_queue_len=depth,
                                   ni_proc_us=ni_proc)
            res = run_svm(BarnesSpatial(), DW_RF_DD, config=config)
            rows.append({
                "ni_proc_us": ni_proc,
                "post_queue": depth,
                "speedup": seq.time_us / res.time_us,
                "barrier_ms": res.mean_breakdown.barrier / 1000.0,
            })
    return rows


def ablate_diff_scatter(runs_values=(1, 4, 10, 20, 30)) -> List[Dict]:
    """Direct vs packed diffs as within-page write scatter grows."""
    rows = []
    for runs in runs_values:
        seq = run_sequential(BarnesSpatial(scatter_runs=runs))
        packed = run_svm(BarnesSpatial(scatter_runs=runs),
                         ProtocolFeatures(direct_writes=True,
                                          remote_fetch=True))
        direct = run_svm(BarnesSpatial(scatter_runs=runs), DW_RF_DD)
        rows.append({
            "runs_per_page": runs,
            "packed_speedup": seq.time_us / packed.time_us,
            "direct_speedup": seq.time_us / direct.time_us,
            "direct_messages": direct.stats["messages"],
            "packed_messages": packed.stats["messages"],
        })
    return rows


def ablate_eager_wn(molecules: int = 512) -> List[Dict]:
    """Eager (DW) vs piggybacked (Base) write-notice propagation."""
    rows = []
    for feats in (BASE, DW):
        app = WaterNsquared(molecules=molecules, steps=1)
        res = run_svm(app, feats)
        rows.append({
            "protocol": feats.name,
            "wn_messages": res.stats["wn_messages"],
            "messages": res.stats["messages"],
            "time_ms": res.time_us / 1000.0,
        })
    return rows


def render_ablation(rows: List[Dict], title: str) -> str:
    if not rows:
        return title + "\n(no data)"
    headers = list(rows[0])
    return format_table(headers, [tuple(r[h] for h in headers)
                                  for r in rows], title=title)
