"""Figure drivers: speedup charts and execution-time breakdowns.

* Figure 1 — speedups, hardware DSM (Origin 2000) vs. the Base SVM
  protocol, 16 processors, all ten applications.
* Figure 2 — speedups for the protocol ladder (Base, DW, DW+RF,
  DW+RF+DD, GeNIMA) per application.
* Figure 3 — normalized execution-time breakdowns (Compute / Data /
  Lock / AcqRel / Barrier) for the same grid.
* Figure 4 — speedups for Origin 2000, Base and GeNIMA.

Each ``compute_*`` returns plain data; each ``render_*`` produces the
text table the benchmark harness prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..apps import PAPER_APPS
from ..sim import BUCKETS
from ..svm import BASE, GENIMA, PROTOCOL_LADDER
from .cache import CACHE, ExperimentCache
from .reporting import format_table

__all__ = [
    "compute_figure1", "render_figure1",
    "compute_figure2", "render_figure2",
    "compute_figure3", "render_figure3",
    "compute_figure4", "render_figure4",
]

LADDER_NAMES = [f.name for f in PROTOCOL_LADDER]


# ------------------------------------------------------------------ Figure 1

def compute_figure1(cache: ExperimentCache = CACHE,
                    apps: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
    apps = apps or PAPER_APPS
    cache.warm([spec for app in apps
                for spec in (cache.spec_seq(app), cache.spec_origin(app),
                             cache.spec_svm(app, BASE))])
    out = {}
    for app in apps:
        out[app] = {
            "Origin": cache.speedup(app, cache.origin(app)),
            "Base": cache.speedup(app, cache.svm(app, BASE)),
        }
    return out


def render_figure1(data: Dict[str, Dict[str, float]]) -> str:
    rows = [(app, vals["Origin"], vals["Base"]) for app, vals in data.items()]
    return format_table(
        ["Application", "Origin 2000", "SVM (Base)"], rows,
        title="Figure 1: speedups, hardware DSM vs Base SVM (16 procs)")


# ------------------------------------------------------------------ Figure 2

def compute_figure2(cache: ExperimentCache = CACHE,
                    apps: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
    apps = apps or PAPER_APPS
    cache.warm([cache.spec_seq(app) for app in apps]
               + [cache.spec_svm(app, feats)
                  for app in apps for feats in PROTOCOL_LADDER])
    out = {}
    for app in apps:
        out[app] = {
            feats.name: cache.speedup(app, cache.svm(app, feats))
            for feats in PROTOCOL_LADDER
        }
    return out


def render_figure2(data: Dict[str, Dict[str, float]]) -> str:
    rows = [tuple([app] + [vals[n] for n in LADDER_NAMES])
            for app, vals in data.items()]
    return format_table(
        ["Application"] + LADDER_NAMES, rows,
        title="Figure 2: application speedups per protocol (16 procs)")


# ------------------------------------------------------------------ Figure 3

def compute_figure3(cache: ExperimentCache = CACHE,
                    apps: Optional[List[str]] = None) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per app, per protocol: execution-time fractions normalized to
    the Base protocol's total (as the paper's stacked bars are)."""
    apps = apps or PAPER_APPS
    cache.warm([cache.spec_svm(app, feats)
                for app in apps for feats in PROTOCOL_LADDER])
    out = {}
    for app in apps:
        base_total = cache.svm(app, BASE).mean_breakdown.total
        per_protocol = {}
        for feats in PROTOCOL_LADDER:
            mean = cache.svm(app, feats).mean_breakdown
            per_protocol[feats.name] = {
                bucket: getattr(mean, bucket) / base_total
                for bucket in BUCKETS
            }
        out[app] = per_protocol
    return out


def render_figure3(data) -> str:
    rows = []
    for app, per_protocol in data.items():
        for name in LADDER_NAMES:
            frac = per_protocol[name]
            rows.append((app, name) + tuple(frac[b] for b in BUCKETS)
                        + (sum(frac.values()),))
    return format_table(
        ["Application", "Protocol"] + list(BUCKETS) + ["total"], rows,
        title=("Figure 3: execution-time breakdowns, normalized to each "
               "application's Base total"))


# ------------------------------------------------------------------ Figure 4

def compute_figure4(cache: ExperimentCache = CACHE,
                    apps: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
    apps = apps or PAPER_APPS
    cache.warm([spec for app in apps
                for spec in (cache.spec_seq(app), cache.spec_origin(app),
                             cache.spec_svm(app, BASE),
                             cache.spec_svm(app, GENIMA))])
    out = {}
    for app in apps:
        out[app] = {
            "Origin": cache.speedup(app, cache.origin(app)),
            "Base": cache.speedup(app, cache.svm(app, BASE)),
            "GeNIMA": cache.speedup(app, cache.svm(app, GENIMA)),
        }
    return out


def render_figure4(data: Dict[str, Dict[str, float]]) -> str:
    rows = [(app, v["Origin"], v["Base"], v["GeNIMA"])
            for app, v in data.items()]
    return format_table(
        ["Application", "Origin 2000", "Base", "GeNIMA"], rows,
        title="Figure 4: speedups, hardware DSM vs Base vs GeNIMA")
