"""Experiment drivers: one module per paper figure/table, plus
calibration microbenchmarks and ablations."""

from .ablations import (ablate_diff_scatter, ablate_eager_wn,
                        ablate_hol_blocking, ablate_post_queue,
                        render_ablation)
from .cache import CACHE, ExperimentCache
from .calibration import (measure_comm_layer, measure_page_fetch,
                          render_calibration)
from .critpath import (CritpathRun, collect_critpath, collect_critpaths,
                       collect_critpaths_grid)
from .faultsweep import (DEFAULT_LOSS_RATES, compute_faultsweep,
                         render_faultsweep)
from .figures import (compute_figure1, compute_figure2, compute_figure3,
                      compute_figure4, render_figure1, render_figure2,
                      render_figure3, render_figure4)
from .profile import (collect_profile, collect_profiles,
                      collect_profiles_grid)
from .reporting import format_table
from .scale import (SCALE_NODES, SCALE_TELEMETRY_US, SCALE_TOPOLOGIES,
                    compute_scale, render_scale, scale_params)
from .sensitivity import (interrupt_cost_sensitivity, render_scaling,
                          render_sensitivity, scaling_study)
from .traffic import render_traffic, traffic_profile
from .tables import (compute_table1, compute_table2, compute_table34,
                     compute_table5, render_table1, render_table2,
                     render_table34, render_table5)

__all__ = [
    "CACHE",
    "ExperimentCache",
    "collect_profile", "collect_profiles", "collect_profiles_grid",
    "CritpathRun", "collect_critpath", "collect_critpaths",
    "collect_critpaths_grid",
    "format_table",
    "measure_comm_layer",
    "measure_page_fetch",
    "render_calibration",
    "compute_figure1", "render_figure1",
    "compute_figure2", "render_figure2",
    "compute_figure3", "render_figure3",
    "compute_figure4", "render_figure4",
    "compute_table1", "render_table1",
    "compute_table2", "render_table2",
    "compute_table34", "render_table34",
    "compute_table5", "render_table5",
    "DEFAULT_LOSS_RATES", "compute_faultsweep", "render_faultsweep",
    "ablate_hol_blocking", "ablate_post_queue",
    "ablate_diff_scatter", "ablate_eager_wn", "render_ablation",
    "interrupt_cost_sensitivity", "render_sensitivity",
    "scaling_study", "render_scaling",
    "SCALE_NODES", "SCALE_TELEMETRY_US", "SCALE_TOPOLOGIES",
    "scale_params",
    "compute_scale", "render_scale",
    "traffic_profile", "render_traffic",
]
