"""The ``repro critpath`` experiment: spanned runs -> critical paths.

One :func:`collect_critpath` call runs an application under one
protocol variant with causal span recording armed (``spans=True``),
extracts the critical path offline
(:func:`repro.analysis.extract_critical_path`) and returns the run,
the path and the full tracer (kept so callers can export the span
stream to Perfetto); :func:`collect_critpaths` sweeps a list of
variants (pass Base first so the ladder diff normalizes the way the
paper does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis import extract_critical_path
from ..hw import MachineConfig
from ..runtime import run_svm
from ..sim import Tracer

__all__ = ["CritpathRun", "collect_critpath", "collect_critpaths",
           "collect_critpaths_grid"]


@dataclass
class CritpathRun:
    """One spanned run: its result, critical path and span trace.

    ``tracer`` is ``None`` when the run was decoded from the persistent
    store: the span stream is not persisted, only the extracted path,
    so Perfetto export and the offline sanitizer need a live run.
    """

    variant: str   #: protocol variant name ("Base", "GeNIMA", ...)
    result: object     #: the :class:`~repro.runtime.results.RunResult`
    path: object       #: the :class:`~repro.analysis.CriticalPath`
    tracer: Optional[Tracer]  #: span stream (None for cached runs)


def collect_critpath(app, features,
                     config: Optional[MachineConfig] = None,
                     check: bool = False) -> CritpathRun:
    """Run ``app`` under ``features`` with spans; extract the path.

    ``check`` additionally installs the runtime invariant checker.
    The tracer is unbounded: critical-path extraction needs the whole
    span stream, not a ring-buffer suffix.
    """
    tracer = Tracer(capacity=None)
    result = run_svm(app, features, config=config, tracer=tracer,
                     check=check, spans=True)
    path = extract_critical_path(tracer.events)
    return CritpathRun(variant=features.name, result=result,
                       path=path, tracer=tracer)


def collect_critpaths(app_factory, variants: Sequence,
                      config: Optional[MachineConfig] = None,
                      check: bool = False) -> List[CritpathRun]:
    """Collect ``app_factory()``'s critical path under each variant."""
    return [collect_critpath(app_factory(), feats, config=config,
                             check=check)
            for feats in variants]


def collect_critpaths_grid(app_name: str, variants: Sequence, cache,
                           config: Optional[MachineConfig] = None,
                           check: bool = False,
                           params: Optional[dict] = None
                           ) -> List[CritpathRun]:
    """The variant sweep via the grid executor (see
    :func:`repro.experiments.profile.collect_profiles_grid`).

    Returned runs carry ``tracer=None`` even on a cache miss — every
    evaluation path must yield the same object, and the store keeps
    only path + result.  Callers that need the span stream (Perfetto,
    ``--check``) must use :func:`collect_critpaths`.
    """
    specs = [cache.spec_critpath(app_name, feats, config=config,
                                 check=check, **(params or {}))
             for feats in variants]
    cache.warm(specs)
    return [cache.cell(spec) for spec in specs]
