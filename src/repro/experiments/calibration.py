"""Communication-layer microbenchmarks (Section 3.1 calibration).

The paper states: one-way one-word latency ~18 us, maximum bandwidth
~95 MB/s, async send post overhead ~2 us, 4 KB page fetch ~110 us with
remote fetch (~40 us for one word) and ~200 us through the interrupt
path.  These functions measure the simulated communication layer the
same way, and ``benchmarks/test_calibration.py`` asserts the results
sit in bands around the paper's numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hw import Machine, MachineConfig
from ..svm import BASE, DW_RF, HLRCProtocol
from ..vmmc import VMMC
from .reporting import format_table

__all__ = ["measure_comm_layer", "measure_page_fetch",
           "render_calibration"]


def measure_comm_layer(
        config: Optional[MachineConfig] = None) -> Dict[str, float]:
    """One-word latency, large-transfer bandwidth, post overhead."""
    config = config or MachineConfig()
    machine = Machine(config)
    vmmc = VMMC(machine)
    sim = machine.sim
    out: Dict[str, float] = {}

    def bench():
        # post overhead: async send returns after the post.
        t0 = sim.now
        yield from vmmc.send(0, 1, size=8)
        out["post_overhead_us"] = sim.now - t0
        yield sim.timeout(500.0)
        # one-way latency: synchronous one-word send, minus notify.
        t0 = sim.now
        yield from vmmc.send(0, 1, size=8, await_delivery=True)
        out["one_word_latency_us"] = sim.now - t0 - config.notify_us
        yield sim.timeout(500.0)
        # bandwidth: stream 4 MB through pipelined sends.
        total = 4 << 20
        t0 = sim.now
        done = sim.event()
        sent = [0]

        def delivered(_msg):
            sent[0] += 1
            if sent[0] == total // config.packet_max:
                done.succeed()

        for _ in range(total // config.packet_max):
            yield from vmmc.send(0, 1, size=config.packet_max,
                                 on_delivered=delivered)
        yield done
        out["bandwidth_mbps"] = total / (sim.now - t0)

    sim.process(bench())
    sim.run()
    return out


def measure_page_fetch(
        config: Optional[MachineConfig] = None) -> Dict[str, float]:
    """Uncontended page fetch latency, Base (interrupt) vs RF paths."""
    config = config or MachineConfig()
    out: Dict[str, float] = {}
    for label, feats in (("base", BASE), ("rf", DW_RF)):
        for size_label, n_pages in (("page", 1),):
            machine = Machine(config)
            proto = HLRCProtocol(machine, feats)
            region = proto.allocate("calib", 8, home_policy="node:1")
            times = []

            def worker():
                t0 = machine.sim.now
                yield from proto.read(0, region, [0])
                times.append(machine.sim.now - t0 - config.page_fault_us)

            machine.sim.process(worker())
            machine.run()
            out[f"{label}_{size_label}_fetch_us"] = times[0]
    return out


def render_calibration(comm: Dict[str, float],
                       fetch: Dict[str, float]) -> str:
    rows = [
        ("async send post overhead (us)", "~2", comm["post_overhead_us"]),
        ("one-way 1-word latency (us)", "~18", comm["one_word_latency_us"]),
        ("max bandwidth (MB/s)", "~95", comm["bandwidth_mbps"]),
        ("4KB fetch, remote fetch (us)", "~110", fetch["rf_page_fetch_us"]),
        ("4KB fetch, interrupt path (us)", "~200",
         fetch["base_page_fetch_us"]),
    ]
    return format_table(["Metric", "Paper", "Measured"], rows,
                        title="Section 3.1 communication-layer calibration")
