"""``python -m repro`` entry point.

The ``__name__`` guard is load-bearing: ``multiprocessing``'s spawn
workers (the ``--jobs`` grid executor) re-import this module as
``__mp_main__`` while bootstrapping, and must not re-run the CLI.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
