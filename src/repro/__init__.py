"""GeNIMA reproduction.

A full-stack simulation of "Using Network Interface Support to Avoid
Asynchronous Protocol Processing in Shared Virtual Memory Systems"
(Bilas, Liao & Singh, ISCA 1999): the VMMC communication layer with
remote deposit / remote fetch / NI locks, the HLRC-SMP base protocol
and the GeNIMA protocol ladder, the SPLASH-2 application models, and a
hardware-DSM yardstick -- everything needed to regenerate the paper's
figures and tables.

Quick start::

    from repro import run_svm, run_sequential, speedup, GENIMA
    from repro.apps import FFT

    app = FFT(log2_n=16)
    seq = run_sequential(app)
    par = run_svm(app, GENIMA)
    print(speedup(seq, par))
"""

from .hw import PAPER_16P, PAPER_32P, FaultConfig, Machine, MachineConfig
from .hwdsm import HWDSMBackend, HWDSMConfig
from .runtime import (RunResult, run_hwdsm, run_on_backend, run_sequential,
                      run_svm, speedup)
from .svm import (BASE, DW, DW_RF, DW_RF_DD, GENIMA, PROTOCOL_LADDER,
                  HLRCProtocol, ProtocolFeatures)

__version__ = "1.0.0"

__all__ = [
    "FaultConfig",
    "Machine",
    "MachineConfig",
    "PAPER_16P",
    "PAPER_32P",
    "HWDSMBackend",
    "HWDSMConfig",
    "RunResult",
    "run_hwdsm",
    "run_on_backend",
    "run_sequential",
    "run_svm",
    "speedup",
    "BASE",
    "DW",
    "DW_RF",
    "DW_RF_DD",
    "GENIMA",
    "PROTOCOL_LADDER",
    "HLRCProtocol",
    "ProtocolFeatures",
    "__version__",
]
