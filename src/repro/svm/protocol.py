"""The HLRC-SMP protocol engine and its GeNIMA extensions.

One class implements the whole protocol ladder of Section 3.3; a
:class:`~repro.svm.features.ProtocolFeatures` value selects which NI
mechanisms are used, from the interrupt-driven Base protocol to the
fully synchronous GeNIMA.

Application processes drive the engine through rank-level generator
operations (``compute`` / ``read`` / ``write`` / ``lock`` / ``unlock``
/ ``acquire_flag`` / ``release_flag`` / ``barrier``); every microsecond
of simulated time is charged to one of the Figure 3 execution-time
buckets, and mprotect / barrier-protocol time is tracked separately for
Table 2.

Protocol mechanics implemented here (see DESIGN.md for the mapping to
the paper's text): per-node page tables and vector clocks, intervals
and write notices, twin/diff bookkeeping with lazy (packed, interrupt
applied) or eager (direct-deposit) flushing, eager write-notice
broadcast, remote page fetch with the timestamp-check retry loop, and
home-side version tracking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..hw import Machine
from ..sim import SimulationError, TimeBuckets
from ..sim.spans import nic_track, node_track, rank_track
from ..vmmc import NILockManager, VMMC
from .barriers import BarrierManager
from .diffs import DiffShape
from .features import ProtocolFeatures
from .locks import InterruptLockManager
from .mprotect import MprotectModel
from .pages import (HomePage, NodePageTable, PageAccess, PageDirectory,
                    SharedRegion)
from .timestamps import Interval, IntervalLog, VectorClock

__all__ = ["HLRCProtocol"]

#: small protocol message sizes on the wire (bytes)
PAGE_REQ_BYTES = 32
PAGE_REPLY_EXTRA_BYTES = 32
WN_BASE_BYTES = 24
WN_PER_PAGE_BYTES = 8


class HLRCProtocol:
    """Home-based LRC for SMP clusters, with optional NI mechanisms."""

    def __init__(self, machine: Machine, features: ProtocolFeatures,
                 vmmc: Optional[VMMC] = None, num_locks: int = 1 << 16,
                 tracer=None, spans=None):
        self.machine = machine
        #: optional repro.sim.Tracer receiving protocol events.
        self.tracer = tracer
        #: optional repro.sim.SpanTracer receiving causal spans.
        self.spans = spans
        #: optional repro.analysis.InvariantChecker (see its install()).
        self.invariants = None
        self.sim = machine.sim
        self.config = machine.config
        self.features = features
        self.vmmc = vmmc or VMMC(machine)
        if spans is not None and self.vmmc.spans is None:
            # A protocol built standalone (tests) still spans fetches.
            self.vmmc.spans = spans
        nodes = self.config.nodes

        self.directory = PageDirectory(self.config)
        self.mprotect = MprotectModel(self.config)
        self.tables = [NodePageTable(n, self.config) for n in range(nodes)]
        self.interval_log = IntervalLog(nodes)
        #: per node: vector of interval indices whose notices are applied.
        self.node_clock = [VectorClock(nodes) for _ in range(nodes)]
        #: per node: latest broadcast interval received from each writer.
        self.wn_received = [[0] * nodes for _ in range(nodes)]
        #: per node: (writer, wanted interval, event, waiter span track).
        self._wn_waiters: List[List[Tuple[int, int, object,
                                          Optional[str]]]] = \
            [[] for _ in range(nodes)]
        #: per node: closed-but-unflushed intervals (lazy diffing).
        self.pending_flush: List[List[Tuple[int, Dict[int, DiffShape]]]] = \
            [[] for _ in range(nodes)]
        self._homes: Dict[int, HomePage] = {}
        self._flags: Dict[int, dict] = {}
        #: per gid: (needed versions, event, waiter span track).
        self._home_waiters: Dict[int, List[Tuple[Dict[int, int], object,
                                                 Optional[str]]]] = {}
        self._inflight_fetch: Dict[Tuple[int, int], object] = {}

        # Synchronization managers.
        if features.ni_locks:
            self.ni_locks = NILockManager(self.vmmc, num_locks=num_locks,
                                          tracer=tracer, spans=spans)
            self.svm_locks = None
        else:
            self.ni_locks = None
            self.svm_locks = InterruptLockManager(self)
        self.barriers = BarrierManager(self)

        # Per-rank accounting.
        total = self.config.total_procs
        self.buckets: List[TimeBuckets] = [TimeBuckets() for _ in range(total)]
        self.barrier_protocol_us = [0.0] * total

        # Statistics.
        self.page_fetches = 0
        self.fetch_retries = 0
        self.diffs_sent = 0
        self.diff_runs_sent = 0
        self.wn_messages = 0
        self.home_allocations = 0
        self.home_migrations = 0
        machine.metrics.register_gauges(
            "svm", self, "page_fetches", "fetch_retries", "diffs_sent",
            "diff_runs_sent", "wn_messages", "home_allocations",
            "home_migrations")
        machine.metrics.gauge("svm.interrupts",
                              lambda: self.total_interrupts)

    def _trace(self, category: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.record(self.sim.now, category, **fields)

    def register_probes(self, sampler) -> None:
        """Join a TimeSeriesSampler (repro.obs.timeseries): per-node
        fault and invalidation counters (the sampler differences them
        into per-slice rates) plus the active lock manager's wait-depth
        vector."""
        for table in self.tables:
            sampler.probe_counter(
                "svm.page_faults", table.node,
                lambda t=table: t.read_faults + t.write_faults)
            sampler.probe_counter(
                "svm.invalidations", table.node,
                lambda t=table: t.invalidations)
        manager = self.ni_locks if self.ni_locks is not None \
            else self.svm_locks
        if manager is not None:
            manager.register_probes(sampler)

    # ------------------------------------------------------------- regions

    def allocate(self, name: str, n_pages: int, home_policy: str = "blocked",
                 home_fn=None, concrete: bool = False) -> SharedRegion:
        """Allocate a shared region (and export homed pages for fetch)."""
        region = self.directory.allocate(
            name, n_pages, home_policy=home_policy, home_fn=home_fn,
            concrete=concrete)
        # With remote fetch only homes export their pages (Section 2's
        # scalability argument); deposit-based transfer would require
        # everyone to export everything.  First-touch pages are
        # exported when their home is assigned.
        for i in range(n_pages):
            home = region.home_of(i)
            if home is not None:
                self.vmmc.exports.export(home, region.gid(i))
        return region

    def _ensure_home(self, gid: int, toucher_node: int) -> int:
        """Resolve a page's home, assigning it on first touch.

        The paper counts home-allocation requests among the infrequent
        operations that are "not so critical for common-case system
        performance"; the assignment itself is a small protocol action
        folded into the triggering fault.
        """
        home = self.directory.home_of(gid)
        if home is None:
            region = self.directory.region_of(gid)
            region.homes[gid - region.base] = toucher_node
            self.vmmc.exports.export(toucher_node, gid)
            self.home_allocations += 1
            home = toucher_node
        return home

    def migrate_home(self, rank: int, region: SharedRegion, index: int):
        """Generator: migrate a page's home to the caller's node.

        Must be called at a quiescent point for the page (e.g. right
        after a barrier): the protocol refuses to migrate a page with
        parked requests, and in-flight diffs toward the old home are
        the caller's responsibility to have flushed (a barrier does).
        The authoritative copy is pulled from the old home and every
        node's directory is updated with small deposits.
        """
        node_id = self.config.node_of(rank)
        gid = region.gid(index)
        old = self.directory.home_of(gid)
        t0 = self.sim.now
        if old == node_id:
            return
        if self._home_waiters.get(gid):
            raise RuntimeError(
                f"page {gid} has parked requests; migrate at a "
                f"quiescent point")
        if old is None:
            self._ensure_home(gid, node_id)
            yield self.sim.timeout(self.config.protocol_op_us)
        else:
            # Pull the authoritative copy and its version vector.
            yield from self.vmmc.fetch(node_id, old,
                                       self.config.page_size + 64,
                                       track=rank_track(rank))
            region.homes[index] = node_id
            self.vmmc.exports.export(node_id, gid)
            # Tell everyone where the page now lives.
            for other in range(self.config.nodes):
                if other != node_id:
                    yield from self.vmmc.send(node_id, other, 24,
                                              kind="home_update")
        self.tables[node_id].mark_valid(gid, why="migrate")
        self.home_migrations += 1
        self.buckets[rank].charge("data", self.sim.now - t0)

    def _home(self, gid: int) -> HomePage:
        hp = self._homes.get(gid)
        if hp is None:
            hp = HomePage()
            self._homes[gid] = hp
        return hp

    # -------------------------------------------------------------- compute

    def compute(self, rank: int, us: float, bus_intensity: float = 0.0):
        """Local computation (includes local memory stalls)."""
        node = self.machine.node_of(rank)
        t = node.compute_time(us, bus_intensity)
        t0 = self.sim.now
        yield self.sim.timeout(t)
        self.buckets[rank].charge("compute", self.sim.now - t0)

    # ----------------------------------------------------------------- read

    def read(self, rank: int, region: SharedRegion, indices):
        """Access pages for reading; faults fetch them from their homes."""
        node_id = self.config.node_of(rank)
        table = self.tables[node_id]
        t0 = self.sim.now
        for idx in indices:
            gid = region.gid(idx)
            if table.access(gid) is PageAccess.INVALID:
                yield from self._read_fault(rank, node_id, gid)
        self.buckets[rank].charge("data", self.sim.now - t0)

    def _read_fault(self, rank: int, node_id: int, gid: int):
        cfg = self.config
        table = self.tables[node_id]
        sp = self.spans
        track = rank_track(rank)
        sid = sp.begin("page.fault", track, bucket="data", gid=gid) \
            if sp is not None else None
        try:
            if self.tracer is not None:
                self._trace("fault.read", rank=rank, gid=gid)
            yield self.sim.timeout(cfg.page_fault_us)
            # Another process of this node may already be fetching the
            # page.
            key = (node_id, gid)
            inflight = self._inflight_fetch.get(key)
            if inflight is not None:
                yield inflight
                return
            done = self.sim.event()
            self._inflight_fetch[key] = done
            try:
                # needed and the clock snapshot are read back-to-back
                # (no yield between them): together they name the page
                # version this fault is obliged to observe, which the
                # sanitizer replays against the happens-before graph.
                needed = table.needed_versions(gid)
                if self.tracer is not None:
                    # Guarded at the call site: the sorted tuples below
                    # are per-fault allocations no one consumes on an
                    # untraced run.
                    self._trace("fault.fetch", node=node_id, gid=gid,
                                needed=tuple(sorted(needed.items())),
                                clock=self.node_clock[node_id].values)
                home = self._ensure_home(gid, node_id)
                if home == node_id:
                    yield from self._wait_home_ready(gid, needed,
                                                     track=track)
                elif self.features.remote_fetch:
                    yield from self._fetch_rf(node_id, gid, home, needed,
                                              track=track)
                else:
                    yield from self._fetch_base(node_id, gid, home,
                                                needed, track=track)
                cost = self.mprotect.protect(node_id, [gid])
                yield self.sim.timeout(cost)
                table.mark_valid(gid)
                if self.tracer is not None:
                    self._trace("fault.done", node=node_id, gid=gid)
            finally:
                del self._inflight_fetch[key]
                done.succeed()
        finally:
            if sp is not None:
                sp.end(sid)

    def _wait_home_ready(self, gid: int, needed: Dict[int, int],
                         track: Optional[str] = None):
        """Local read at the home: wait for outstanding diffs, if any."""
        hp = self._home(gid)
        if not hp.satisfies(needed):
            ev = self.sim.event()
            self._home_waiters.setdefault(gid, []).append(
                (needed, ev, track))
            yield ev
        yield self.sim.timeout(self.config.protocol_op_us)
        if self.tracer is not None:
            self._trace("fetch.ok", node=self.directory.home_of(gid),
                        gid=gid,
                        snapshot=tuple(sorted(hp.snapshot().items())),
                        needed=tuple(sorted(needed.items())))

    def _fetch_base(self, node_id: int, gid: int, home: int,
                    needed: Dict[int, int],
                    track: Optional[str] = None):
        """Interrupt path: request message, home handler deposits page."""
        self.page_fetches += 1
        done = self.sim.event()
        sp = self.spans
        fid = sp.flow(track, "page_req", "data", gid=gid) \
            if sp is not None and track is not None else None

        def at_home(_msg):
            self.sim.process(
                self._home_page_handler(gid, home, needed, node_id, done,
                                        link=fid, wtrack=track),
                name=f"pagehdl.{gid}")

        yield from self.vmmc.send(node_id, home, PAGE_REQ_BYTES,
                                  kind="page_req", on_delivered=at_home)
        snapshot = yield done
        yield self.sim.timeout(self.config.notify_us)
        if self.tracer is not None:
            self._trace("fetch.ok", node=node_id, gid=gid,
                        snapshot=tuple(sorted((snapshot or {}).items())),
                        needed=tuple(sorted(needed.items())))

    def _home_page_handler(self, gid: int, home: int,
                           needed: Dict[int, int], requester: int, done,
                           link: Optional[int] = None,
                           wtrack: Optional[str] = None):
        """Home-side interrupt handler for a Base-protocol page request.

        If the needed diff has not arrived yet, the request is parked
        and the handler *exits* — it must not hold the node's (serial)
        protocol process while waiting, or the diff-apply handler
        queued behind it could never run.  The home processor knows
        when diffs apply, so the parked request is re-dispatched then.
        """
        node = self.machine.nodes[home]
        hp = self._home(gid)
        sp = self.spans
        htrack = node_track(home)
        entry_delay = True
        while True:
            served = [False]
            hsid = sp.begin("page.home", htrack, bucket="data",
                            link=link, gid=gid) if sp is not None else None

            def body():
                yield self.sim.timeout(self.config.protocol_op_us)
                if hp.satisfies(needed):
                    served[0] = True
                    # The reply carries the version snapshot the home
                    # served, so the requester can attest what it read.
                    snap = hp.snapshot()
                    rfid = sp.flow(htrack, "page_reply", "data",
                                   gid=gid) if sp is not None else None

                    def reply_arrived(_m):
                        if sp is not None:
                            sp.wake(rfid, wtrack)
                        done.succeed(snap)

                    yield from self.vmmc.send(
                        home, requester,
                        self.config.page_size + PAGE_REPLY_EXTRA_BYTES,
                        kind="page_reply",
                        on_delivered=reply_arrived)

            yield from node.handler(body(), entry_delay=entry_delay)
            if sp is not None:
                sp.end(hsid)
            if served[0]:
                return
            ev = self.sim.event()
            self._home_waiters.setdefault(gid, []).append(
                (needed, ev, htrack))
            # The waker's diff_apply flow id arrives as the event value:
            # the re-dispatched activation's span links to it.
            link = yield ev
            entry_delay = False  # re-dispatch, not a fresh interrupt

    def _fetch_rf(self, node_id: int, gid: int, home: int,
                  needed: Dict[int, int],
                  track: Optional[str] = None):
        """Remote-fetch path with the timestamp-check retry loop.

        The loop is bounded by ``fetch_retry_max``: a home copy that
        never reaches the needed versions (lost diff, protocol bug)
        must surface as a diagnostic, not livelock the simulation.
        """
        cfg = self.config
        hp = self._home(gid)
        retries = 0
        while True:
            self.page_fetches += 1
            reply = yield from self.vmmc.fetch(
                node_id, home, cfg.page_size + 64,
                on_served=hp.snapshot, track=track)
            if HomePage.snapshot_satisfies(reply.payload, needed):
                if self.tracer is not None:
                    self._trace(
                        "fetch.ok", node=node_id, gid=gid,
                        snapshot=tuple(sorted(reply.payload.items())),
                        needed=tuple(sorted(needed.items())))
                return
            self.fetch_retries += 1
            retries += 1
            if retries > cfg.fetch_retry_max:
                self._trace("fetch.retry_exhausted", node=node_id,
                            gid=gid, home=home, retries=retries,
                            needed=tuple(sorted(needed.items())),
                            snapshot=tuple(sorted(reply.payload.items())))
                raise SimulationError(
                    f"page {gid}: node {node_id} re-fetched from home "
                    f"{home} {retries} times without versions {needed} "
                    f"appearing (have {reply.payload}); the home copy "
                    f"never advanced (fetch_retry_max="
                    f"{cfg.fetch_retry_max})")
            self._trace("fetch.retry", node=node_id, gid=gid)
            yield self.sim.timeout(cfg.fetch_retry_backoff_us)

    # ----------------------------------------------------------------- write

    def write(self, rank: int, region: SharedRegion, indices,
              runs_per_page: int = 1, bytes_per_page: Optional[int] = None):
        """Write pages; first writes in an interval twin the page."""
        cfg = self.config
        node_id = cfg.node_of(rank)
        table = self.tables[node_id]
        if bytes_per_page is None:
            bytes_per_page = cfg.page_size
        shape = DiffShape(runs=runs_per_page,
                          bytes_modified=max(bytes_per_page,
                                             runs_per_page * 4))
        t0 = self.sim.now
        for idx in indices:
            gid = region.gid(idx)
            access = table.access(gid)
            if access is PageAccess.INVALID:
                yield from self._read_fault(rank, node_id, gid)
                access = table.access(gid)
            first = table.record_write(gid, shape)
            if first:
                # Write fault: open write access; non-home writers also
                # twin the page.  The home writes its authoritative
                # copy in place — HLRC needs no twin or diff there,
                # only the write notice.
                twin = 0.0 if self._ensure_home(gid, node_id) == node_id \
                    else cfg.twin_us
                cost = (cfg.page_fault_us + twin
                        + self.mprotect.protect(node_id, [gid]))
                table.write_faults += 1
                yield self.sim.timeout(cost)
        self.buckets[rank].charge("data", self.sim.now - t0)

    # -------------------------------------------------- intervals & diffs

    def close_interval(self, node_id: int) -> Optional[Interval]:
        """Close the node's current interval, if it dirtied anything.

        Returns the interval (its diffs go to ``pending_flush``); the
        *caller* must pay the returned interval's write-protect cost via
        :meth:`downgrade_cost` (kept separate so callers can charge the
        right bucket) — in practice use :meth:`close_interval_timed`.
        """
        table = self.tables[node_id]
        dirty = table.take_dirty()
        if not dirty:
            return None
        index = self.interval_log.current_index(node_id) + 1
        interval = Interval(node=node_id, index=index,
                            pages=tuple(sorted(dirty)))
        self.interval_log.append(interval)
        self.node_clock[node_id][node_id] = index
        self.pending_flush[node_id].append((index, dirty))
        self._trace("interval.close", node=node_id, index=index,
                    pages=len(dirty), written=interval.pages,
                    clock=self.node_clock[node_id].values)
        if self.invariants is not None:
            self.invariants.on_interval_close(node_id, interval)
        return interval

    def close_interval_timed(self, node_id: int):
        """Generator: close the interval and pay the write-protect cost."""
        interval = self.close_interval(node_id)
        if interval is not None:
            cost = self.mprotect.protect(node_id, interval.pages)
            yield self.sim.timeout(cost)
        return interval

    def flush_pending(self, node_id: int, track: Optional[str] = None):
        """Generator: propagate all closed-but-unflushed diffs to homes.

        Runs on whatever simulated process calls it: the releasing
        process (eager, GeNIMA) or a protocol handler servicing an
        incoming acquire (lazy, Base) — the paper's central contrast.
        ``track`` names the caller's span track so diff flows can be
        linked from it.
        """
        pending, self.pending_flush[node_id] = \
            self.pending_flush[node_id], []
        for index, dirty in pending:
            for gid in sorted(dirty):
                yield from self._flush_page(node_id, gid, dirty[gid],
                                            index, track=track)

    def _flush_page(self, node_id: int, gid: int, shape: DiffShape,
                    index: int, track: Optional[str] = None):
        cfg = self.config
        home = self.directory.home_of(gid)
        sp = self.spans if track is not None else None
        self._trace("diff.flush", node=node_id, gid=gid, home=home,
                    runs=shape.runs, bytes=shape.bytes_modified)
        if home == node_id:
            # Home writes land in place: no twin was made, so there is
            # nothing to compare or send — just publish the version.
            yield self.sim.timeout(cfg.protocol_op_us)
            self._apply_at_home(gid, node_id, index, track=track)
            return
        # Compare the page with its twin.
        yield self.sim.timeout(cfg.diff_scan_us)
        if self.features.direct_diffs and self.features.scatter_gather:
            # Section 5 scatter-gather: all runs ride one message whose
            # packing/unpacking happens on the (slow) NIs — no host
            # interrupt at the home, no message blow-up.
            self.diffs_sent += 1
            sg_us = cfg.ni_sg_per_run_us * shape.runs
            fid = sp.flow(track, "diff", "data", gid=gid) \
                if sp is not None else None

            def sg_landed(_msg):
                self._apply_at_home(gid, node_id, index,
                                    track=nic_track(home), via=fid)

            yield from self.vmmc.send(
                node_id, home, shape.packed_message_bytes + 32,
                kind="diff_sg", on_delivered=sg_landed,
                extra_lanai_us=sg_us)
        elif self.features.direct_diffs:
            # One asynchronous deposit per contiguous run, straight
            # into the home copy; the home processor never knows.
            # The apply is gated by the *last* run landing, so a single
            # flow covers first-send to last-arrival.
            self.diff_runs_sent += shape.runs
            remaining = [shape.runs]
            fid = sp.flow(track, "diff", "data", gid=gid) \
                if sp is not None else None

            def run_landed(_msg):
                remaining[0] -= 1
                if remaining[0] == 0:
                    self._apply_at_home(gid, node_id, index,
                                        track=nic_track(home), via=fid)

            for _run in range(shape.runs):
                yield from self.vmmc.send(
                    node_id, home, shape.run_message_bytes,
                    kind="diff_run", on_delivered=run_landed)
        else:
            # Packed diff: one message, applied by an interrupt handler
            # at the home.
            self.diffs_sent += 1
            yield self.sim.timeout(
                cfg.diff_pack_per_kb_us * shape.bytes_modified / 1024.0)
            fid = sp.flow(track, "diff", "data", gid=gid) \
                if sp is not None else None

            def on_arrival(_msg):
                self.sim.process(
                    self._home_diff_handler(gid, home, node_id, index,
                                            shape, link=fid),
                    name=f"diffhdl.{gid}")

            yield from self.vmmc.send(
                node_id, home, shape.packed_message_bytes + 32,
                kind="diff", on_delivered=on_arrival)

    def _home_diff_handler(self, gid: int, home: int, writer: int,
                           index: int, shape: DiffShape,
                           link: Optional[int] = None):
        node = self.machine.nodes[home]
        sp = self.spans
        htrack = node_track(home)
        apply_us = (self.config.diff_apply_per_kb_us
                    * shape.bytes_modified / 1024.0
                    + self.config.protocol_op_us)

        def body():
            hsid = sp.begin("diff.home", htrack, bucket="data",
                            link=link, gid=gid) if sp is not None else None
            yield self.sim.timeout(apply_us)
            self._apply_at_home(gid, writer, index,
                                track=htrack if sp is not None else None)
            if sp is not None:
                sp.end(hsid)

        yield from node.handler(body())

    def _apply_at_home(self, gid: int, writer: int, index: int,
                       track: Optional[str] = None,
                       via: Optional[int] = None) -> None:
        """Publish a writer's version at the home and release waiters.

        ``track`` is the span track the apply executes on (home NI for
        deposits, home host for interrupt-applied diffs); ``via`` is
        the incoming diff's flow id, acknowledged with a wake so the
        critical path can cross from the flusher to the home.
        """
        hp = self._home(gid)
        self._trace("home.apply", gid=gid, writer=writer, index=index)
        if hp.applied.get(writer, 0) < index:
            hp.applied[writer] = index
        sp = self.spans if track is not None else None
        if sp is not None:
            sp.wake(via, track, gid=gid)
        waiters = self._home_waiters.get(gid)
        if waiters:
            released = []
            still = []
            for needed, ev, wtrack in waiters:
                if hp.satisfies(needed):
                    released.append((ev, wtrack))
                else:
                    still.append((needed, ev, wtrack))
            fid = sp.flow(track, "diff_apply", "data", gid=gid) \
                if sp is not None and released else None
            for ev, wtrack in released:
                if sp is not None:
                    sp.wake(fid, wtrack, gid=gid)
                # The flow id rides the event value: a re-dispatched
                # home page handler links its next span to it.
                ev.succeed(fid)
            if still:
                self._home_waiters[gid] = still
            else:
                del self._home_waiters[gid]

    # ------------------------------------------------------- write notices

    def broadcast_wns(self, node_id: int, interval: Interval,
                      track: Optional[str] = None):
        """Generator: eagerly deposit the interval's write notices into
        every other node's protocol data structures (the DW mechanism).
        All sends are asynchronous small messages; with NI multicast
        (Section 5) the sending NI replicates one posted descriptor."""
        size = WN_BASE_BYTES + WN_PER_PAGE_BYTES * len(interval.pages)
        others = [n for n in range(self.config.nodes) if n != node_id]
        if not others:
            return
        sp = self.spans if track is not None else None
        if self.features.ni_multicast:
            self.wn_messages += 1
            fids = {o: sp.flow(track, "wn", "acqrel", dst=o)
                    for o in others} if sp is not None else {}
            yield from self.vmmc.send_multicast(
                node_id, others, size, kind="wn",
                on_packet_delivered=lambda pkt:
                    self._wn_arrived(pkt.dst, interval,
                                     fid=fids.get(pkt.dst)))
            return
        for other in others:
            self.wn_messages += 1
            fid = sp.flow(track, "wn", "acqrel", dst=other) \
                if sp is not None else None
            yield from self.vmmc.send(
                node_id, other, size, kind="wn",
                on_delivered=lambda _m, o=other, f=fid:
                    self._wn_arrived(o, interval, fid=f))

    def _wn_arrived(self, node_id: int, interval: Interval,
                    fid: Optional[int] = None) -> None:
        rec = self.wn_received[node_id]
        if rec[interval.node] < interval.index:
            rec[interval.node] = interval.index
        waiters = self._wn_waiters[node_id]
        if waiters:
            sp = self.spans
            still = []
            for writer, want, ev, wtrack in waiters:
                if rec[writer] >= want:
                    if sp is not None:
                        sp.wake(fid, wtrack)
                    ev.succeed()
                else:
                    still.append((writer, want, ev, wtrack))
            self._wn_waiters[node_id] = still

    def apply_incoming(self, rank: int, want: Optional[VectorClock]):
        """Generator: make the acquiring node consistent up to ``want``.

        With eager propagation (DW) the broadcast write notices may
        still be in flight; per the paper, flags guarantee an interval's
        invalidations have reached the node before they are applied —
        modelled by waiting on the arrival events.  Then all pending
        notices up to ``want`` are applied with coalesced mprotect.
        """
        if want is None:
            return
        node_id = self.config.node_of(rank)
        if self.features.direct_writes:
            for writer in range(self.config.nodes):
                if writer == node_id:
                    continue
                if self.wn_received[node_id][writer] < want[writer]:
                    ev = self.sim.event()
                    wtrack = rank_track(rank) \
                        if self.spans is not None else None
                    self._wn_waiters[node_id].append(
                        (writer, want[writer], ev, wtrack))
                    yield ev
        have = self.node_clock[node_id]
        if want.dominates(have) and want == have:
            return
        before = have.values
        notices = self.interval_log.notices_between(have, want)
        table = self.tables[node_id]
        to_protect = []
        for wn in notices:
            if wn.node == node_id:
                continue
            is_home = self.directory.home_of(wn.page) == node_id
            if table.invalidate(wn.page, wn.node, wn.interval,
                                is_home=is_home):
                to_protect.append(wn.page)
        self.node_clock[node_id].merge(want)
        self._trace("clock.advance", node=node_id,
                    clock=self.node_clock[node_id].values,
                    want=want.values)
        if self.invariants is not None:
            self.invariants.on_clock_merge(
                node_id, before, self.node_clock[node_id], want)
        cost = self.mprotect.protect(node_id, to_protect)
        if cost > 0:
            yield self.sim.timeout(cost)

    # ------------------------------------------------------------ locks

    def lock(self, rank: int, lock_id: int, bucket: str = "lock"):
        """Generator: acquire a mutual-exclusion lock."""
        t0 = self.sim.now
        node_id = self.config.node_of(rank)
        sp = self.spans
        track = rank_track(rank)
        sid = sp.begin("lock.acquire", track, bucket=bucket,
                       lock=lock_id) if sp is not None else None
        self._trace("lock.acquire", rank=rank, lock=lock_id)
        if self.features.ni_locks:
            ts = yield from self.ni_locks.acquire(node_id, lock_id,
                                                  track=track)
            yield from self.apply_incoming(rank, ts)
        else:
            ts = yield from self.svm_locks.acquire(rank, lock_id)
            yield from self.apply_incoming(rank, ts)
        if sp is not None:
            sp.end(sid)
        self.buckets[rank].charge(bucket, self.sim.now - t0)

    def unlock(self, rank: int, lock_id: int, bucket: str = "lock"):
        """Generator: release a lock (a *release* in the LRC sense)."""
        t0 = self.sim.now
        node_id = self.config.node_of(rank)
        sp = self.spans
        track = rank_track(rank)
        sid = sp.begin("lock.release", track, bucket=bucket,
                       lock=lock_id) if sp is not None else None
        self._trace("lock.release", rank=rank, lock=lock_id)
        feats = self.features
        if feats.ni_locks:
            # Hybrid diff policy: skip the flush when the next waiter
            # recorded at our NI is on this same node.
            next_node = self.ni_locks.pending_waiter_node(node_id, lock_id)
            if next_node != node_id:
                interval = yield from self.close_interval_timed(node_id)
                if interval is not None and feats.direct_writes:
                    yield from self.broadcast_wns(node_id, interval,
                                                  track=track)
                # Snapshot before flushing (the flush yields; intervals
                # closed meanwhile must not ride this timestamp), then
                # flush: with NI locks no incoming acquire ever
                # interrupts the host, so releases are the only place
                # lock-ordered diffs can be propagated (Section 2).
                ts = self.node_clock[node_id].copy()
                yield from self.flush_pending(node_id, track=track)
            else:
                ts = self.node_clock[node_id].copy()
            yield from self.ni_locks.release(node_id, lock_id, ts,
                                             track=track)
        else:
            if feats.direct_writes:
                # Eager write-notice propagation at the release.
                interval = yield from self.close_interval_timed(node_id)
                if interval is not None:
                    yield from self.broadcast_wns(node_id, interval,
                                                  track=track)
                    if feats.direct_diffs:
                        yield from self.flush_pending(node_id,
                                                      track=track)
            yield from self.svm_locks.release(rank, lock_id)
        if sp is not None:
            sp.end(sid)
        self.buckets[rank].charge(bucket, self.sim.now - t0)

    # Flag-style pairwise synchronization (consistency only, no mutual
    # exclusion) — charged to the Acq/Rel bucket.  A release_flag is a
    # *release* in the LRC sense: the interval closes, diffs flush, and
    # a versioned flag word is deposited into every node; acquire_flag
    # waits for the next version and applies the carried timestamp.

    def _flag(self, flag_id: int) -> dict:
        flag = self._flags.get(flag_id)
        if flag is None:
            nodes = self.config.nodes
            flag = {
                "version": 0,
                "node_seen": [0] * nodes,
                "node_ts": [None] * nodes,
                "waiters": [[] for _ in range(nodes)],
                "consumed": {},
            }
            self._flags[flag_id] = flag
        return flag

    def release_flag(self, rank: int, flag_id: int):
        t0 = self.sim.now
        node_id = self.config.node_of(rank)
        flag = self._flag(flag_id)
        sp = self.spans
        track = rank_track(rank)
        sid = sp.begin("flag.release", track, bucket="acqrel",
                       flag=flag_id) if sp is not None else None
        interval = yield from self.close_interval_timed(node_id)
        if interval is not None and self.features.direct_writes:
            yield from self.broadcast_wns(node_id, interval, track=track)
        # Snapshot before flushing (see unlock); flags must then flush
        # eagerly in every mode: there is no later incoming acquire to
        # trigger a lazy flush, and the consumer's page fetch would
        # wait forever on the home version otherwise.
        ts = self.node_clock[node_id].copy()
        yield from self.flush_pending(node_id, track=track)
        flag["version"] += 1
        version = flag["version"]
        fid_local = sp.flow(track, "flag", "acqrel", dst=node_id) \
            if sp is not None else None
        self._flag_set(flag, node_id, version, ts, fid=fid_local)
        for other in range(self.config.nodes):
            if other == node_id:
                continue
            if self.features.direct_writes:
                size = WN_BASE_BYTES
            else:
                have = self.node_clock[other]
                size = WN_BASE_BYTES + WN_PER_PAGE_BYTES * len(
                    self.interval_log.notices_between(have, ts))
            fid = sp.flow(track, "flag", "acqrel", dst=other) \
                if sp is not None else None
            yield from self.vmmc.send(
                node_id, other, size, kind="flag",
                on_delivered=lambda _m, o=other, v=version, t=ts, f=fid:
                    self._flag_set(flag, o, v, t, fid=f))
        if sp is not None:
            sp.end(sid)
        self.buckets[rank].charge("acqrel", self.sim.now - t0)

    def _flag_set(self, flag: dict, node_id: int, version: int,
                  ts: VectorClock, fid: Optional[int] = None) -> None:
        if flag["node_seen"][node_id] >= version:
            return
        flag["node_seen"][node_id] = version
        flag["node_ts"][node_id] = ts
        waiters = flag["waiters"][node_id]
        if waiters:
            sp = self.spans
            still = []
            for want, ev, wtrack in waiters:
                if version >= want:
                    if sp is not None:
                        sp.wake(fid, wtrack)
                    ev.succeed()
                else:
                    still.append((want, ev, wtrack))
            flag["waiters"][node_id] = still

    def acquire_flag(self, rank: int, flag_id: int):
        """Generator: wait for the next release of ``flag_id`` (relative
        to what this rank has already consumed)."""
        t0 = self.sim.now
        node_id = self.config.node_of(rank)
        flag = self._flag(flag_id)
        sp = self.spans
        track = rank_track(rank)
        sid = sp.begin("flag.acquire", track, bucket="acqrel",
                       flag=flag_id) if sp is not None else None
        want = flag["consumed"].get(rank, 0) + 1
        if flag["node_seen"][node_id] < want:
            ev = self.sim.event()
            flag["waiters"][node_id].append(
                (want, ev, track if sp is not None else None))
            yield ev
        flag["consumed"][rank] = max(flag["consumed"].get(rank, 0), want)
        yield self.sim.timeout(self.config.notify_us)
        ts = flag["node_ts"][node_id]
        yield from self.apply_incoming(rank, ts)
        if sp is not None:
            sp.end(sid)
        self.buckets[rank].charge("acqrel", self.sim.now - t0)

    # ------------------------------------------------------------- barrier

    def barrier(self, rank: int):
        """Generator: global barrier (see BarrierManager)."""
        epoch = self.barriers.epoch_of(rank)
        sp = self.spans
        sid = sp.begin("barrier", rank_track(rank), bucket="barrier",
                       epoch=epoch) if sp is not None else None
        self._trace("barrier.enter", rank=rank, epoch=epoch)
        yield from self.barriers.barrier(rank)
        self._trace("barrier.exit", rank=rank, epoch=epoch)
        if sp is not None:
            sp.end(sid)

    # ------------------------------------------------------------- results

    def breakdown(self, rank: int) -> TimeBuckets:
        return self.buckets[rank]

    @property
    def total_interrupts(self) -> int:
        return sum(n.interrupts_taken for n in self.machine.nodes)
