"""Byte-accurate data plane for shared regions.

The performance simulation carries abstract :class:`DiffShape` s (run
and byte counts) because that is all the timing model needs.  This
module is the *functional* counterpart: real page contents, real twins,
real diffs applied to real home copies — the multiple-writer LRC data
path one can actually read values out of.  It backs the correctness
tests (including the multiple-writer merge property) and the
``examples/functional_dsm.py`` demo.

Semantics implemented:

* each page has one authoritative **home copy**;
* a node faults a page in by copying the home copy;
* the first write in an interval makes a **twin**;
* a flush word-diffs the page against its twin and applies the runs to
  the home copy (the packed-diff and direct-diff wire formats carry the
  same runs; see :mod:`repro.svm.diffs`);
* concurrent writers to disjoint words merge cleanly at the home — the
  multiple-writer guarantee LRC relies on.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .diffs import apply_diff, compute_diff, diff_payload_bytes
from .pages import SharedRegion

__all__ = ["ConcreteStore"]


class ConcreteStore:
    """Per-node concrete page copies over one concrete region."""

    def __init__(self, region: SharedRegion):
        if not region.concrete or region.data is None:
            raise ValueError(
                f"region {region.name!r} was not allocated concrete=True")
        self.region = region
        #: (node, page_index) -> local copy
        self._copies: Dict[Tuple[int, int], bytearray] = {}
        #: (node, page_index) -> twin of the current interval
        self._twins: Dict[Tuple[int, int], bytes] = {}
        # Statistics.
        self.fetches = 0
        self.flushes = 0
        self.bytes_flushed = 0

    # ----------------------------------------------------------------- read

    def home_copy(self, index: int) -> bytearray:
        """The authoritative copy (mutate only through diffs)."""
        return self.region.data[index]

    def fetch(self, node: int, index: int) -> bytearray:
        """Bring the home's current version into ``node``'s copy."""
        self.region.check_index(index)
        self.fetches += 1
        copy = bytearray(self.region.data[index])
        self._copies[(node, index)] = copy
        return copy

    def node_copy(self, node: int, index: int) -> bytearray:
        """``node``'s local copy, faulting it in if absent."""
        copy = self._copies.get((node, index))
        if copy is None:
            copy = self.fetch(node, index)
        return copy

    def read(self, node: int, index: int, offset: int,
             length: int) -> bytes:
        copy = self.node_copy(node, index)
        if offset < 0 or offset + length > len(copy):
            raise ValueError("read outside page")
        return bytes(copy[offset:offset + length])

    # ---------------------------------------------------------------- write

    def write(self, node: int, index: int, offset: int,
              data: bytes) -> None:
        """Write into ``node``'s copy, twinning on first touch."""
        copy = self.node_copy(node, index)
        if offset < 0 or offset + len(data) > len(copy):
            raise ValueError("write outside page")
        key = (node, index)
        if key not in self._twins:
            self._twins[key] = bytes(copy)  # the twin
        copy[offset:offset + len(data)] = data

    def is_twinned(self, node: int, index: int) -> bool:
        return (node, index) in self._twins

    # ---------------------------------------------------------------- flush

    def flush(self, node: int, index: int) -> List[Tuple[int, bytes]]:
        """Diff against the twin, apply to the home copy, drop the twin.

        Returns the runs that went over the (modelled) wire; an empty
        list means the page was clean.
        """
        key = (node, index)
        twin = self._twins.pop(key, None)
        if twin is None:
            return []
        copy = self._copies[key]
        diff = compute_diff(twin, bytes(copy))
        apply_diff(self.region.data[index], diff)
        self.flushes += 1
        self.bytes_flushed += diff_payload_bytes(diff)
        return diff

    def flush_all(self, node: int) -> int:
        """Flush every twinned page of ``node``; returns pages flushed."""
        keys = [k for k in list(self._twins) if k[0] == node]
        for _node, index in keys:
            self.flush(node, index)
        return len(keys)

    # ----------------------------------------------------------- invalidate

    def invalidate(self, node: int, index: int) -> None:
        """Drop ``node``'s copy (a write-notice application)."""
        key = (node, index)
        if key in self._twins:
            raise ValueError(
                "invalidating a dirty page would lose writes; flush first")
        self._copies.pop(key, None)
